//! End-to-end coverage of the extended (§5) benchmark set.

use impact::asm::{parse_program, print_program};
use impact::cache::CacheConfig;
use impact::experiments::prepare::{prepare, Budget};
use impact::experiments::sim;

fn budget() -> Budget {
    Budget {
        profile_instrs: Some(60_000),
        eval_instrs: Some(150_000),
    }
}

#[test]
fn extended_benchmarks_survive_the_pipeline() {
    for w in impact::workloads::extended() {
        let p = prepare(&w, &budget());
        let verify = impact::analyze::verify_placement(&p.result.program, &p.result.placement);
        assert!(
            verify.is_clean(),
            "{}: invalid placement\n{}",
            w.name,
            verify.render()
        );
        let stats = sim::simulate(
            &p.result.program,
            &p.result.placement,
            p.eval_seed(),
            budget().eval_limits(&w),
            &[CacheConfig::direct_mapped(2048, 64)],
        )[0];
        assert!(stats.accesses > 0, "{}: empty trace", w.name);
        assert!(stats.miss_ratio() < 0.2, "{}: pathological misses", w.name);
    }
}

#[test]
fn extended_benchmarks_round_trip_through_asm() {
    for w in impact::workloads::extended() {
        let text = print_program(&w.program);
        let parsed = parse_program(&text).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(parsed, w.program, "{}: asm round trip", w.name);
    }
}

#[test]
fn dispatch_shaped_benchmarks_spread_weight_across_handlers() {
    // awk's interpreter loop must execute several distinct handlers (not
    // collapse onto one switch arm).
    let w = impact::workloads::extended_by_name("awk").unwrap();
    let p = prepare(&w, &budget());
    let profile = &p.result.pre_inline_profile;
    let phase = w.program.function_by_name("phase_0").unwrap();
    let func = w.program.function(phase);
    let executed_blocks = func
        .block_ids()
        .filter(|b| profile.block_weight(phase, *b) > 0)
        .count();
    assert!(
        executed_blocks > func.block_count() / 2,
        "only {executed_blocks} of {} blocks executed",
        func.block_count()
    );
}

//! End-to-end pipeline tests over the real benchmark models.

use impact::cache::CacheConfig;
use impact::experiments::prepare::{prepare, Budget};
use impact::experiments::sim;
use impact::layout::baseline;

/// A test budget small enough for debug builds.
fn budget() -> Budget {
    Budget {
        profile_instrs: Some(60_000),
        eval_instrs: Some(150_000),
    }
}

#[test]
fn every_benchmark_survives_the_full_pipeline() {
    for w in impact::workloads::all() {
        let p = prepare(&w, &budget());
        let verify = impact::analyze::verify_placement(&p.result.program, &p.result.placement);
        assert!(
            verify.is_clean(),
            "{}: invalid placement\n{}",
            w.name,
            verify.render()
        );
        assert!(
            p.result.global.is_permutation_of(&p.result.program),
            "{}: global order is not a permutation",
            w.name
        );
        for (fid, func) in p.result.program.functions() {
            assert!(
                p.result.traces[fid.index()].is_partition_of(func),
                "{}/{}: traces do not partition",
                w.name,
                func.name()
            );
            assert!(
                p.result.layouts[fid.index()].is_permutation_of(func),
                "{}/{}: layout is not a permutation",
                w.name,
                func.name()
            );
        }
        assert!(p.result.effective_static_bytes() <= p.result.total_static_bytes());
    }
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let w = impact::workloads::by_name("compress").unwrap();
    let a = prepare(&w, &budget());
    let b = prepare(&w, &budget());
    assert_eq!(a.result.placement, b.result.placement);
    assert_eq!(a.result.profile, b.result.profile);

    let configs = [CacheConfig::direct_mapped(2048, 64)];
    let limits = budget().eval_limits(&w);
    let s1 = sim::simulate(
        &a.result.program,
        &a.result.placement,
        a.eval_seed(),
        limits,
        &configs,
    );
    let s2 = sim::simulate(
        &b.result.program,
        &b.result.placement,
        b.eval_seed(),
        limits,
        &configs,
    );
    assert_eq!(s1, s2);
}

#[test]
fn inlining_never_changes_observable_work() {
    // The inlined program must execute (statistically) the same amount of
    // work: instruction counts per run within 25 % of the original.
    let w = impact::workloads::by_name("yacc").unwrap();
    let p = prepare(&w, &budget());
    let before = p.result.pre_inline_profile.totals.instructions as f64;
    let after = p.result.profile.totals.instructions as f64;
    let ratio = after / before;
    assert!(
        (0.75..1.33).contains(&ratio),
        "yacc instruction volume drifted by {ratio}"
    );
}

#[test]
fn optimized_placement_beats_random_on_a_small_cache() {
    for name in ["make", "yacc", "lex"] {
        let w = impact::workloads::by_name(name).unwrap();
        let p = prepare(&w, &budget());
        let configs = [CacheConfig::direct_mapped(1024, 64)];
        let limits = budget().eval_limits(&w);
        let opt = sim::simulate(
            &p.result.program,
            &p.result.placement,
            p.eval_seed(),
            limits,
            &configs,
        )[0];
        let rnd_placement = baseline::random(&p.baseline_program, 7);
        let rnd = sim::simulate(
            &p.baseline_program,
            &rnd_placement,
            p.eval_seed(),
            limits,
            &configs,
        )[0];
        assert!(
            opt.miss_ratio() <= rnd.miss_ratio() + 1e-9,
            "{name}: optimized {:.4}% vs random {:.4}%",
            opt.miss_ratio() * 100.0,
            rnd.miss_ratio() * 100.0
        );
    }
}

#[test]
fn eval_seed_is_held_out_from_profiling() {
    for w in impact::workloads::all() {
        assert!(
            !w.profile_seeds().contains(&w.eval_seed()),
            "{}: evaluation seed leaks into profiling",
            w.name
        );
    }
}

#[test]
fn dead_code_lands_in_the_non_executed_region() {
    // Odd-indexed cold functions are never executed; their blocks must be
    // placed at or beyond the effective boundary.
    let w = impact::workloads::by_name("grep").unwrap();
    let p = prepare(&w, &budget());
    let program = &p.result.program;
    let cold = program
        .function_by_name("cold_1")
        .expect("grep has cold functions");
    for bid in program.function(cold).block_ids() {
        assert!(
            p.result.placement.addr(cold, bid) >= p.result.placement.effective_bytes(),
            "cold_1/{bid} placed inside the effective region"
        );
    }
}

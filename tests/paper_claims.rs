//! The paper's headline claims, asserted as tests (shape, not absolute
//! numbers — see EXPERIMENTS.md for the measured tables).

use impact::cache::{smith, CacheConfig, FillPolicy};
use impact::experiments::prepare::{prepare_all, Budget};
use impact::experiments::sim;
use impact::experiments::tables::{t6, t7};

fn budget() -> Budget {
    Budget {
        profile_instrs: Some(60_000),
        eval_instrs: Some(200_000),
    }
}

/// §4.2.4 / abstract: the optimized direct-mapped 2 KB / 64 B cache beats
/// Smith's fully-associative design target, on average and per benchmark.
#[test]
fn optimized_direct_mapped_beats_smith_targets() {
    let prepared = prepare_all(&budget());
    let rows = t6::run(&prepared);
    let target = smith::target_miss_ratio(2048, 64).unwrap();
    let avg = t6::averages(&rows)[2].0; // 2K column
    assert!(
        avg < target / 2.0,
        "average optimized miss {avg:.4} not well below Smith target {target}"
    );
    for r in &rows {
        let (miss, _) = r.cells[2];
        assert!(
            miss < target,
            "{}: optimized miss {miss:.4} exceeds the 6.8% design target",
            r.name
        );
    }
}

/// Table 6 shape: per benchmark, the miss ratio never *increases* as the
/// cache grows (direct-mapped caches admit tiny anomalies; allow slack).
#[test]
fn miss_ratio_shrinks_with_cache_size() {
    let prepared = prepare_all(&budget());
    for r in t6::run(&prepared) {
        // cells are ordered 8K, 4K, 2K, 1K, 0.5K.
        for w in r.cells.windows(2) {
            assert!(
                w[0].0 <= w[1].0 + 0.01,
                "{}: miss grew with cache size: {:?}",
                r.name,
                r.cells
            );
        }
    }
}

/// Table 7 shape: on average, larger blocks lower the miss ratio and
/// raise the memory traffic ratio.
#[test]
fn block_size_trades_misses_for_traffic() {
    let prepared = prepare_all(&budget());
    let rows = t7::run(&prepared);
    let avgs = t7::averages(&rows);
    for w in avgs.windows(2) {
        assert!(
            w[1].0 <= w[0].0 + 1e-6,
            "average miss did not fall with block size: {avgs:?}"
        );
        assert!(
            w[1].1 >= w[0].1 - 1e-6,
            "average traffic did not rise with block size: {avgs:?}"
        );
    }
}

/// §4.2.2: both traffic-reduction schemes cut memory traffic versus
/// whole-block fill on the traffic-heavy benchmarks, at the cost of
/// (sectoring) a much higher miss ratio.
#[test]
fn traffic_reduction_schemes_behave_as_described() {
    let prepared = prepare_all(&budget());
    let full_cfg = [CacheConfig::direct_mapped(2048, 64)];
    let schemes = [
        CacheConfig::direct_mapped(2048, 64).with_fill(FillPolicy::Sectored { sector_bytes: 8 }),
        CacheConfig::direct_mapped(2048, 64).with_fill(FillPolicy::Partial),
    ];
    for p in &prepared {
        let limits = p.budget.eval_limits(&p.workload);
        let full = sim::simulate(
            &p.result.program,
            &p.result.placement,
            p.eval_seed(),
            limits,
            &full_cfg,
        )[0];
        let s = sim::simulate(
            &p.result.program,
            &p.result.placement,
            p.eval_seed(),
            limits,
            &schemes,
        );
        // Partial loading never fetches more than full-block fill and
        // never misses less.
        assert!(
            s[1].traffic_ratio() <= full.traffic_ratio() + 1e-9,
            "{}: partial traffic above full-block",
            p.workload.name
        );
        assert!(
            s[1].misses >= full.misses,
            "{}: partial missed less than full-block",
            p.workload.name
        );
        // Sectoring fetches at most what full-block fill fetches.
        assert!(
            s[0].traffic_ratio() <= full.traffic_ratio() + 1e-9,
            "{}: sector traffic above full-block",
            p.workload.name
        );
        assert!(
            s[0].misses >= full.misses,
            "{}: sectoring missed less",
            p.workload.name
        );
    }
}

/// §4.2.3: cache performance is stable across instruction-encoding
/// densities — scaled programs stay below the Smith target too.
#[test]
fn code_scaling_preserves_cache_performance() {
    // One representative benchmark to keep the test affordable: yacc
    // (mid-range miss ratio).
    let w = impact::workloads::by_name("yacc").unwrap();
    let p = impact::experiments::prepare::prepare(&w, &budget());
    let rows = impact::experiments::tables::t9::run(std::slice::from_ref(&p));
    let target = smith::target_miss_ratio(2048, 64).unwrap();
    for &(miss, _) in &rows[0].cells {
        assert!(
            miss < target,
            "yacc under scaling: miss {miss:.4} above design target"
        );
    }
}

/// Table 3's qualitative claim: inlining makes function calls rare —
/// hundreds of dynamic instructions per call (except tee, which is all
/// system calls, and wc/cmp which barely call at all).
#[test]
fn calls_become_rare_after_inlining() {
    let prepared = prepare_all(&budget());
    for p in &prepared {
        let r = &p.result.inline_report;
        match p.workload.name {
            "tee" => {
                assert!(
                    r.call_decrease < 0.1,
                    "tee's system calls must survive inlining: {r:?}"
                );
            }
            "wc" | "cmp" => {} // essentially call-free already
            _ => {
                assert!(
                    r.instrs_per_call > 50.0,
                    "{}: only {:.0} instructions per call after inlining",
                    p.workload.name,
                    r.instrs_per_call
                );
            }
        }
    }
}

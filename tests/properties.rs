//! Property-based tests over random programs and random access traces.

use impact::cache::{AccessSink, Associativity, Cache, CacheConfig, FillPolicy};
use impact::ir::{
    BlockId, BranchBias, FuncId, Instr, Program, ProgramBuilder, Terminator,
};
use impact::layout::pipeline::{Pipeline, PipelineConfig};
use impact::layout::{baseline, TraceSelector};
use impact::profile::{ExecLimits, Profiler, Walker};
use impact::trace::TraceGenerator;
use proptest::prelude::*;

/// A terminator with indices to be resolved modulo the actual counts.
#[derive(Clone, Debug)]
enum TermPlan {
    Jump(usize),
    Branch(usize, usize, u8),
    Switch(Vec<(usize, u32)>),
    Call(usize, usize),
    Return,
    Exit,
}

fn arb_term() -> impl Strategy<Value = TermPlan> {
    prop_oneof![
        any::<usize>().prop_map(TermPlan::Jump),
        (any::<usize>(), any::<usize>(), any::<u8>())
            .prop_map(|(a, b, p)| TermPlan::Branch(a, b, p)),
        prop::collection::vec((any::<usize>(), 0u32..10), 1..4).prop_map(TermPlan::Switch),
        (any::<usize>(), any::<usize>()).prop_map(|(f, r)| TermPlan::Call(f, r)),
        Just(TermPlan::Return),
        Just(TermPlan::Exit),
    ]
}

/// Blocks per function: `(body_len, terminator plan)`.
type FuncPlan = Vec<(usize, TermPlan)>;

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(
        prop::collection::vec((0usize..6, arb_term()), 1..8),
        1..5,
    )
    .prop_map(|plans: Vec<FuncPlan>| build_program(&plans))
}

fn build_program(plans: &[FuncPlan]) -> Program {
    let mut pb = ProgramBuilder::new();
    let ids: Vec<FuncId> = (0..plans.len())
        .map(|i| pb.reserve(format!("f{i}")))
        .collect();
    for (fi, plan) in plans.iter().enumerate() {
        let mut fb = pb.function_reserved(ids[fi]);
        let blocks: Vec<BlockId> = plan
            .iter()
            .map(|(body, _)| fb.block(vec![Instr::IntAlu; *body]))
            .collect();
        let n = blocks.len();
        for (bi, (_, term)) in plan.iter().enumerate() {
            let resolve = |x: usize| blocks[x % n];
            let t = match term {
                TermPlan::Jump(t) => Terminator::jump(resolve(*t)),
                TermPlan::Branch(a, b, p) => Terminator::branch(
                    resolve(*a),
                    resolve(*b),
                    BranchBias::fixed(f64::from(*p) / 255.0),
                ),
                TermPlan::Switch(targets) => {
                    let mut arms: Vec<(BlockId, u32)> =
                        targets.iter().map(|(t, w)| (resolve(*t), *w)).collect();
                    if arms.iter().all(|(_, w)| *w == 0) {
                        arms[0].1 = 1;
                    }
                    Terminator::Switch { targets: arms }
                }
                TermPlan::Call(f, r) => {
                    Terminator::call(ids[*f % ids.len()], resolve(*r))
                }
                TermPlan::Return => Terminator::Return,
                TermPlan::Exit => Terminator::Exit,
            };
            fb.terminate(blocks[bi], t);
        }
        fb.finish();
    }
    pb.set_entry(ids[0]);
    pb.finish().expect("plans always build valid programs")
}

fn tight_limits() -> ExecLimits {
    ExecLimits {
        max_instructions: 5_000,
        max_call_depth: 32,
    }
}

fn tiny_pipeline(inline: bool) -> Pipeline {
    Pipeline::new(PipelineConfig {
        inline: inline.then(Default::default),
        profile_runs: 2,
        profile_base_seed: 0,
        limits: tight_limits(),
        ..PipelineConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any generated program validates and walks deterministically.
    #[test]
    fn walker_is_deterministic(program in arb_program(), seed in 0u64..1000) {
        program.validate().unwrap();
        let mut a = Vec::new();
        let mut b = Vec::new();
        struct Rec<'v>(&'v mut Vec<(FuncId, BlockId)>);
        impl impact::profile::ExecVisitor for Rec<'_> {
            fn block(&mut self, f: FuncId, b: BlockId) { self.0.push((f, b)); }
            fn transfer(&mut self, _t: impact::profile::Transfer) {}
        }
        Walker::new(&program).with_limits(tight_limits()).run(seed, &mut Rec(&mut a));
        Walker::new(&program).with_limits(tight_limits()).run(seed, &mut Rec(&mut b));
        prop_assert_eq!(a, b);
    }

    /// The full pipeline yields a valid placement; without inlining it
    /// preserves the program and its byte count exactly.
    #[test]
    fn pipeline_placement_is_always_valid(program in arb_program()) {
        let no_inline = tiny_pipeline(false).run(&program);
        prop_assert!(no_inline.placement.is_valid_for(&no_inline.program));
        prop_assert_eq!(no_inline.program.total_bytes(), program.total_bytes());

        let inlined = tiny_pipeline(true).run(&program);
        prop_assert!(inlined.placement.is_valid_for(&inlined.program));
        prop_assert!(inlined.program.total_bytes() >= program.total_bytes());
    }

    /// Trace selection always partitions each function's blocks.
    #[test]
    fn traces_partition_blocks(program in arb_program()) {
        let profile = Profiler::new().runs(2).limits(tight_limits()).profile(&program);
        let traces = TraceSelector::new().select_program(&program, &profile);
        for (fid, func) in program.functions() {
            prop_assert!(traces[fid.index()].is_partition_of(func));
        }
    }

    /// Every fetched address falls inside the placed image, for both
    /// baseline and optimized placements.
    #[test]
    fn traces_stay_in_bounds(program in arb_program(), seed in 0u64..100) {
        let result = tiny_pipeline(false).run(&program);
        for placement in [baseline::natural(&program), result.placement] {
            let gen = TraceGenerator::new(&program, &placement).with_limits(tight_limits());
            let mut ok = true;
            gen.run(seed, |addr| {
                ok &= addr % 4 == 0 && addr < placement.total_bytes();
            });
            prop_assert!(ok);
        }
    }
}

/// Random word-aligned access traces confined to a 16 KB image.
fn arb_trace() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..4096, 1..2000)
        .prop_map(|v| v.into_iter().map(|w| w * 4).collect())
}

fn run_cache(config: CacheConfig, trace: &[u64]) -> impact::cache::CacheStats {
    let mut cache = Cache::new(config);
    for &a in trace {
        cache.access(a);
    }
    cache.stats()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LRU inclusion: a larger fully-associative LRU cache never misses
    /// more, on any trace.
    #[test]
    fn lru_stack_property(trace in arb_trace()) {
        let mut prev = u64::MAX;
        for size in [512u64, 1024, 2048, 4096] {
            let s = run_cache(CacheConfig::fully_associative(size, 64), &trace);
            prop_assert!(s.misses <= prev, "misses grew from {prev} at size {size}");
            prev = s.misses;
        }
    }

    /// Partial loading and sectoring never generate more memory traffic
    /// than whole-block fill, and never fewer misses.
    #[test]
    fn reduced_fills_bound_traffic(trace in arb_trace()) {
        let base = CacheConfig::direct_mapped(2048, 64);
        let full = run_cache(base, &trace);
        for fill in [FillPolicy::Partial, FillPolicy::Sectored { sector_bytes: 8 }] {
            let s = run_cache(base.with_fill(fill), &trace);
            prop_assert!(s.words_fetched <= full.words_fetched, "{fill:?}");
            prop_assert!(s.misses >= full.misses, "{fill:?}");
            prop_assert_eq!(s.accesses, full.accesses);
        }
    }

    /// A 1-way set-associative cache is exactly a direct-mapped cache.
    #[test]
    fn one_way_equals_direct_mapped(trace in arb_trace()) {
        let direct = run_cache(CacheConfig::direct_mapped(1024, 32), &trace);
        let one_way = run_cache(
            CacheConfig::direct_mapped(1024, 32).with_associativity(Associativity::Ways(1)),
            &trace,
        );
        prop_assert_eq!(direct, one_way);
    }

    /// Basic sanity on every organization: misses never exceed accesses,
    /// and full-block traffic is exactly misses x block words.
    #[test]
    fn stats_are_internally_consistent(
        trace in arb_trace(),
        size_pow in 9u32..13,
        block_pow in 4u32..8,
        ways in prop_oneof![
            Just(Associativity::Direct),
            Just(Associativity::Ways(2)),
            Just(Associativity::Ways(4)),
            Just(Associativity::Full)
        ],
    ) {
        let size = 1u64 << size_pow;
        let block = 1u64 << block_pow;
        prop_assume!(block <= size);
        let config = CacheConfig::direct_mapped(size, block).with_associativity(ways);
        prop_assume!(config.validate().is_ok());
        let s = run_cache(config, &trace);
        prop_assert!(s.misses <= s.accesses);
        prop_assert_eq!(s.words_fetched, s.misses * (block / 4));
        prop_assert!(s.miss_ratio() <= 1.0);
    }

    /// More associativity at equal geometry never hurts... is FALSE in
    /// general (LRU vs direct-mapped anomalies exist); what must hold is
    /// that the fully-associative cache is at least as good as the
    /// best-case for *this* trace class when the working set fits.
    #[test]
    fn fully_associative_fits_working_set(start in 0u64..64) {
        // A looping working set of exactly 16 blocks in a 16-block cache:
        // only cold misses, regardless of where the loop sits in memory.
        let mut cache = Cache::new(CacheConfig::fully_associative(1024, 64));
        for _ in 0..10 {
            for b in 0..16u64 {
                cache.access((start + b) * 64);
            }
        }
        prop_assert_eq!(cache.stats().misses, 16);
    }
}

//! Property-based tests over random programs and random access traces.

use impact::cache::{AccessSink, Associativity, Cache, CacheConfig, FillPolicy};
use impact::ir::{BlockId, BranchBias, FuncId, Instr, Program, ProgramBuilder, Terminator};
use impact::layout::pipeline::{Pipeline, PipelineConfig};
use impact::layout::{baseline, TraceSelector};
use impact::profile::{ExecLimits, Profiler, Walker};
use impact::trace::TraceGenerator;
use impact_support::check::forall;
use impact_support::Rng;

/// A terminator with indices to be resolved modulo the actual counts.
#[derive(Clone, Debug)]
enum TermPlan {
    Jump(usize),
    Branch(usize, usize, u8),
    Switch(Vec<(usize, u32)>),
    Call(usize, usize),
    Return,
    Exit,
}

fn gen_term(rng: &mut Rng) -> TermPlan {
    match rng.gen_below(6) {
        0 => TermPlan::Jump(rng.next_u64() as usize),
        1 => TermPlan::Branch(
            rng.next_u64() as usize,
            rng.next_u64() as usize,
            rng.gen_below(256) as u8,
        ),
        2 => {
            let arms = rng.gen_range_inclusive(1, 3);
            TermPlan::Switch(
                (0..arms)
                    .map(|_| (rng.next_u64() as usize, rng.gen_below(10) as u32))
                    .collect(),
            )
        }
        3 => TermPlan::Call(rng.next_u64() as usize, rng.next_u64() as usize),
        4 => TermPlan::Return,
        _ => TermPlan::Exit,
    }
}

/// Blocks per function: `(body_len, terminator plan)`.
type FuncPlan = Vec<(usize, TermPlan)>;

fn gen_program(rng: &mut Rng) -> Program {
    let nfuncs = rng.gen_range_inclusive(1, 4);
    let plans: Vec<FuncPlan> = (0..nfuncs)
        .map(|_| {
            let nblocks = rng.gen_range_inclusive(1, 7);
            (0..nblocks)
                .map(|_| (rng.gen_below(6) as usize, gen_term(rng)))
                .collect()
        })
        .collect();
    build_program(&plans)
}

fn build_program(plans: &[FuncPlan]) -> Program {
    let mut pb = ProgramBuilder::new();
    let ids: Vec<FuncId> = (0..plans.len())
        .map(|i| pb.reserve(format!("f{i}")))
        .collect();
    for (fi, plan) in plans.iter().enumerate() {
        let mut fb = pb.function_reserved(ids[fi]);
        let blocks: Vec<BlockId> = plan
            .iter()
            .map(|(body, _)| fb.block(vec![Instr::IntAlu; *body]))
            .collect();
        let n = blocks.len();
        for (bi, (_, term)) in plan.iter().enumerate() {
            let resolve = |x: usize| blocks[x % n];
            let t = match term {
                TermPlan::Jump(t) => Terminator::jump(resolve(*t)),
                TermPlan::Branch(a, b, p) => Terminator::branch(
                    resolve(*a),
                    resolve(*b),
                    BranchBias::fixed(f64::from(*p) / 255.0),
                ),
                TermPlan::Switch(targets) => {
                    let mut arms: Vec<(BlockId, u32)> =
                        targets.iter().map(|(t, w)| (resolve(*t), *w)).collect();
                    if arms.iter().all(|(_, w)| *w == 0) {
                        arms[0].1 = 1;
                    }
                    Terminator::Switch { targets: arms }
                }
                TermPlan::Call(f, r) => Terminator::call(ids[*f % ids.len()], resolve(*r)),
                TermPlan::Return => Terminator::Return,
                TermPlan::Exit => Terminator::Exit,
            };
            fb.terminate(blocks[bi], t);
        }
        fb.finish();
    }
    pb.set_entry(ids[0]);
    pb.finish().expect("plans always build valid programs")
}

fn tight_limits() -> ExecLimits {
    ExecLimits {
        max_instructions: 5_000,
        max_call_depth: 32,
    }
}

fn tiny_pipeline(inline: bool) -> Pipeline {
    Pipeline::new(PipelineConfig {
        inline: inline.then(Default::default),
        profile_runs: 2,
        profile_base_seed: 0,
        limits: tight_limits(),
        ..PipelineConfig::default()
    })
}

/// Any generated program validates and walks deterministically.
#[test]
fn walker_is_deterministic() {
    forall(
        48,
        |rng| (gen_program(rng), rng.gen_below(1000)),
        |(program, seed)| {
            program.validate().unwrap();
            let mut a = Vec::new();
            let mut b = Vec::new();
            struct Rec<'v>(&'v mut Vec<(FuncId, BlockId)>);
            impl impact::profile::ExecVisitor for Rec<'_> {
                fn block(&mut self, f: FuncId, b: BlockId) {
                    self.0.push((f, b));
                }
                fn transfer(&mut self, _t: impact::profile::Transfer) {}
            }
            Walker::new(program)
                .with_limits(tight_limits())
                .run(*seed, &mut Rec(&mut a));
            Walker::new(program)
                .with_limits(tight_limits())
                .run(*seed, &mut Rec(&mut b));
            assert_eq!(a, b);
        },
    );
}

/// The full pipeline yields a valid placement; without inlining it
/// preserves the program and its byte count exactly.
#[test]
#[allow(deprecated)]
fn pipeline_placement_is_always_valid() {
    forall(48, gen_program, |program| {
        let no_inline = tiny_pipeline(false).run(program);
        assert!(no_inline.placement.is_valid_for(&no_inline.program));
        assert_eq!(no_inline.program.total_bytes(), program.total_bytes());

        let inlined = tiny_pipeline(true).run(program);
        assert!(inlined.placement.is_valid_for(&inlined.program));
        assert!(inlined.program.total_bytes() >= program.total_bytes());
    });
}

/// Trace selection always partitions each function's blocks.
#[test]
fn traces_partition_blocks() {
    forall(48, gen_program, |program| {
        let profile = Profiler::new()
            .runs(2)
            .limits(tight_limits())
            .profile(program);
        let traces = TraceSelector::new().select_program(program, &profile);
        for (fid, func) in program.functions() {
            assert!(traces[fid.index()].is_partition_of(func));
        }
    });
}

/// Every fetched address falls inside the placed image, for both
/// baseline and optimized placements.
#[test]
fn traces_stay_in_bounds() {
    forall(
        48,
        |rng| (gen_program(rng), rng.gen_below(100)),
        |(program, seed)| {
            let result = tiny_pipeline(false).run(program);
            for placement in [baseline::natural(program), result.placement] {
                let generator =
                    TraceGenerator::new(program, &placement).with_limits(tight_limits());
                let mut ok = true;
                generator.run(*seed, |addr| {
                    ok &= addr % 4 == 0 && addr < placement.total_bytes();
                });
                assert!(ok);
            }
        },
    );
}

/// Random word-aligned access traces confined to a 16 KB image.
fn gen_trace(rng: &mut Rng) -> Vec<u64> {
    let len = rng.gen_range_inclusive(1, 1999);
    (0..len).map(|_| rng.gen_below(4096) * 4).collect()
}

fn run_cache(config: CacheConfig, trace: &[u64]) -> impact::cache::CacheStats {
    let mut cache = Cache::new(config);
    for &a in trace {
        cache.access(a);
    }
    cache.stats()
}

/// LRU inclusion: a larger fully-associative LRU cache never misses
/// more, on any trace.
#[test]
fn lru_stack_property() {
    forall(64, gen_trace, |trace| {
        let mut prev = u64::MAX;
        for size in [512u64, 1024, 2048, 4096] {
            let s = run_cache(CacheConfig::fully_associative(size, 64), trace);
            assert!(s.misses <= prev, "misses grew from {prev} at size {size}");
            prev = s.misses;
        }
    });
}

/// Partial loading and sectoring never generate more memory traffic
/// than whole-block fill, and never fewer misses.
#[test]
fn reduced_fills_bound_traffic() {
    forall(64, gen_trace, |trace| {
        let base = CacheConfig::direct_mapped(2048, 64);
        let full = run_cache(base, trace);
        for fill in [
            FillPolicy::Partial,
            FillPolicy::Sectored { sector_bytes: 8 },
        ] {
            let s = run_cache(base.with_fill(fill), trace);
            assert!(s.words_fetched <= full.words_fetched, "{fill:?}");
            assert!(s.misses >= full.misses, "{fill:?}");
            assert_eq!(s.accesses, full.accesses);
        }
    });
}

/// A 1-way set-associative cache is exactly a direct-mapped cache.
#[test]
fn one_way_equals_direct_mapped() {
    forall(64, gen_trace, |trace| {
        let direct = run_cache(CacheConfig::direct_mapped(1024, 32), trace);
        let one_way = run_cache(
            CacheConfig::direct_mapped(1024, 32).with_associativity(Associativity::Ways(1)),
            trace,
        );
        assert_eq!(direct, one_way);
    });
}

/// Basic sanity on every organization: misses never exceed accesses,
/// and full-block traffic is exactly misses x block words.
#[test]
fn stats_are_internally_consistent() {
    forall(
        64,
        |rng| {
            let trace = gen_trace(rng);
            let size = 1u64 << (9 + rng.gen_below(4));
            let block = 1u64 << (4 + rng.gen_below(4));
            let ways = match rng.gen_below(4) {
                0 => Associativity::Direct,
                1 => Associativity::Ways(2),
                2 => Associativity::Ways(4),
                _ => Associativity::Full,
            };
            (trace, size, block, ways)
        },
        |(trace, size, block, ways)| {
            if *block > *size {
                return;
            }
            let config = CacheConfig::direct_mapped(*size, *block).with_associativity(*ways);
            if config.validate().is_err() {
                return;
            }
            let s = run_cache(config, trace);
            assert!(s.misses <= s.accesses);
            assert_eq!(s.words_fetched, s.misses * (block / 4));
            assert!(s.miss_ratio() <= 1.0);
        },
    );
}

/// More associativity at equal geometry never hurts... is FALSE in
/// general (LRU vs direct-mapped anomalies exist); what must hold is
/// that the fully-associative cache is at least as good as the
/// best-case for *this* trace class when the working set fits.
#[test]
fn fully_associative_fits_working_set() {
    forall(
        64,
        |rng| rng.gen_below(64),
        |&start| {
            // A looping working set of exactly 16 blocks in a 16-block cache:
            // only cold misses, regardless of where the loop sits in memory.
            let mut cache = Cache::new(CacheConfig::fully_associative(1024, 64));
            for _ in 0..10 {
                for b in 0..16u64 {
                    cache.access((start + b) * 64);
                }
            }
            assert_eq!(cache.stats().misses, 16);
        },
    );
}

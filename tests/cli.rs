//! End-to-end tests of the `impact` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn impact_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_impact"))
}

/// Writes a small test program to a temp file, returns its path.
fn sample_file(name: &str) -> PathBuf {
    let src = r#"
program entry=main
fn main {
  init:
    ialu x4
    jmp loop
  loop:
    load
    ialu x2
    call work -> latch
  latch:
    br loop done p=0.999 spread=0.0005
  done:
    exit
}
fn work {
  body:
    ialu x5
    store
    ret
}
"#;
    let path = std::env::temp_dir().join(format!("impact_cli_test_{name}.impact"));
    std::fs::write(&path, src).expect("temp file is writable");
    path
}

#[test]
fn report_describes_the_program() {
    let file = sample_file("report");
    let out = impact_bin()
        .args(["report", file.to_str().unwrap(), "--max-instrs", "200000"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 functions"), "{text}");
    assert!(text.contains("work"), "{text}");
    assert!(text.contains("invocations"), "{text}");
}

#[test]
fn sim_reports_cache_statistics() {
    let file = sample_file("sim");
    let out = impact_bin()
        .args([
            "sim",
            file.to_str().unwrap(),
            "--cache",
            "512",
            "--block",
            "64",
            "--max-instrs",
            "200000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("miss"), "{text}");
    assert!(text.contains("optimized layout"), "{text}");
}

#[test]
fn optimize_round_trips_through_the_text_format() {
    let file = sample_file("optimize");
    let out_path = std::env::temp_dir().join("impact_cli_test_optimized.impact");
    let out = impact_bin()
        .args([
            "optimize",
            file.to_str().unwrap(),
            "-o",
            out_path.to_str().unwrap(),
            "--max-instrs",
            "200000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The emitted file must itself be a valid program the CLI can re-simulate.
    let out2 = impact_bin()
        .args([
            "sim",
            out_path.to_str().unwrap(),
            "--no-optimize",
            "--max-instrs",
            "200000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out2.status.success(),
        "{}",
        String::from_utf8_lossy(&out2.stderr)
    );
}

#[test]
fn trace_then_simtrace_round_trips() {
    let file = sample_file("trace");
    let din = std::env::temp_dir().join("impact_cli_test.din");
    let out = impact_bin()
        .args([
            "trace",
            file.to_str().unwrap(),
            "-o",
            din.to_str().unwrap(),
            "--max-instrs",
            "50000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = impact_bin()
        .args(["simtrace", din.to_str().unwrap(), "--cache", "2048"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fetches"), "{text}");
}

#[test]
fn bad_input_fails_with_a_line_numbered_error() {
    let path = std::env::temp_dir().join("impact_cli_test_bad.impact");
    std::fs::write(
        &path,
        "program entry=main\nfn main {\n a:\n  jmp nowhere\n}\n",
    )
    .unwrap();
    let out = impact_bin()
        .args(["report", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 4"), "{err}");
}

#[test]
fn unknown_subcommand_prints_usage() {
    let out = impact_bin().args(["frobnicate"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

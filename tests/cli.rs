//! End-to-end tests of the `impact` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn impact_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_impact"))
}

/// Writes a small test program to a temp file, returns its path.
fn sample_file(name: &str) -> PathBuf {
    let src = r#"
program entry=main
fn main {
  init:
    ialu x4
    jmp loop
  loop:
    load
    ialu x2
    call work -> latch
  latch:
    br loop done p=0.999 spread=0.0005
  done:
    exit
}
fn work {
  body:
    ialu x5
    store
    ret
}
"#;
    let path = std::env::temp_dir().join(format!("impact_cli_test_{name}.impact"));
    std::fs::write(&path, src).expect("temp file is writable");
    path
}

#[test]
fn report_describes_the_program() {
    let file = sample_file("report");
    let out = impact_bin()
        .args(["report", file.to_str().unwrap(), "--max-instrs", "200000"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 functions"), "{text}");
    assert!(text.contains("work"), "{text}");
    assert!(text.contains("invocations"), "{text}");
}

#[test]
fn sim_reports_cache_statistics() {
    let file = sample_file("sim");
    let out = impact_bin()
        .args([
            "sim",
            file.to_str().unwrap(),
            "--cache",
            "512",
            "--block",
            "64",
            "--max-instrs",
            "200000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("miss"), "{text}");
    assert!(text.contains("optimized layout"), "{text}");
}

#[test]
fn optimize_round_trips_through_the_text_format() {
    let file = sample_file("optimize");
    let out_path = std::env::temp_dir().join("impact_cli_test_optimized.impact");
    let out = impact_bin()
        .args([
            "optimize",
            file.to_str().unwrap(),
            "-o",
            out_path.to_str().unwrap(),
            "--max-instrs",
            "200000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The emitted file must itself be a valid program the CLI can re-simulate.
    let out2 = impact_bin()
        .args([
            "sim",
            out_path.to_str().unwrap(),
            "--no-optimize",
            "--max-instrs",
            "200000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out2.status.success(),
        "{}",
        String::from_utf8_lossy(&out2.stderr)
    );
}

#[test]
fn trace_then_simtrace_round_trips() {
    let file = sample_file("trace");
    let din = std::env::temp_dir().join("impact_cli_test.din");
    let out = impact_bin()
        .args([
            "trace",
            file.to_str().unwrap(),
            "-o",
            din.to_str().unwrap(),
            "--max-instrs",
            "50000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = impact_bin()
        .args(["simtrace", din.to_str().unwrap(), "--cache", "2048"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fetches"), "{text}");
}

#[test]
fn bad_input_fails_with_a_line_numbered_error() {
    let path = std::env::temp_dir().join("impact_cli_test_bad.impact");
    std::fs::write(
        &path,
        "program entry=main\nfn main {\n a:\n  jmp nowhere\n}\n",
    )
    .unwrap();
    let out = impact_bin()
        .args(["report", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 4"), "{err}");
}

#[test]
fn unknown_subcommand_prints_usage() {
    let out = impact_bin().args(["frobnicate"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn serve_binds_answers_and_shuts_down_on_stdin_eof() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::process::Stdio;

    let mut child = impact_bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");

    // First stdout line announces the bound address.
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout
        .read_line(&mut line)
        .expect("serve prints its address");
    let addr = line
        .trim()
        .strip_prefix("serving on http://")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();

    // One round trip over plain TCP.
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect to serve");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read response");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    assert!(reply.contains("\"ok\""), "{reply}");

    // Closing stdin must shut the server down cleanly.
    drop(child.stdin.take());
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("shut down cleanly"), "{rest}");
}

#[test]
fn serve_rejects_bad_flags() {
    let out = impact_bin()
        .args(["serve", "--workers", "0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers must be"));

    let out = impact_bin()
        .args(["serve", "--artifact-budget", "lots"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--artifact-budget must be"));

    // Shard membership needs both halves.
    let out = impact_bin()
        .args(["serve", "--peers", "127.0.0.1:7001"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--peers needs --advertise"));
    let out = impact_bin()
        .args(["serve", "--advertise", "127.0.0.1:7001"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--advertise only makes sense"));
}

/// Spawns `impact serve` with the given extra flags, returning the child
/// and its announced address. Dropping the child's stdin shuts it down.
fn spawn_serve(extra: &[&str]) -> (std::process::Child, String) {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    let mut child = impact_bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("serve prints its address");
    let addr = line
        .trim()
        .strip_prefix("serving on http://")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    // Hand stdout back so the pipe outlives this function — closing it
    // would SIGPIPE the server when it logs its shutdown line.
    child.stdout = Some(reader.into_inner());
    (child, addr)
}

/// End-to-end acceptance of the persistent store: a restarted server
/// answers a previously-seen /v1/simulate body byte-identically from
/// disk, without streaming a trace, over real sockets.
#[test]
fn serve_with_store_restarts_warm() {
    use impact::serve::Client;
    use impact::support::json::{parse, Json};

    let store_dir =
        std::env::temp_dir().join(format!("impact_cli_serve_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store_flag = store_dir.to_str().unwrap().to_string();

    let program = std::fs::read_to_string(sample_file("serve_store")).unwrap();
    let body = format!(
        r#"{{"program": {}, "seed": 5, "max_instrs": 30000,
           "configs": [{{"size": 1024}}, {{"size": 256, "assoc": 2}}]}}"#,
        Json::Str(program).to_string_pretty(),
    );

    // Cold process: streams the trace, persists results.
    let (mut child, addr) = spawn_serve(&["--store", &store_flag]);
    let mut client = Client::connect(addr.parse().unwrap()).expect("connect");
    let first = client.post_json("/v1/simulate", &body).expect("simulate");
    assert_eq!(
        first.status,
        200,
        "{}",
        String::from_utf8_lossy(&first.body)
    );
    drop(child.stdin.take());
    assert!(child.wait().expect("serve exits").success());

    // Restarted process, same store, artifact capture off (exercises
    // --artifact-budget): the repeat is disk-served, byte-identically.
    let (mut child, addr) = spawn_serve(&["--store", &store_flag, "--artifact-budget", "0"]);
    let mut client = Client::connect(addr.parse().unwrap()).expect("connect");
    let again = client.post_json("/v1/simulate", &body).expect("simulate");
    assert_eq!(again.status, 200);
    assert_eq!(again.body, first.body, "restart must not change bytes");

    let (status, metrics) = client.get("/metrics").expect("metrics");
    assert_eq!(status, 200);
    let doc = parse(std::str::from_utf8(&metrics).unwrap()).unwrap();
    let sim = doc.get("sim").expect("sim section");
    assert_eq!(sim.get("traces_streamed").and_then(Json::as_u64), Some(0));
    assert_eq!(sim.get("disk_served").and_then(Json::as_u64), Some(1));
    assert_eq!(sim.get("artifacts_stored").and_then(Json::as_u64), Some(0));
    assert!(sim.get("store_hits").and_then(Json::as_u64).unwrap() >= 2);

    drop(child.stdin.take());
    assert!(child.wait().expect("serve exits").success());
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn store_subcommand_inspects_verifies_and_gcs() {
    use impact::store::{kind, Cid, Store};

    let dir = std::env::temp_dir().join(format!("impact_cli_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).expect("open store");
    let payloads: [&[u8]; 3] = [
        &[kind::ARTIFACT, 1, 2, 3],
        &[kind::RESULT, 4, 5],
        &[kind::RESULT, 6],
    ];
    let cids: Vec<Cid> = payloads
        .iter()
        .map(|p| {
            let cid = Cid::of(p);
            store.put(&cid, p).expect("put");
            cid
        })
        .collect();
    let dir_flag = dir.to_str().unwrap();

    // ls: every cid listed with its kind label.
    let out = impact_bin()
        .args(["store", "ls", dir_flag])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("3 entries"), "{text}");
    assert!(text.contains(&cids[0].to_hex()), "{text}");
    assert!(text.contains("artifact"), "{text}");
    assert!(text.contains("result"), "{text}");

    // stat --json: aggregate counts.
    let out = impact_bin()
        .args(["store", "stat", dir_flag, "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"entries\": 3"), "{text}");
    assert!(text.contains("\"artifacts\": 1"), "{text}");
    assert!(text.contains("\"results\": 2"), "{text}");

    // verify: clean store passes.
    let out = impact_bin()
        .args(["store", "verify", dir_flag])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("3 ok"));

    // Corrupt one payload byte on disk: verify must quarantine it and
    // exit nonzero.
    let hex = cids[0].to_hex();
    let victim = dir.join("objects").join(&hex[..2]).join(&hex);
    let mut raw = std::fs::read(&victim).expect("read entry");
    let last = raw.len() - 1;
    raw[last] ^= 0x40;
    std::fs::write(&victim, &raw).expect("rewrite entry");
    let out = impact_bin()
        .args(["store", "verify", dir_flag])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "corruption must fail verify");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 quarantined"), "{text}");
    assert!(text.contains(&hex), "{text}");

    // gc --max-bytes 0 clears the remaining entries.
    let out = impact_bin()
        .args(["store", "gc", dir_flag, "--max-bytes", "0", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"removed\": 2"), "{text}");
    assert!(text.contains("\"kept_bytes\": 0"), "{text}");

    // gc without a budget is an error, as is a missing directory action.
    let out = impact_bin()
        .args(["store", "gc", dir_flag])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--max-bytes"));
    let out = impact_bin()
        .args(["store", "frobnicate", dir_flag])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

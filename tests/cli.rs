//! End-to-end tests of the `impact` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn impact_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_impact"))
}

/// Writes a small test program to a temp file, returns its path.
fn sample_file(name: &str) -> PathBuf {
    let src = r#"
program entry=main
fn main {
  init:
    ialu x4
    jmp loop
  loop:
    load
    ialu x2
    call work -> latch
  latch:
    br loop done p=0.999 spread=0.0005
  done:
    exit
}
fn work {
  body:
    ialu x5
    store
    ret
}
"#;
    let path = std::env::temp_dir().join(format!("impact_cli_test_{name}.impact"));
    std::fs::write(&path, src).expect("temp file is writable");
    path
}

#[test]
fn report_describes_the_program() {
    let file = sample_file("report");
    let out = impact_bin()
        .args(["report", file.to_str().unwrap(), "--max-instrs", "200000"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 functions"), "{text}");
    assert!(text.contains("work"), "{text}");
    assert!(text.contains("invocations"), "{text}");
}

#[test]
fn sim_reports_cache_statistics() {
    let file = sample_file("sim");
    let out = impact_bin()
        .args([
            "sim",
            file.to_str().unwrap(),
            "--cache",
            "512",
            "--block",
            "64",
            "--max-instrs",
            "200000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("miss"), "{text}");
    assert!(text.contains("optimized layout"), "{text}");
}

#[test]
fn optimize_round_trips_through_the_text_format() {
    let file = sample_file("optimize");
    let out_path = std::env::temp_dir().join("impact_cli_test_optimized.impact");
    let out = impact_bin()
        .args([
            "optimize",
            file.to_str().unwrap(),
            "-o",
            out_path.to_str().unwrap(),
            "--max-instrs",
            "200000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The emitted file must itself be a valid program the CLI can re-simulate.
    let out2 = impact_bin()
        .args([
            "sim",
            out_path.to_str().unwrap(),
            "--no-optimize",
            "--max-instrs",
            "200000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out2.status.success(),
        "{}",
        String::from_utf8_lossy(&out2.stderr)
    );
}

#[test]
fn trace_then_simtrace_round_trips() {
    let file = sample_file("trace");
    let din = std::env::temp_dir().join("impact_cli_test.din");
    let out = impact_bin()
        .args([
            "trace",
            file.to_str().unwrap(),
            "-o",
            din.to_str().unwrap(),
            "--max-instrs",
            "50000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = impact_bin()
        .args(["simtrace", din.to_str().unwrap(), "--cache", "2048"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fetches"), "{text}");
}

#[test]
fn bad_input_fails_with_a_line_numbered_error() {
    let path = std::env::temp_dir().join("impact_cli_test_bad.impact");
    std::fs::write(
        &path,
        "program entry=main\nfn main {\n a:\n  jmp nowhere\n}\n",
    )
    .unwrap();
    let out = impact_bin()
        .args(["report", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 4"), "{err}");
}

#[test]
fn unknown_subcommand_prints_usage() {
    let out = impact_bin().args(["frobnicate"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn serve_binds_answers_and_shuts_down_on_stdin_eof() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::process::Stdio;

    let mut child = impact_bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");

    // First stdout line announces the bound address.
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout
        .read_line(&mut line)
        .expect("serve prints its address");
    let addr = line
        .trim()
        .strip_prefix("serving on http://")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();

    // One round trip over plain TCP.
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect to serve");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read response");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    assert!(reply.contains("\"ok\""), "{reply}");

    // Closing stdin must shut the server down cleanly.
    drop(child.stdin.take());
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("shut down cleanly"), "{rest}");
}

#[test]
fn serve_rejects_bad_flags() {
    let out = impact_bin()
        .args(["serve", "--workers", "0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers must be"));
}

//! Mutation tests for the lint framework, through the public API: each
//! analysis must fire on a deliberately corrupted artifact, and the full
//! pipeline over every bundled workload must lint error-free.

use impact::analyze::{self, ConflictConfig, Context, Pass, Registry};
use impact::experiments::prepare::{prepare, Budget};
use impact::ir::{BranchBias, FuncId, Instr, Program, ProgramBuilder, Terminator, ValidateError};
use impact::layout::baseline;
use impact::layout::placement::Placement;
use impact::profile::{Profile, Profiler};

/// A test budget small enough for debug builds.
fn budget() -> Budget {
    Budget {
        profile_instrs: Some(60_000),
        eval_instrs: Some(150_000),
    }
}

/// The acceptance contract: every workload, full pipeline, zero errors.
/// (Warnings — unreachable code, recursion, conflict pressure — are fine.)
#[test]
fn all_ten_workloads_lint_error_free() {
    for w in impact::workloads::all() {
        let p = prepare(&w, &budget());
        let report = analyze::lint_result(&p.result);
        assert_eq!(
            report.error_count(),
            0,
            "{} must lint error-free:\n{}",
            w.name,
            report.render()
        );
    }
}

/// A two-block loop: entry branches back on itself with p=0.7, then exits.
fn loop_program() -> (Program, Profile) {
    let mut pb = ProgramBuilder::new();
    let mut main = pb.function("main");
    let b0 = main.block(vec![Instr::IntAlu; 2]);
    let b1 = main.block(vec![Instr::IntAlu]);
    main.terminate(b0, Terminator::branch(b0, b1, BranchBias::fixed(0.7)));
    main.terminate(b1, Terminator::Exit);
    let mid = main.finish();
    pb.set_entry(mid);
    let p = pb.finish().unwrap();
    let prof = Profiler::new().runs(4).profile(&p);
    (p, prof)
}

#[test]
fn ipa001_fires_on_an_unreachable_block() {
    let mut pb = ProgramBuilder::new();
    let mut main = pb.function("main");
    let b0 = main.block(vec![Instr::IntAlu]);
    let b1 = main.block(vec![Instr::IntAlu]);
    main.terminate(b0, Terminator::Exit);
    main.terminate(b1, Terminator::jump(b0)); // nothing jumps to b1
    let mid = main.finish();
    pb.set_entry(mid);
    let p = pb.finish().unwrap();

    let report = analyze::lint_program(&p, None);
    assert_eq!(report.with_code("IPA001").count(), 1, "{}", report.render());
    assert_eq!(report.error_count(), 0, "unreachable code is a warning");
}

#[test]
fn ipa002_fires_on_a_corrupted_block_count() {
    let (p, mut prof) = loop_program();
    let entry = p.entry().index();
    prof.funcs[entry].block_counts[1] += 5; // counted more than flowed in
    let report = analyze::lint_program(&p, Some(&prof));
    assert!(
        report.with_code("IPA002").count() > 0,
        "{}",
        report.render()
    );
    assert!(report.error_count() > 0);
}

#[test]
fn ipa003_fires_on_a_corrupted_arc() {
    let (p, mut prof) = loop_program();
    let entry = p.entry().index();
    let (&arc, _) = prof.funcs[entry].arcs.iter().next().expect("loop has arcs");
    *prof.funcs[entry].arcs.get_mut(&arc).unwrap() += 7;
    let report = analyze::lint_program(&p, Some(&prof));
    assert!(
        report.with_code("IPA003").count() > 0,
        "{}",
        report.render()
    );
}

#[test]
fn ipa004_bridges_structural_validation() {
    let (p, _) = loop_program();
    let err = ValidateError::DanglingCallee {
        func: p.entry(),
        block: impact::ir::BlockId::new(0),
        callee: FuncId::new(99),
    };
    let d = analyze::program::StructuralValidation::diagnostic_of(&p, &err);
    assert_eq!(d.code, "IPA004");
    assert_eq!(d.severity, analyze::Severity::Error);
}

#[test]
fn ipa005_fires_on_recursion() {
    let mut pb = ProgramBuilder::new();
    let me = pb.reserve("recur");
    let mut f = pb.function_reserved(me);
    let b0 = f.block(vec![Instr::IntAlu]);
    let b1 = f.block(vec![]);
    f.terminate(b0, Terminator::call(me, b1));
    f.terminate(b1, Terminator::Exit);
    f.finish();
    pb.set_entry(me);
    let p = pb.finish().unwrap();

    let report = analyze::lint_program(&p, None);
    assert!(
        report.with_code("IPA005").count() > 0,
        "{}",
        report.render()
    );
    assert_eq!(report.error_count(), 0, "recursion is a warning");
}

/// Raw address table of a placement, editable for corruption.
fn raw_addrs(p: &Program, placement: &Placement) -> Vec<Vec<u64>> {
    p.functions()
        .map(|(fid, func)| {
            func.block_ids()
                .map(|bid| placement.try_addr(fid, bid).unwrap_or(u64::MAX))
                .collect()
        })
        .collect()
}

/// Rebuilds a placement from (possibly corrupted) raw addresses, keeping
/// the original's order and byte totals.
fn rebuild(placement: &Placement, addrs: Vec<Vec<u64>>) -> Placement {
    Placement::from_raw(
        addrs,
        placement.func_order().to_vec(),
        placement.effective_bytes(),
        placement.total_bytes(),
    )
}

/// Runs the placement verifiers (plus conflict pressure) on a pipeline
/// result whose placement was swapped for `placement`.
fn verify_with(
    p: &impact::experiments::prepare::Prepared,
    placement: &Placement,
) -> analyze::Report {
    let ctx = Context::of_result(&p.result).with_placement(placement);
    Registry::placement_verifiers().run(&ctx)
}

#[test]
fn ipa101_fires_on_a_missing_address() {
    let w = impact::workloads::by_name("wc").unwrap();
    let p = prepare(&w, &budget());
    let entry = p.result.program.entry().index();
    let mut addrs = raw_addrs(&p.result.program, &p.result.placement);
    addrs[entry][0] = u64::MAX;
    let report = verify_with(&p, &rebuild(&p.result.placement, addrs));
    assert!(
        report.with_code("IPA101").count() > 0,
        "{}",
        report.render()
    );
    assert!(report.error_count() > 0);
}

#[test]
fn ipa102_fires_on_overlapping_blocks() {
    let w = impact::workloads::by_name("wc").unwrap();
    let p = prepare(&w, &budget());
    let entry = p.result.program.entry().index();
    let mut addrs = raw_addrs(&p.result.program, &p.result.placement);
    addrs[entry][1] = addrs[entry][0]; // two blocks at one address
    let report = verify_with(&p, &rebuild(&p.result.placement, addrs));
    assert!(
        report.with_code("IPA102").count() > 0,
        "{}",
        report.render()
    );
}

#[test]
fn ipa103_fires_on_hot_code_in_the_cold_region() {
    let w = impact::workloads::by_name("wc").unwrap();
    let p = prepare(&w, &budget());
    let entry = p.result.program.entry().index();
    let mut addrs = raw_addrs(&p.result.program, &p.result.placement);
    // The entry block certainly executed; banish it past the boundary.
    addrs[entry][0] = p.result.placement.total_bytes();
    let report = verify_with(&p, &rebuild(&p.result.placement, addrs));
    assert!(
        report.with_code("IPA103").count() > 0,
        "{}",
        report.render()
    );
}

#[test]
fn ipa104_fires_on_a_misaligned_block() {
    let w = impact::workloads::by_name("wc").unwrap();
    let p = prepare(&w, &budget());
    let entry = p.result.program.entry().index();
    let mut addrs = raw_addrs(&p.result.program, &p.result.placement);
    addrs[entry][0] += 2;
    let report = verify_with(&p, &rebuild(&p.result.placement, addrs));
    assert!(
        report.with_code("IPA104").count() > 0,
        "{}",
        report.render()
    );
}

#[test]
fn ipa105_fires_on_a_layout_that_breaks_traces() {
    let w = impact::workloads::by_name("wc").unwrap();
    let p = prepare(&w, &budget());
    // A random placement ignores the selected traces entirely.
    let scrambled = baseline::random(&p.result.program, 7);
    let broken = verify_with(&p, &scrambled);
    assert!(
        broken.with_code("IPA105").count() > 0,
        "{}",
        broken.render()
    );
    // The optimized placement keeps every trace contiguous.
    let optimized = verify_with(&p, &p.result.placement);
    assert_eq!(
        optimized.with_code("IPA105").count(),
        0,
        "{}",
        optimized.render()
    );
}

/// A caller whose loop invokes a looping leaf: the two bodies are
/// concurrently hot, so their cache coloring matters.
fn concurrent_loops() -> Program {
    let mut pb = ProgramBuilder::new();
    let leaf = pb.reserve("leaf");
    let mut main = pb.function("main");
    let head = main.block(vec![Instr::IntAlu; 15]); // 64 B
    let latch = main.block(vec![Instr::IntAlu; 15]); // 64 B
    let exit = main.block(vec![]);
    main.terminate(head, Terminator::call(leaf, latch));
    main.terminate(
        latch,
        Terminator::branch(head, exit, BranchBias::fixed(0.9)),
    );
    main.terminate(exit, Terminator::Exit);
    let mid = main.finish();
    let mut lf = pb.function_reserved(leaf);
    let l0 = lf.block(vec![Instr::Load; 15]); // 64 B
    let l1 = lf.block(vec![]);
    lf.terminate(l0, Terminator::branch(l0, l1, BranchBias::fixed(0.9)));
    lf.terminate(l1, Terminator::Return);
    lf.finish();
    pb.set_entry(mid);
    pb.finish().unwrap()
}

/// Natural addresses for `concurrent_loops`, with the leaf moved to
/// `leaf_at` — the corruption knob for the IPA302/IPA303 mutations.
fn concurrent_placement(p: &Program, leaf_at: u64) -> Placement {
    let main = p.entry();
    let leaf = p.function_by_name("leaf").unwrap();
    let mut addrs = vec![Vec::new(), Vec::new()];
    let mut cursor = 0;
    for (_, block) in p.function(main).blocks() {
        addrs[main.index()].push(cursor);
        cursor += block.size_bytes();
    }
    let mut cursor = leaf_at;
    for (_, block) in p.function(leaf).blocks() {
        addrs[leaf.index()].push(cursor);
        cursor += block.size_bytes();
    }
    let total = cursor;
    Placement::from_raw(addrs, vec![main, leaf], total, total)
}

#[test]
fn ipa301_fires_when_a_loop_outgrows_the_cache() {
    let w = impact::workloads::by_name("wc").unwrap();
    let p = prepare(&w, &budget());
    // Shrink the cache under wc's real loops instead of growing a fake one.
    let tiny = ConflictConfig {
        cache_bytes: 256,
        line_bytes: 64,
        ..ConflictConfig::default()
    };
    let ctx = Context::program_only(&p.result.program).with_conflict(tiny);
    let report = Registry::static_analyses().run(&ctx);
    assert!(
        report.with_code("IPA301").count() > 0,
        "{}",
        report.render()
    );
    assert_eq!(report.error_count(), 0, "footprint pressure is a warning");

    // At a cache that swallows the whole program, every loop fits.
    let huge = ConflictConfig {
        cache_bytes: 1 << 20,
        line_bytes: 64,
        ..ConflictConfig::default()
    };
    let ctx = Context::program_only(&p.result.program).with_conflict(huge);
    let report = Registry::static_analyses().run(&ctx);
    assert_eq!(report.with_code("IPA301").count(), 0, "{}", report.render());
}

#[test]
fn ipa302_fires_on_aliased_concurrent_loops() {
    let p = concurrent_loops();
    // Exactly one cache capacity apart: the loops contest the same sets.
    let aliased = concurrent_placement(&p, 2048);
    let ctx = Context::program_only(&p).with_placement(&aliased);
    let report = Registry::static_analyses().run(&ctx);
    assert!(
        report.with_code("IPA302").count() > 0,
        "{}",
        report.render()
    );

    // Adjacent in one cache frame: disjoint sets, nothing to report.
    let disjoint = concurrent_placement(&p, 192);
    let ctx = Context::program_only(&p).with_placement(&disjoint);
    let report = Registry::static_analyses().run(&ctx);
    assert_eq!(report.with_code("IPA302").count(), 0, "{}", report.render());
}

#[test]
fn ipa303_fires_when_the_miss_bound_blows_the_threshold() {
    let p = concurrent_loops();
    let prof = Profiler::new().runs(4).profile(&p);
    let aliased = concurrent_placement(&p, 2048);
    let ctx = Context::program_only(&p)
        .with_profile(&prof)
        .with_placement(&aliased);
    let report = Registry::static_analyses().run(&ctx);
    assert!(
        report.with_code("IPA303").count() > 0,
        "{}",
        report.render()
    );

    // The same placement passes once the threshold is mutated past 100%.
    let lax = ConflictConfig {
        miss_bound_warn: 1.0,
        ..ConflictConfig::default()
    };
    let report = Registry::static_analyses().run(&ctx.with_conflict(lax));
    assert_eq!(report.with_code("IPA303").count(), 0, "{}", report.render());
}

#[test]
fn ipa201_fires_when_the_cache_has_one_set() {
    let w = impact::workloads::by_name("wc").unwrap();
    let p = prepare(&w, &budget());
    // One 64-byte set: every hot line contests it.
    let tiny = ConflictConfig {
        cache_bytes: 64,
        line_bytes: 64,
        hot_fraction: 0.0,
        ..ConflictConfig::default()
    };
    let ctx = Context::of_result(&p.result).with_conflict(tiny);
    let diags = analyze::cache::ConflictPressure.run(&ctx);
    assert!(!diags.is_empty(), "a one-set cache must show conflicts");
    assert!(diags.iter().all(|d| d.code == "IPA201"));
}

/// Runs the layout advisors on a pipeline result whose placement was
/// swapped for `placement`.
fn advise_with(
    p: &impact::experiments::prepare::Prepared,
    placement: &Placement,
) -> analyze::Report {
    let ctx = Context::of_result(&p.result).with_placement(placement);
    Registry::advisors().run(&ctx)
}

/// The advisors' acceptance contract: the paper pipeline's own
/// placement draws no advice on any bundled workload — through the
/// measured-profile path and the profile-free static path alike.
#[test]
fn advisors_are_silent_on_every_paper_placement() {
    for w in impact::workloads::all() {
        let p = prepare(&w, &budget());
        let report = advise_with(&p, &p.result.placement);
        assert_eq!(
            report.diagnostics.len(),
            0,
            "{} paper placement must satisfy the advisors:\n{}",
            w.name,
            report.render()
        );
        let advice = analyze::advise_static(&w.program, &Default::default(), Default::default())
            .expect("static advice");
        assert_eq!(
            advice.advice.diagnostics.len(),
            0,
            "{} static-path placement must satisfy the advisors:\n{}",
            w.name,
            advice.advice.render()
        );
    }
}

#[test]
fn ipa401_fires_on_a_scrambled_global_order() {
    let w = impact::workloads::by_name("cccp").unwrap();
    let p = prepare(&w, &budget());
    // A random order turns cccp's hot fall-through chains into far jumps.
    let scrambled = baseline::random(&p.result.program, 7);
    let report = advise_with(&p, &scrambled);
    assert!(
        report.with_code("IPA401").count() > 0,
        "{}",
        report.render()
    );
    assert_eq!(report.error_count(), 0, "advice is always a warning");
}

#[test]
fn ipa402_fires_on_a_separated_hot_call_pair() {
    let w = impact::workloads::by_name("compress").unwrap();
    let p = prepare(&w, &budget());
    // compress's single hot callee sits 8 B from its caller in the paper
    // order; a random order strands it beyond a cache capacity.
    let scrambled = baseline::random(&p.result.program, 7);
    let report = advise_with(&p, &scrambled);
    assert!(
        report.with_code("IPA402").count() > 0,
        "{}",
        report.render()
    );
}

#[test]
fn ipa403_fires_on_a_scattered_loop_core() {
    let w = impact::workloads::by_name("make").unwrap();
    let p = prepare(&w, &budget());
    let scrambled = baseline::random(&p.result.program, 7);
    let report = advise_with(&p, &scrambled);
    assert!(
        report.with_code("IPA403").count() > 0,
        "{}",
        report.render()
    );
}

#[test]
fn ipa404_fires_on_interleaved_cold_code() {
    let w = impact::workloads::by_name("wc").unwrap();
    let p = prepare(&w, &budget());
    // The random baseline ignores the effective / never-executed split.
    let scrambled = baseline::random(&p.result.program, 7);
    let report = advise_with(&p, &scrambled);
    assert!(
        report.with_code("IPA404").count() > 0,
        "{}",
        report.render()
    );
}

#[test]
fn ipa405_fires_on_a_traffic_heavy_order() {
    let w = impact::workloads::by_name("yacc").unwrap();
    let p = prepare(&w, &budget());
    let scrambled = baseline::random(&p.result.program, 7);
    let report = advise_with(&p, &scrambled);
    assert!(
        report.with_code("IPA405").count() > 0,
        "{}",
        report.render()
    );
}

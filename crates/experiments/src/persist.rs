//! Persistent keys and payload codecs for the on-disk evaluation store.
//!
//! The in-memory session fingerprint ([`session::fingerprint`]) rides
//! `std::hash`, whose output is explicitly not a committed format — fine
//! for a per-process memo accelerator, useless for naming files that
//! outlive the process. This module derives the *stable* 256-bit keys
//! the store needs by feeding the exact same structural fields through
//! [`impact_store::KeyWriter`]'s canonical encoding into SHA-256:
//!
//! * [`trace_key`] — identifies one evaluation trace, covering
//!   everything the trace depends on (program shape with terminators and
//!   branch biases, placement addresses, seed, limits), mirroring the
//!   session fingerprint field-for-field.
//! * [`artifact_cid`] / [`result_cid`] — derive the store keys for a
//!   trace's captured [`RunBuffer`] and for one cache configuration's
//!   finished statistics over it.
//!
//! Payloads are little-endian `u64` sequences behind a one-byte kind tag
//! ([`impact_store::kind`]); decoders validate the tag, the length, and
//! the artifact's instruction sum, so a frame that passes the store's
//! checksum but was written by a different (future) layout still decodes
//! to `None` instead of garbage.
//!
//! [`session::fingerprint`]: crate::session::fingerprint

use impact_cache::{AccessSink, Associativity, CacheConfig, CacheStats, FillPolicy, Replacement};
use impact_ir::{Program, Terminator};
use impact_layout::Placement;
use impact_profile::ExecLimits;
use impact_store::{kind, Cid, KeyWriter};
use impact_trace::RunBuffer;

/// Stable 256-bit identity of one evaluation trace: the persistent
/// counterpart of [`crate::session::fingerprint`] (same fields, committed
/// encoding).
#[must_use]
pub fn trace_key(program: &Program, placement: &Placement, seed: u64, limits: ExecLimits) -> Cid {
    let mut w = KeyWriter::new("impact.trace.v1");
    w.u64(program.function_count() as u64);
    w.u64(program.entry().index() as u64);
    for (fid, func) in program.functions() {
        w.str(func.name());
        w.u64(func.entry().index() as u64);
        w.u64(func.block_count() as u64);
        for (bid, block) in func.blocks() {
            w.u64(block.instr_count());
            write_terminator(&mut w, block.terminator());
            w.opt_u64(placement.try_addr(fid, bid));
        }
    }
    w.u64(placement.effective_bytes());
    w.u64(placement.total_bytes());
    w.u64(seed);
    w.u64(limits.max_instructions);
    w.u64(limits.max_call_depth as u64);
    w.finish()
}

fn write_terminator(w: &mut KeyWriter, t: &Terminator) {
    match t {
        Terminator::Jump { target } => {
            w.u8(0);
            w.u64(target.index() as u64);
        }
        Terminator::Branch {
            taken,
            not_taken,
            bias,
        } => {
            w.u8(1);
            w.u64(taken.index() as u64);
            w.u64(not_taken.index() as u64);
            w.u64(bias.base.to_bits());
            w.u64(bias.input_spread.to_bits());
        }
        Terminator::Switch { targets } => {
            w.u8(2);
            w.u64(targets.len() as u64);
            for (b, weight) in targets {
                w.u64(b.index() as u64);
                w.u64(u64::from(*weight));
            }
        }
        Terminator::Call { callee, ret_to } => {
            w.u8(3);
            w.u64(callee.index() as u64);
            w.u64(ret_to.index() as u64);
        }
        Terminator::Return => w.u8(4),
        Terminator::Exit => w.u8(5),
    }
}

/// Store key of a trace's captured [`RunBuffer`] artifact.
#[must_use]
pub fn artifact_cid(trace: &Cid) -> Cid {
    let mut w = KeyWriter::new("impact.artifact.v1");
    w.bytes(&trace.0);
    w.finish()
}

/// Store key of one cache configuration's finished statistics over a
/// trace.
#[must_use]
pub fn result_cid(trace: &Cid, config: &CacheConfig) -> Cid {
    let mut w = KeyWriter::new("impact.result.v1");
    w.bytes(&trace.0);
    w.u64(config.size_bytes);
    w.u64(config.block_bytes);
    match config.associativity {
        Associativity::Direct => w.u8(0),
        Associativity::Ways(n) => {
            w.u8(1);
            w.u32(n);
        }
        Associativity::Full => w.u8(2),
    }
    match config.fill {
        FillPolicy::FullBlock => w.u8(0),
        FillPolicy::Sectored { sector_bytes } => {
            w.u8(1);
            w.u64(sector_bytes);
        }
        FillPolicy::Partial => w.u8(2),
    }
    match config.replacement {
        Replacement::Lru => w.u8(0),
        Replacement::Fifo => w.u8(1),
        Replacement::Random => w.u8(2),
    }
    w.finish()
}

/// Serializes a captured run buffer: kind tag, instruction total, run
/// count, then the `(start, words)` pairs.
#[must_use]
pub fn encode_artifact(buf: &RunBuffer) -> Vec<u8> {
    let runs = buf.runs();
    let mut out = Vec::with_capacity(1 + 16 + runs.len() * 16);
    out.push(kind::ARTIFACT);
    out.extend_from_slice(&buf.instructions().to_le_bytes());
    out.extend_from_slice(&(runs.len() as u64).to_le_bytes());
    for (start, words) in runs {
        out.extend_from_slice(&start.to_le_bytes());
        out.extend_from_slice(&words.to_le_bytes());
    }
    out
}

/// Reconstructs a run buffer, or `None` on any layout mismatch
/// (wrong kind, short payload, trailing bytes, zero-length run, or an
/// instruction total that disagrees with the runs).
#[must_use]
pub fn decode_artifact(payload: &[u8]) -> Option<RunBuffer> {
    let mut r = Reader::new(payload, kind::ARTIFACT)?;
    let instructions = r.u64()?;
    let count = r.u64()?;
    let mut buf = RunBuffer::new();
    for _ in 0..count {
        let start = r.u64()?;
        let words = r.u64()?;
        if words == 0 {
            return None;
        }
        buf.access_run(start, words);
    }
    if !r.done() || buf.instructions() != instructions {
        return None;
    }
    Some(buf)
}

/// Serializes one finished per-config result: kind tag, the five
/// [`CacheStats`] counters, then the trace length.
#[must_use]
pub fn encode_result(stats: &CacheStats, instructions: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 48);
    out.push(kind::RESULT);
    for v in [
        stats.accesses,
        stats.misses,
        stats.words_fetched,
        stats.exec_runs,
        stats.exec_run_instrs,
        instructions,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes one finished per-config result, or `None` on any layout
/// mismatch.
#[must_use]
pub fn decode_result(payload: &[u8]) -> Option<(CacheStats, u64)> {
    let mut r = Reader::new(payload, kind::RESULT)?;
    let stats = CacheStats {
        accesses: r.u64()?,
        misses: r.u64()?,
        words_fetched: r.u64()?,
        exec_runs: r.u64()?,
        exec_run_instrs: r.u64()?,
    };
    let instructions = r.u64()?;
    if !r.done() {
        return None;
    }
    Some((stats, instructions))
}

/// Cursor over a kind-tagged little-endian payload.
struct Reader<'a> {
    rest: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(payload: &'a [u8], kind: u8) -> Option<Self> {
        let (&tag, rest) = payload.split_first()?;
        (tag == kind).then_some(Reader { rest })
    }

    fn u64(&mut self) -> Option<u64> {
        if self.rest.len() < 8 {
            return None;
        }
        let (head, rest) = self.rest.split_at(8);
        self.rest = rest;
        Some(u64::from_le_bytes(head.try_into().expect("8-byte split")))
    }

    fn done(&self) -> bool {
        self.rest.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_layout::baseline;

    const LIMITS: ExecLimits = ExecLimits {
        max_instructions: 40_000,
        max_call_depth: 512,
    };

    #[test]
    fn trace_keys_separate_what_fingerprints_separate() {
        let w = impact_workloads::by_name("wc").unwrap();
        let natural = baseline::natural(&w.program);
        let shuffled = baseline::random(&w.program, 0xfeed);
        let base = trace_key(&w.program, &natural, 1, LIMITS);
        assert_eq!(base, trace_key(&w.program, &natural, 1, LIMITS));
        assert_ne!(base, trace_key(&w.program, &shuffled, 1, LIMITS));
        assert_ne!(base, trace_key(&w.program, &natural, 2, LIMITS));
        let tighter = ExecLimits {
            max_instructions: 39_999,
            ..LIMITS
        };
        assert_ne!(base, trace_key(&w.program, &natural, 1, tighter));
    }

    #[test]
    fn derived_cids_are_domain_separated() {
        let w = impact_workloads::by_name("cmp").unwrap();
        let placement = baseline::natural(&w.program);
        let trace = trace_key(&w.program, &placement, 1, LIMITS);
        let cfg = CacheConfig::direct_mapped(2048, 64);
        let art = artifact_cid(&trace);
        let res = result_cid(&trace, &cfg);
        assert_ne!(art, res);
        assert_ne!(art, trace);
        assert_ne!(
            res,
            result_cid(&trace, &CacheConfig::direct_mapped(1024, 64))
        );
    }

    #[test]
    fn artifact_codec_round_trips() {
        let mut buf = RunBuffer::new();
        buf.access_run(0x40, 16);
        buf.access_run(0x1000, 3);
        buf.access(0x2000);
        let payload = encode_artifact(&buf);
        assert_eq!(payload[0], kind::ARTIFACT);
        let back = decode_artifact(&payload).expect("decode");
        assert_eq!(back, buf);
        assert_eq!(encode_artifact(&back), payload, "re-encode is identical");

        // Damage: short payload, trailing bytes, run-count lie, bad kind.
        assert!(decode_artifact(&payload[..payload.len() - 1]).is_none());
        let mut long = payload.clone();
        long.push(0);
        assert!(decode_artifact(&long).is_none());
        let mut lied = payload.clone();
        lied[1] ^= 1; // instruction total no longer matches the runs
        assert!(decode_artifact(&lied).is_none());
        let mut wrong_kind = payload;
        wrong_kind[0] = kind::RESULT;
        assert!(decode_artifact(&wrong_kind).is_none());
    }

    #[test]
    fn result_codec_round_trips() {
        let stats = CacheStats {
            accesses: 10,
            misses: 2,
            words_fetched: 32,
            exec_runs: 4,
            exec_run_instrs: 40,
        };
        let payload = encode_result(&stats, 123);
        assert_eq!(payload[0], kind::RESULT);
        assert_eq!(decode_result(&payload), Some((stats, 123)));
        assert!(decode_result(&payload[..payload.len() - 1]).is_none());
        let mut wrong_kind = payload;
        wrong_kind[0] = kind::ARTIFACT;
        assert!(decode_result(&wrong_kind).is_none());
    }
}

//! `MIN_PROB` sweep: is the paper's 0.7 threshold the right one?
//!
//! The Appendix hard-codes `MIN_PROB = 0.7` — a trace only grows along an
//! arc carrying ≥70 % of both endpoint weights. This ablation re-runs the
//! whole pipeline across a threshold sweep and reports the ten-benchmark
//! averages: trace quality (Table 4's metrics) and the headline cache
//! performance. Thresholds too low chain cold paths into hot traces;
//! too high degenerate into single-block traces.

use impact_cache::CacheConfig;
use impact_layout::pipeline::{Pipeline, PipelineConfig};

use crate::fmt;
use crate::prepare::{pipeline_config, Prepared};
use crate::session::{SimHandle, SimSession};

/// Thresholds swept (the paper's value is 0.7).
pub const THRESHOLDS: [f64; 5] = [0.5, 0.6, 0.7, 0.8, 0.9];

/// Ten-benchmark averages at one threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The `MIN_PROB` value.
    pub min_prob: f64,
    /// Mean desirable-transfer fraction.
    pub desirable: f64,
    /// Mean trace length (blocks).
    pub trace_length: f64,
    /// Mean miss ratio at 2 KB / 64 B, optimized placement.
    pub miss_2k: f64,
    /// Mean traffic ratio at 2 KB / 64 B.
    pub traffic_2k: f64,
}

impact_support::json_object!(Row {
    min_prob,
    desirable,
    trace_length,
    miss_2k,
    traffic_2k
});

/// One threshold's pending handles plus the profile-side quality sums.
#[derive(Debug)]
struct RowPlan {
    min_prob: f64,
    desirable: f64,
    trace_length: f64,
    handles: Vec<SimHandle>,
}

/// Pending session requests for this table.
#[derive(Debug)]
pub struct Plan {
    rows: Vec<RowPlan>,
    benchmarks: usize,
}

/// Re-runs the pipeline per `(threshold, benchmark)` — fanned across the
/// session's worker threads — and registers the headline-cache request
/// per re-optimized placement. Every threshold yields its own placements
/// and therefore its own trace keys (0.7 reproduces the standard
/// pipeline and coalesces with the headline tables in the memo).
pub fn plan(session: &mut SimSession, prepared: &[Prepared]) -> Plan {
    let cache = [CacheConfig::direct_mapped(2048, 64)];
    let work: Vec<(f64, &Prepared)> = THRESHOLDS
        .iter()
        .flat_map(|&t| prepared.iter().map(move |p| (t, p)))
        .collect();
    let results = impact_support::parallel_map(session.jobs(), work, |(min_prob, p)| {
        let config = PipelineConfig {
            min_prob,
            ..pipeline_config(&p.workload, &p.budget)
        };
        Pipeline::new(config).run(&p.baseline_program)
    });
    let rows = THRESHOLDS
        .iter()
        .zip(results.chunks(prepared.len().max(1)))
        .map(|(&min_prob, results)| {
            let mut desirable = 0.0;
            let mut trace_length = 0.0;
            let handles = prepared
                .iter()
                .zip(results)
                .map(|(p, result)| {
                    desirable += result.trace_quality.desirable;
                    trace_length += result.trace_quality.mean_trace_length;
                    session.request(
                        &result.program,
                        &result.placement,
                        p.eval_seed(),
                        p.budget.eval_limits(&p.workload),
                        &cache,
                    )
                })
                .collect();
            RowPlan {
                min_prob,
                desirable,
                trace_length,
                handles,
            }
        })
        .collect();
    Plan {
        rows,
        benchmarks: prepared.len(),
    }
}

/// Averages the executed statistics into one row per threshold.
#[must_use]
pub fn finish(session: &SimSession, plan: &Plan) -> Vec<Row> {
    let n = plan.benchmarks.max(1) as f64;
    plan.rows
        .iter()
        .map(|r| {
            let (miss, traffic) = r.handles.iter().fold((0.0, 0.0), |(m, t), h| {
                let s = session.stats(h)[0];
                (m + s.miss_ratio(), t + s.traffic_ratio())
            });
            Row {
                min_prob: r.min_prob,
                desirable: r.desirable / n,
                trace_length: r.trace_length / n,
                miss_2k: miss / n,
                traffic_2k: traffic / n,
            }
        })
        .collect()
}

/// Re-runs the pipeline per threshold over all benchmarks (one-shot
/// session wrapper around [`plan`] / [`finish`]).
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    let mut session = SimSession::new();
    let plan = plan(&mut session, prepared);
    session.execute();
    finish(&session, &plan)
}

/// Renders the sweep.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "MIN_PROB",
        "desirable",
        "trace length",
        "2K miss",
        "2K traffic",
    ]
    .map(str::to_owned)
    .to_vec();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!(
                    "{}{}",
                    r.min_prob,
                    if (r.min_prob - 0.7).abs() < 1e-9 {
                        " (paper)"
                    } else {
                        ""
                    }
                ),
                fmt::pct(r.desirable),
                format!("{:.2}", r.trace_length),
                fmt::pct(r.miss_2k),
                fmt::pct(r.traffic_2k),
            ]
        })
        .collect();
    format!(
        "MIN_PROB sweep. Ten-benchmark averages per trace-selection threshold\n{}",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn higher_thresholds_shorten_traces() {
        let w = impact_workloads::by_name("grep").unwrap();
        let p = prepare(&w, &Budget::fast());
        let rows = run(std::slice::from_ref(&p));
        assert_eq!(rows.len(), 5);
        // Trace length is non-increasing in the threshold.
        for pair in rows.windows(2) {
            assert!(
                pair[1].trace_length <= pair[0].trace_length + 0.2,
                "{rows:?}"
            );
        }
        assert!(render(&rows).contains("(paper)"));
    }
}

//! `MIN_PROB` sweep: is the paper's 0.7 threshold the right one?
//!
//! The Appendix hard-codes `MIN_PROB = 0.7` — a trace only grows along an
//! arc carrying ≥70 % of both endpoint weights. This ablation re-runs the
//! whole pipeline across a threshold sweep and reports the ten-benchmark
//! averages: trace quality (Table 4's metrics) and the headline cache
//! performance. Thresholds too low chain cold paths into hot traces;
//! too high degenerate into single-block traces.

use impact_cache::CacheConfig;
use impact_layout::pipeline::{Pipeline, PipelineConfig};

use crate::fmt;
use crate::prepare::{pipeline_config, Prepared};
use crate::sim;

/// Thresholds swept (the paper's value is 0.7).
pub const THRESHOLDS: [f64; 5] = [0.5, 0.6, 0.7, 0.8, 0.9];

/// Ten-benchmark averages at one threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The `MIN_PROB` value.
    pub min_prob: f64,
    /// Mean desirable-transfer fraction.
    pub desirable: f64,
    /// Mean trace length (blocks).
    pub trace_length: f64,
    /// Mean miss ratio at 2 KB / 64 B, optimized placement.
    pub miss_2k: f64,
    /// Mean traffic ratio at 2 KB / 64 B.
    pub traffic_2k: f64,
}

impact_support::json_object!(Row {
    min_prob,
    desirable,
    trace_length,
    miss_2k,
    traffic_2k
});

/// Re-runs the pipeline per threshold over all benchmarks.
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    let cache = [CacheConfig::direct_mapped(2048, 64)];
    THRESHOLDS
        .iter()
        .map(|&min_prob| {
            let mut desirable = 0.0;
            let mut trace_length = 0.0;
            let mut miss = 0.0;
            let mut traffic = 0.0;
            for p in prepared {
                let config = PipelineConfig {
                    min_prob,
                    ..pipeline_config(&p.workload, &p.budget)
                };
                let result = Pipeline::new(config).run(&p.baseline_program);
                desirable += result.trace_quality.desirable;
                trace_length += result.trace_quality.mean_trace_length;
                let stats = sim::simulate(
                    &result.program,
                    &result.placement,
                    p.eval_seed(),
                    p.budget.eval_limits(&p.workload),
                    &cache,
                )[0];
                miss += stats.miss_ratio();
                traffic += stats.traffic_ratio();
            }
            let n = prepared.len().max(1) as f64;
            Row {
                min_prob,
                desirable: desirable / n,
                trace_length: trace_length / n,
                miss_2k: miss / n,
                traffic_2k: traffic / n,
            }
        })
        .collect()
}

/// Renders the sweep.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "MIN_PROB",
        "desirable",
        "trace length",
        "2K miss",
        "2K traffic",
    ]
    .map(str::to_owned)
    .to_vec();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!(
                    "{}{}",
                    r.min_prob,
                    if (r.min_prob - 0.7).abs() < 1e-9 {
                        " (paper)"
                    } else {
                        ""
                    }
                ),
                fmt::pct(r.desirable),
                format!("{:.2}", r.trace_length),
                fmt::pct(r.miss_2k),
                fmt::pct(r.traffic_2k),
            ]
        })
        .collect();
    format!(
        "MIN_PROB sweep. Ten-benchmark averages per trace-selection threshold\n{}",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn higher_thresholds_shorten_traces() {
        let w = impact_workloads::by_name("grep").unwrap();
        let p = prepare(&w, &Budget::fast());
        let rows = run(std::slice::from_ref(&p));
        assert_eq!(rows.len(), 5);
        // Trace length is non-increasing in the threshold.
        for pair in rows.windows(2) {
            assert!(
                pair[1].trace_length <= pair[0].trace_length + 0.2,
                "{rows:?}"
            );
        }
        assert!(render(&rows).contains("(paper)"));
    }
}

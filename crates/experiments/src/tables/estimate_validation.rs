//! Estimator validation: predicted vs. trace-simulated miss ratios.
//!
//! The analytical estimator ([`crate::estimate`]) is only useful if it
//! tracks the trace-driven simulator; this table measures the gap per
//! benchmark across the direct-mapped design space the paper explores.
//! Predictions come from the *profiling* runs; simulations use the
//! *held-out* evaluation trace — so the gap includes both model error
//! and train/test input variation, exactly the setting in which the
//! paper hoped to use such an estimator.

use impact_cache::CacheConfig;

use crate::estimate::estimate_direct_mapped;
use crate::fmt;
use crate::prepare::Prepared;
use crate::session::{SimHandle, SimSession};

/// Cache sizes compared (64-byte blocks throughout).
pub const CACHE_SIZES: [u64; 3] = [512, 2048, 8192];

/// One benchmark's predicted/simulated pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// `(predicted, simulated)` miss ratios per entry of [`CACHE_SIZES`].
    pub cells: Vec<(f64, f64)>,
}

impact_support::json_object!(Row { name, cells });

/// Pending session requests for this table.
#[derive(Debug)]
pub struct Plan {
    configs: Vec<CacheConfig>,
    rows: Vec<(usize, SimHandle)>,
}

/// Registers the simulated half of every comparison (the predictions are
/// computed analytically in [`finish`]).
pub fn plan(session: &mut SimSession, prepared: &[Prepared]) -> Plan {
    let configs: Vec<CacheConfig> = CACHE_SIZES
        .iter()
        .map(|&s| CacheConfig::direct_mapped(s, 64))
        .collect();
    let rows = prepared
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let handle = session.request(
                &p.result.program,
                &p.result.placement,
                p.eval_seed(),
                p.budget.eval_limits(&p.workload),
                &configs,
            );
            (i, handle)
        })
        .collect();
    Plan { configs, rows }
}

/// Pairs the analytic predictions with the executed simulations.
#[must_use]
pub fn finish(session: &SimSession, plan: &Plan, prepared: &[Prepared]) -> Vec<Row> {
    plan.rows
        .iter()
        .map(|(i, handle)| {
            let p = &prepared[*i];
            let simulated = session.stats(handle);
            let cells = plan
                .configs
                .iter()
                .zip(&simulated)
                .map(|(&config, s)| {
                    let est = estimate_direct_mapped(
                        &p.result.program,
                        &p.result.profile,
                        &p.result.placement,
                        config,
                    );
                    (est.miss_ratio, s.miss_ratio())
                })
                .collect();
            Row {
                name: p.workload.name.to_owned(),
                cells,
            }
        })
        .collect()
}

/// Runs prediction and simulation for every benchmark (one-shot session
/// wrapper around [`plan`] / [`finish`]).
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    let mut session = SimSession::new();
    let plan = plan(&mut session, prepared);
    session.execute();
    finish(&session, &plan, prepared)
}

/// Mean absolute error (in percentage points of miss ratio) per cache
/// size.
#[must_use]
pub fn mean_absolute_error(rows: &[Row]) -> Vec<f64> {
    let n = rows.len().max(1) as f64;
    (0..CACHE_SIZES.len())
        .map(|i| {
            rows.iter()
                .map(|r| (r.cells[i].0 - r.cells[i].1).abs())
                .sum::<f64>()
                / n
        })
        .collect()
}

/// Renders the table with a mean-absolute-error row.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut header = vec!["name".to_owned()];
    for &s in &CACHE_SIZES {
        header.push(format!("{s}B predicted"));
        header.push(format!("{s}B simulated"));
    }
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.name.clone()];
            for &(p, s) in &r.cells {
                row.push(fmt::pct(p));
                row.push(fmt::pct(s));
            }
            row
        })
        .collect();
    let mut mae_row = vec!["mean |err|".to_owned()];
    for e in mean_absolute_error(rows) {
        mae_row.push(fmt::pct(e));
        mae_row.push(String::new());
    }
    table.push(mae_row);
    format!(
        "Estimator. Weighted-graph miss prediction vs trace simulation (direct-mapped, 64B blocks)\n{}",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn estimator_tracks_simulation_within_a_point_for_cache_friendly_code() {
        let w = impact_workloads::by_name("wc").unwrap();
        let p = prepare(&w, &Budget::fast());
        let rows = run(std::slice::from_ref(&p));
        for &(pred, sim) in &rows[0].cells {
            assert!(
                (pred - sim).abs() < 0.01,
                "wc: predicted {pred:.4} vs simulated {sim:.4}"
            );
        }
        assert!(render(&rows).contains("Estimator"));
    }
}

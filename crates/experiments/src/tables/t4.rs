//! Table 4 — trace selection results.

use crate::fmt;
use crate::prepare::Prepared;
use crate::session::SimSession;

/// One benchmark's trace-quality statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Tail-to-header transfer fraction.
    pub neutral: f64,
    /// Mid-trace entry/exit fraction.
    pub undesirable: f64,
    /// Intra-trace sequential fraction.
    pub desirable: f64,
    /// Mean basic blocks per trace.
    pub trace_length: f64,
}

impact_support::json_object!(Row {
    name,
    neutral,
    undesirable,
    desirable,
    trace_length
});

/// Session-uniform plan/finish shape: this table is profile-only (no
/// simulation), so its rows are fully computed at plan time.
#[derive(Debug)]
pub struct Plan {
    rows: Vec<Row>,
}

/// Computes all rows from the trace-quality reports (nothing to
/// simulate).
pub fn plan(_session: &mut SimSession, prepared: &[Prepared]) -> Plan {
    Plan {
        rows: run(prepared),
    }
}

/// Returns the rows computed in [`plan`].
#[must_use]
pub fn finish(_session: &SimSession, plan: Plan) -> Vec<Row> {
    plan.rows
}

/// Extracts one row per prepared benchmark.
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    prepared
        .iter()
        .map(|p| {
            let q = &p.result.trace_quality;
            Row {
                name: p.workload.name.to_owned(),
                neutral: q.neutral,
                undesirable: q.undesirable,
                desirable: q.desirable,
                trace_length: q.mean_trace_length,
            }
        })
        .collect()
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "name",
        "neutral",
        "undesirable",
        "desirable",
        "trace length",
    ]
    .map(str::to_owned)
    .to_vec();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                fmt::pct(r.neutral),
                fmt::pct(r.undesirable),
                fmt::pct(r.desirable),
                format!("{:.1}", r.trace_length),
            ]
        })
        .collect();
    format!(
        "Table 4. Trace Selection Results\n{}",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn fractions_sum_to_one_and_tar_is_branchier_than_cmp() {
        let budget = Budget::fast();
        let cmp = prepare(&impact_workloads::by_name("cmp").unwrap(), &budget);
        let tar = prepare(&impact_workloads::by_name("tar").unwrap(), &budget);
        let rows = run(&[cmp, tar]);
        for r in &rows {
            let sum = r.neutral + r.undesirable + r.desirable;
            assert!((sum - 1.0).abs() < 1e-6, "{r:?}");
        }
        assert!(
            rows[0].trace_length > rows[1].trace_length,
            "cmp traces must be longer than tar's: {rows:?}"
        );
        assert!(render(&rows).contains("trace length"));
    }
}

//! Table 3 — inline expansion results.

use crate::fmt;
use crate::prepare::Prepared;
use crate::session::SimSession;

/// One benchmark's inlining outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Static code size increase ("code inc").
    pub code_increase: f64,
    /// Fraction of dynamic calls eliminated ("call dec").
    pub call_decrease: f64,
    /// Dynamic instructions per remaining call ("DI's per call";
    /// `f64::INFINITY` when no calls remain).
    pub instrs_per_call: f64,
    /// Control transfers per remaining call ("CT's per call").
    pub transfers_per_call: f64,
}

impact_support::json_object!(Row {
    name,
    code_increase,
    call_decrease,
    instrs_per_call,
    transfers_per_call
});

/// Session-uniform plan/finish shape: this table is profile-only (no
/// simulation), so its rows are fully computed at plan time.
#[derive(Debug)]
pub struct Plan {
    rows: Vec<Row>,
}

/// Computes all rows from the inline reports (nothing to simulate).
pub fn plan(_session: &mut SimSession, prepared: &[Prepared]) -> Plan {
    Plan {
        rows: run(prepared),
    }
}

/// Returns the rows computed in [`plan`].
#[must_use]
pub fn finish(_session: &SimSession, plan: Plan) -> Vec<Row> {
    plan.rows
}

/// Extracts one row per prepared benchmark.
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    prepared
        .iter()
        .map(|p| {
            let r = &p.result.inline_report;
            Row {
                name: p.workload.name.to_owned(),
                code_increase: r.code_increase,
                call_decrease: r.call_decrease,
                instrs_per_call: r.instrs_per_call,
                transfers_per_call: r.transfers_per_call,
            }
        })
        .collect()
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "name",
        "code inc",
        "call dec",
        "DI's per call",
        "CT's per call",
    ]
    .map(str::to_owned)
    .to_vec();
    let per_call = |x: f64| {
        if x.is_finite() {
            format!("{x:.0}")
        } else {
            "inf".to_owned()
        }
    };
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                fmt::pct(r.code_increase),
                fmt::pct(r.call_decrease),
                per_call(r.instrs_per_call),
                per_call(r.transfers_per_call),
            ]
        })
        .collect();
    format!(
        "Table 3. Inline Expansion Results\n{}",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn grep_inlines_most_calls_tee_inlines_none() {
        let budget = Budget::fast();
        let grep = prepare(&impact_workloads::by_name("grep").unwrap(), &budget);
        let tee = prepare(&impact_workloads::by_name("tee").unwrap(), &budget);
        let rows = run(&[grep, tee]);
        assert!(
            rows[0].call_decrease > 0.5,
            "grep should inline most calls: {rows:?}"
        );
        // tee: the syscall stubs (the overwhelming call majority) must
        // survive; only the negligible main→phase plumbing may inline.
        assert!(
            rows[1].call_decrease < 0.05,
            "tee's syscall stubs must not inline: {rows:?}"
        );
        assert!(render(&rows).contains("tee"));
    }
}

//! One module per paper table. Every module exposes `run` (compute typed
//! rows from prepared benchmarks) and `render` (text table in the paper's
//! shape).

pub mod ablation;
pub mod assoc;
pub mod estimate_validation;
pub mod min_prob;
pub mod paging;
pub mod score_validation;
pub mod static_validation;
pub mod t1;
pub mod t2;
pub mod t3;
pub mod t4;
pub mod t5;
pub mod t6;
pub mod t7;
pub mod t8;
pub mod t9;
pub mod variability;

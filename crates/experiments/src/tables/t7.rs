//! Table 7 — the effect of varying block size (2 KB direct-mapped,
//! optimized placement).

use impact_cache::{CacheConfig, CacheStats};

use crate::fmt;
use crate::prepare::Prepared;
use crate::session::{SimHandle, SimSession};

/// The block sizes of the paper's columns, in bytes.
pub const BLOCK_SIZES: [u64; 4] = [16, 32, 64, 128];

/// The fixed cache size.
pub const CACHE_BYTES: u64 = 2048;

/// One benchmark's miss/traffic across block sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// `(miss ratio, traffic ratio)` per entry of [`BLOCK_SIZES`].
    pub cells: Vec<(f64, f64)>,
}

impact_support::json_object!(Row { name, cells });

/// Pending session requests for this table.
#[derive(Debug)]
pub struct Plan {
    rows: Vec<(String, SimHandle)>,
}

/// Registers the block-size sweep per benchmark (optimized layout).
pub fn plan(session: &mut SimSession, prepared: &[Prepared]) -> Plan {
    let configs: Vec<CacheConfig> = BLOCK_SIZES
        .iter()
        .map(|&b| CacheConfig::direct_mapped(CACHE_BYTES, b))
        .collect();
    let rows = prepared
        .iter()
        .map(|p| {
            let handle = session.request(
                &p.result.program,
                &p.result.placement,
                p.eval_seed(),
                p.budget.eval_limits(&p.workload),
                &configs,
            );
            (p.workload.name.to_owned(), handle)
        })
        .collect();
    Plan { rows }
}

/// Reads the executed statistics into rows.
#[must_use]
pub fn finish(session: &SimSession, plan: &Plan) -> Vec<Row> {
    plan.rows
        .iter()
        .map(|(name, handle)| {
            let stats: Vec<CacheStats> = session.stats(handle);
            Row {
                name: name.clone(),
                cells: stats
                    .iter()
                    .map(|s| (s.miss_ratio(), s.traffic_ratio()))
                    .collect(),
            }
        })
        .collect()
}

/// Simulates every benchmark across all block sizes (one-shot session
/// wrapper around [`plan`] / [`finish`]).
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    let mut session = SimSession::new();
    let plan = plan(&mut session, prepared);
    session.execute();
    finish(&session, &plan)
}

/// Per-block-size `(mean miss, mean traffic)` across benchmarks.
#[must_use]
pub fn averages(rows: &[Row]) -> Vec<(f64, f64)> {
    let n = rows.len().max(1) as f64;
    (0..BLOCK_SIZES.len())
        .map(|i| {
            let (m, t) = rows
                .iter()
                .fold((0.0, 0.0), |(m, t), r| (m + r.cells[i].0, t + r.cells[i].1));
            (m / n, t / n)
        })
        .collect()
}

/// Renders the table with an `average` summary row.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut header = vec!["name".to_owned()];
    for &b in &BLOCK_SIZES {
        header.push(format!("{b}B miss"));
        header.push(format!("{b}B traffic"));
    }
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.name.clone()];
            for &(m, t) in &r.cells {
                row.push(fmt::pct(m));
                row.push(fmt::pct(t));
            }
            row
        })
        .collect();
    let mut avg_row = vec!["average".to_owned()];
    for (m, t) in averages(rows) {
        avg_row.push(fmt::pct(m));
        avg_row.push(fmt::pct(t));
    }
    table.push(avg_row);
    format!(
        "Table 7. The Effect of Varying the Block Size (2KB direct-mapped)\n{}",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn miss_falls_and_traffic_rises_with_block_size_where_misses_exist() {
        let w = impact_workloads::by_name("cccp").unwrap();
        let p = prepare(&w, &Budget::fast());
        let rows = run(std::slice::from_ref(&p));
        let cells = &rows[0].cells;
        assert_eq!(cells.len(), 4);
        // The paper's trend: larger blocks lower the miss ratio...
        assert!(
            cells[0].0 > cells[2].0,
            "16B miss {} should exceed 64B miss {}",
            cells[0].0,
            cells[2].0
        );
        // ...and raise the traffic ratio.
        assert!(
            cells[3].1 > cells[0].1,
            "128B traffic {} should exceed 16B traffic {}",
            cells[3].1,
            cells[0].1
        );
        assert!(render(&rows).contains("Table 7"));
    }
}

//! Static-estimation validation: profile-free predictions vs. ground
//! truth.
//!
//! `impact analyze` runs the whole placement pipeline from Ball/Larus-
//! style branch heuristics instead of measured profiles. This table
//! quantifies how much that costs, per benchmark, on two axes:
//!
//! 1. **Function frequencies** — Spearman rank correlation between the
//!    statically estimated invocation counts and the measured profile's,
//!    over the functions of the (profile-guided) optimized program. Rank
//!    correlation is the right yardstick because the layout steps consume
//!    *orderings* (hottest-first), not absolute counts.
//! 2. **Miss ratio** — the static miss-ratio bound
//!    ([`impact_analyze::estimate_miss_bound`] fed by the static profile)
//!    against the trace-simulated miss ratio of the same placement on the
//!    held-out evaluation input, at the paper's 2 KB / 64 B reference
//!    cache. The bound is not meant to be tight; what matters is whether
//!    it *ranks* the benchmarks the way the simulator does, which the
//!    cross-benchmark correlation at the foot of the table reports.

use impact_analyze::{estimate_miss_bound, ConflictConfig, StaticProfiler};
use impact_cache::CacheConfig;
use impact_profile::ProfileSource;

use crate::fmt;
use crate::prepare::Prepared;
use crate::session::{SimHandle, SimSession};

/// Reference cache geometry (bytes, line bytes): the paper's 2 KB point.
pub const CACHE_BYTES: u64 = 2048;
/// Reference line size in bytes.
pub const LINE_BYTES: u64 = 64;

/// One benchmark's static-vs-measured comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Spearman rank correlation of static vs. measured function
    /// invocation counts.
    pub freq_rho: f64,
    /// Static miss-ratio bound of the placement under the static profile.
    pub static_bound: f64,
    /// Trace-simulated miss ratio of the same placement (held-out input).
    pub simulated: f64,
}

impact_support::json_object!(Row {
    name,
    freq_rho,
    static_bound,
    simulated
});

/// Pending session requests for this table.
#[derive(Debug)]
pub struct Plan {
    rows: Vec<(usize, SimHandle)>,
}

/// Spearman rank correlation with tie-averaged ranks. Returns 0 when
/// either side is constant (no ordering to correlate).
#[must_use]
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples only");
    let rx = tie_averaged_ranks(xs);
    let ry = tie_averaged_ranks(ys);
    pearson(&rx, &ry)
}

/// Ranks (1-based); equal values share the mean of their rank range.
fn tie_averaged_ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Positions i..=j hold equal values; each gets the mean rank.
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = rank;
        }
        i = j + 1;
    }
    ranks
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

/// Registers the simulated half of every comparison (the static halves
/// are computed analytically in [`finish`]).
pub fn plan(session: &mut SimSession, prepared: &[Prepared]) -> Plan {
    let configs = [CacheConfig::direct_mapped(CACHE_BYTES, LINE_BYTES)];
    let rows = prepared
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let handle = session.request(
                &p.result.program,
                &p.result.placement,
                p.eval_seed(),
                p.budget.eval_limits(&p.workload),
                &configs,
            );
            (i, handle)
        })
        .collect();
    Plan { rows }
}

/// Pairs the static estimates with the executed simulations.
#[must_use]
pub fn finish(session: &SimSession, plan: &Plan, prepared: &[Prepared]) -> Vec<Row> {
    let conflict = ConflictConfig {
        cache_bytes: CACHE_BYTES,
        line_bytes: LINE_BYTES,
        ..ConflictConfig::default()
    };
    plan.rows
        .iter()
        .map(|(i, handle)| {
            let p = &prepared[*i];
            let program = &p.result.program;
            let static_profile = StaticProfiler::new().profile(program);

            let (mut est, mut meas) = (Vec::new(), Vec::new());
            for (fid, _) in program.functions() {
                est.push(static_profile.function(fid).invocations as f64);
                meas.push(p.result.profile.function(fid).invocations as f64);
            }
            let bound =
                estimate_miss_bound(program, &static_profile, &p.result.placement, &conflict);
            Row {
                name: p.workload.name.to_owned(),
                freq_rho: spearman(&est, &meas),
                static_bound: bound.ratio(),
                simulated: session.stats(handle)[0].miss_ratio(),
            }
        })
        .collect()
}

/// Runs estimation and simulation for every benchmark (one-shot session
/// wrapper around [`plan`] / [`finish`]).
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    let mut session = SimSession::new();
    let plan = plan(&mut session, prepared);
    session.execute();
    finish(&session, &plan, prepared)
}

/// Cross-benchmark Spearman correlation of the static miss-ratio bound
/// against the simulated miss ratio: does the static analysis rank the
/// benchmarks the way the simulator does?
#[must_use]
pub fn cross_benchmark_rho(rows: &[Row]) -> f64 {
    let bounds: Vec<f64> = rows.iter().map(|r| r.static_bound).collect();
    let sims: Vec<f64> = rows.iter().map(|r| r.simulated).collect();
    spearman(&bounds, &sims)
}

/// Mean per-benchmark function-frequency rank correlation.
#[must_use]
pub fn mean_freq_rho(rows: &[Row]) -> f64 {
    rows.iter().map(|r| r.freq_rho).sum::<f64>() / rows.len().max(1) as f64
}

/// Renders the table with the summary correlations at the foot.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = vec![
        "name".to_owned(),
        "freq rank corr".to_owned(),
        "static bound".to_owned(),
        "simulated".to_owned(),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:+.3}", r.freq_rho),
                fmt::pct(r.static_bound),
                fmt::pct(r.simulated),
            ]
        })
        .collect();
    format!(
        "Static estimation. Profile-free analysis vs measured profile and trace simulation \
         ({CACHE_BYTES}B direct-mapped, {LINE_BYTES}B lines)\n{}\
         mean freq rank corr {:+.3}; cross-benchmark miss-rank corr {:+.3}\n",
        fmt::render_table(&header, &table),
        mean_freq_rho(rows),
        cross_benchmark_rho(rows),
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn spearman_handles_ties_and_monotone_data() {
        assert!((spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
        assert!((spearman(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        // Ties share rank mass; a constant side has no ordering at all.
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        let rho = spearman(&[1.0, 1.0, 2.0, 3.0], &[1.0, 2.0, 2.0, 3.0]);
        assert!(rho > 0.7 && rho < 1.0, "{rho}");
        assert_eq!(tie_averaged_ranks(&[5.0, 5.0, 1.0]), vec![2.5, 2.5, 1.0]);
    }

    #[test]
    fn static_estimates_rank_wc_functions_like_the_profile() {
        let w = impact_workloads::by_name("wc").unwrap();
        let p = prepare(&w, &Budget::fast());
        let rows = run(std::slice::from_ref(&p));
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(
            r.freq_rho > 0.0,
            "static ranking should beat chance on wc: {}",
            r.freq_rho
        );
        assert!(r.static_bound >= 0.0 && r.static_bound <= 1.0);
        assert!(r.simulated >= 0.0 && r.simulated <= 1.0);
        assert!(render(&rows).contains("Static estimation"));
    }
}

//! Table 6 — the effect of varying cache size (direct-mapped, 64-byte
//! blocks, optimized placement).

use impact_cache::{CacheConfig, CacheStats};

use crate::fmt;
use crate::prepare::Prepared;
use crate::session::{SimHandle, SimSession};

/// The cache sizes of the paper's columns, in bytes (8 K down to 0.5 K).
pub const CACHE_SIZES: [u64; 5] = [8192, 4096, 2048, 1024, 512];

/// The fixed block size.
pub const BLOCK_BYTES: u64 = 64;

/// One benchmark's miss/traffic across cache sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// `(miss ratio, traffic ratio)` per entry of [`CACHE_SIZES`].
    pub cells: Vec<(f64, f64)>,
}

impact_support::json_object!(Row { name, cells });

/// Pending session requests for this table.
#[derive(Debug)]
pub struct Plan {
    rows: Vec<(String, SimHandle)>,
}

/// Registers the cache-size sweep per benchmark (optimized layout).
pub fn plan(session: &mut SimSession, prepared: &[Prepared]) -> Plan {
    let configs: Vec<CacheConfig> = CACHE_SIZES
        .iter()
        .map(|&s| CacheConfig::direct_mapped(s, BLOCK_BYTES))
        .collect();
    let rows = prepared
        .iter()
        .map(|p| {
            let handle = session.request(
                &p.result.program,
                &p.result.placement,
                p.eval_seed(),
                p.budget.eval_limits(&p.workload),
                &configs,
            );
            (p.workload.name.to_owned(), handle)
        })
        .collect();
    Plan { rows }
}

/// Reads the executed statistics into rows.
#[must_use]
pub fn finish(session: &SimSession, plan: &Plan) -> Vec<Row> {
    plan.rows
        .iter()
        .map(|(name, handle)| {
            let stats: Vec<CacheStats> = session.stats(handle);
            Row {
                name: name.clone(),
                cells: stats
                    .iter()
                    .map(|s| (s.miss_ratio(), s.traffic_ratio()))
                    .collect(),
            }
        })
        .collect()
}

/// Simulates every benchmark across all cache sizes (one-shot session
/// wrapper around [`plan`] / [`finish`]).
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    let mut session = SimSession::new();
    let plan = plan(&mut session, prepared);
    session.execute();
    finish(&session, &plan)
}

/// Per-size `(mean miss, mean traffic)` across benchmarks — the numbers
/// behind the paper's "average 0.5 % miss, 8 % traffic at 2 K" claim.
#[must_use]
pub fn averages(rows: &[Row]) -> Vec<(f64, f64)> {
    let n = rows.len().max(1) as f64;
    (0..CACHE_SIZES.len())
        .map(|i| {
            let (m, t) = rows
                .iter()
                .fold((0.0, 0.0), |(m, t), r| (m + r.cells[i].0, t + r.cells[i].1));
            (m / n, t / n)
        })
        .collect()
}

/// Renders the table with an `average` summary row.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut header = vec!["name".to_owned()];
    for &s in &CACHE_SIZES {
        let label = if s >= 1024 {
            format!("{}K", s / 1024)
        } else {
            "0.5K".to_owned()
        };
        header.push(format!("{label} miss"));
        header.push(format!("{label} traffic"));
    }
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.name.clone()];
            for &(m, t) in &r.cells {
                row.push(fmt::pct(m));
                row.push(fmt::pct(t));
            }
            row
        })
        .collect();
    let mut avg_row = vec!["average".to_owned()];
    for (m, t) in averages(rows) {
        avg_row.push(fmt::pct(m));
        avg_row.push(fmt::pct(t));
    }
    table.push(avg_row);
    format!(
        "Table 6. The Effect of Varying Cache Size (direct-mapped, 64B blocks)\n{}",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn wc_misses_nothing_everywhere() {
        let w = impact_workloads::by_name("wc").unwrap();
        let p = prepare(&w, &Budget::fast());
        let rows = run(std::slice::from_ref(&p));
        assert_eq!(rows[0].cells.len(), 5);
        // wc's hot loop fits even the 512-byte cache after placement.
        let (miss_512, _) = rows[0].cells[4];
        assert!(miss_512 < 0.01, "wc at 512B: {miss_512}");
        assert!(render(&rows).contains("average"));
    }
}

//! Associativity ablation: how much hardware would buy what placement
//! buys.
//!
//! The paper's introduction cites the MIPS-X design — a 2 KB,
//! *8-way set-associative* on-chip instruction cache — as the
//! conventional, hardware-heavy answer. This table sweeps associativity
//! at the headline geometry for both the unoptimized and the optimized
//! layout, so the trade is explicit: a direct-mapped cache with placement
//! vs. increasing degrees of associativity without it.

use impact_cache::{Associativity, CacheConfig, CacheStats};

use crate::fmt;
use crate::prepare::Prepared;
use crate::session::{SimHandle, SimSession};

/// Headline geometry.
pub const CACHE_BYTES: u64 = 2048;
/// Block size.
pub const BLOCK_BYTES: u64 = 64;

/// The associativities swept.
pub const WAYS: [Associativity; 5] = [
    Associativity::Direct,
    Associativity::Ways(2),
    Associativity::Ways(4),
    Associativity::Ways(8),
    Associativity::Full,
];

/// One benchmark's miss ratios across associativities, for both layouts.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Natural-layout miss ratio per entry of [`WAYS`].
    pub natural: Vec<f64>,
    /// Optimized-layout miss ratio per entry of [`WAYS`].
    pub optimized: Vec<f64>,
}

impact_support::json_object!(Row {
    name,
    natural,
    optimized
});

/// Pending session requests for this table.
#[derive(Debug)]
pub struct Plan {
    rows: Vec<(String, SimHandle, SimHandle)>,
}

/// Registers the associativity ladder on both layouts of every
/// benchmark.
pub fn plan(session: &mut SimSession, prepared: &[Prepared]) -> Plan {
    let configs: Vec<CacheConfig> = WAYS
        .iter()
        .map(|&w| CacheConfig::direct_mapped(CACHE_BYTES, BLOCK_BYTES).with_associativity(w))
        .collect();
    let rows = prepared
        .iter()
        .map(|p| {
            let limits = p.budget.eval_limits(&p.workload);
            let natural = session.request(
                &p.baseline_program,
                &p.baseline,
                p.eval_seed(),
                limits,
                &configs,
            );
            let optimized = session.request(
                &p.result.program,
                &p.result.placement,
                p.eval_seed(),
                limits,
                &configs,
            );
            (p.workload.name.to_owned(), natural, optimized)
        })
        .collect();
    Plan { rows }
}

/// Reads the executed statistics into rows.
#[must_use]
pub fn finish(session: &SimSession, plan: &Plan) -> Vec<Row> {
    plan.rows
        .iter()
        .map(|(name, natural, optimized)| {
            let natural: Vec<CacheStats> = session.stats(natural);
            let optimized: Vec<CacheStats> = session.stats(optimized);
            Row {
                name: name.clone(),
                natural: natural.iter().map(CacheStats::miss_ratio).collect(),
                optimized: optimized.iter().map(CacheStats::miss_ratio).collect(),
            }
        })
        .collect()
}

/// Sweeps both layouts across the associativity ladder (one-shot session
/// wrapper around [`plan`] / [`finish`]).
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    let mut session = SimSession::new();
    let plan = plan(&mut session, prepared);
    session.execute();
    finish(&session, &plan)
}

/// Renders the table with a mean row.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let label = |w: Associativity| match w {
        Associativity::Direct => "direct".to_owned(),
        Associativity::Ways(n) => format!("{n}-way"),
        Associativity::Full => "full".to_owned(),
    };
    let mut header = vec!["name".to_owned()];
    for &w in &WAYS {
        header.push(format!("nat {}", label(w)));
    }
    for &w in &WAYS {
        header.push(format!("opt {}", label(w)));
    }
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.name.clone()];
            row.extend(r.natural.iter().map(|&m| fmt::pct(m)));
            row.extend(r.optimized.iter().map(|&m| fmt::pct(m)));
            row
        })
        .collect();
    let n = rows.len().max(1) as f64;
    let mut avg = vec!["average".to_owned()];
    for i in 0..WAYS.len() {
        avg.push(fmt::pct(rows.iter().map(|r| r.natural[i]).sum::<f64>() / n));
    }
    for i in 0..WAYS.len() {
        avg.push(fmt::pct(
            rows.iter().map(|r| r.optimized[i]).sum::<f64>() / n,
        ));
    }
    table.push(avg);
    format!(
        "Associativity. Miss ratio at 2KB/64B: hardware (ways) vs software (placement)\n{}",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn associativity_helps_natural_layouts_most() {
        let w = impact_workloads::by_name("yacc").unwrap();
        let p = prepare(&w, &Budget::fast());
        let rows = run(std::slice::from_ref(&p));
        let r = &rows[0];
        assert_eq!(r.natural.len(), 5);
        // Fully associative natural never misses more than direct natural.
        assert!(r.natural[4] <= r.natural[0] + 1e-9, "{r:?}");
        assert!(render(&rows).contains("direct"));
    }
}

//! Table 8 — schemes to reduce the memory traffic ratio (2 KB cache,
//! 64-byte blocks): 8-byte sectoring vs. partial loading.

use impact_cache::{CacheConfig, FillPolicy};

use crate::fmt;
use crate::prepare::Prepared;
use crate::session::{SimHandle, SimSession};

/// Cache geometry shared by both schemes.
pub const CACHE_BYTES: u64 = 2048;
/// Block size.
pub const BLOCK_BYTES: u64 = 64;
/// Sector size of the sectoring scheme.
pub const SECTOR_BYTES: u64 = 8;

/// One benchmark under both traffic-reduction schemes.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Sectored fill: miss ratio.
    pub sector_miss: f64,
    /// Sectored fill: traffic ratio.
    pub sector_traffic: f64,
    /// Partial loading: miss ratio.
    pub partial_miss: f64,
    /// Partial loading: traffic ratio.
    pub partial_traffic: f64,
    /// Partial loading: mean words transferred per miss ("avg.fetch").
    pub avg_fetch: f64,
    /// Partial loading: mean consecutive instructions used from a miss
    /// point to a taken branch or the next miss ("avg.exec").
    pub avg_exec: f64,
}

impact_support::json_object!(Row {
    name,
    sector_miss,
    sector_traffic,
    partial_miss,
    partial_traffic,
    avg_fetch,
    avg_exec
});

/// Pending session requests for this table.
#[derive(Debug)]
pub struct Plan {
    rows: Vec<(String, SimHandle)>,
}

/// Registers both traffic-reduction schemes per benchmark.
pub fn plan(session: &mut SimSession, prepared: &[Prepared]) -> Plan {
    let configs = [
        CacheConfig::direct_mapped(CACHE_BYTES, BLOCK_BYTES).with_fill(FillPolicy::Sectored {
            sector_bytes: SECTOR_BYTES,
        }),
        CacheConfig::direct_mapped(CACHE_BYTES, BLOCK_BYTES).with_fill(FillPolicy::Partial),
    ];
    let rows = prepared
        .iter()
        .map(|p| {
            let handle = session.request(
                &p.result.program,
                &p.result.placement,
                p.eval_seed(),
                p.budget.eval_limits(&p.workload),
                &configs,
            );
            (p.workload.name.to_owned(), handle)
        })
        .collect();
    Plan { rows }
}

/// Reads the executed statistics into rows.
#[must_use]
pub fn finish(session: &SimSession, plan: &Plan) -> Vec<Row> {
    plan.rows
        .iter()
        .map(|(name, handle)| {
            let stats = session.stats(handle);
            Row {
                name: name.clone(),
                sector_miss: stats[0].miss_ratio(),
                sector_traffic: stats[0].traffic_ratio(),
                partial_miss: stats[1].miss_ratio(),
                partial_traffic: stats[1].traffic_ratio(),
                avg_fetch: stats[1].avg_fetch(),
                avg_exec: stats[1].avg_exec(),
            }
        })
        .collect()
}

/// Simulates both schemes for every benchmark (one-shot session wrapper
/// around [`plan`] / [`finish`]).
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    let mut session = SimSession::new();
    let plan = plan(&mut session, prepared);
    session.execute();
    finish(&session, &plan)
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "name",
        "sector miss",
        "sector traffic",
        "partial miss",
        "partial traffic",
        "avg.fetch",
        "avg.exec",
    ]
    .map(str::to_owned)
    .to_vec();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                fmt::pct(r.sector_miss),
                fmt::pct(r.sector_traffic),
                fmt::pct(r.partial_miss),
                fmt::pct(r.partial_traffic),
                format!("{:.1}", r.avg_fetch),
                format!("{:.1}", r.avg_exec),
            ]
        })
        .collect();
    format!(
        "Table 8. Schemes to Reduce the Memory Traffic Ratio (2KB, 64B blocks)\n{}",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};
    use crate::tables::t6;

    use super::*;

    #[test]
    fn schemes_trade_misses_for_traffic() {
        let w = impact_workloads::by_name("make").unwrap();
        let p = prepare(&w, &Budget::fast());
        let full = t6::run(std::slice::from_ref(&p));
        let (full_miss, full_traffic) = full[0].cells[2]; // 2K column
        let rows = run(std::slice::from_ref(&p));
        let r = &rows[0];
        // Sectoring: higher miss ratio, lower traffic than full-block.
        assert!(r.sector_miss > full_miss, "{r:?} vs full {full_miss}");
        assert!(r.sector_traffic < full_traffic, "{r:?} vs {full_traffic}");
        // Partial: traffic at most full-block traffic; misses at least as
        // many.
        assert!(r.partial_traffic <= full_traffic + 1e-9);
        assert!(r.partial_miss >= full_miss - 1e-9);
        // avg.fetch is between 1 and a whole block.
        assert!(r.avg_fetch >= 1.0 && r.avg_fetch <= 16.0, "{r:?}");
        assert!(r.avg_exec >= 1.0, "{r:?}");
        assert!(render(&rows).contains("avg.fetch"));
    }
}

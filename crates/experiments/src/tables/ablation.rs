//! Ablations beyond the paper's tables: which pipeline step buys what.
//!
//! For every benchmark, the headline cache (2 KB direct-mapped, 64 B
//! blocks) is simulated under a ladder of placements:
//!
//! 1. **random** — functions and blocks shuffled (pessimistic bound),
//! 2. **natural** — declaration order (a conventional compiler/linker),
//! 3. **no-inline** — full placement pipeline with Step 2 disabled,
//! 4. **full** — the complete IMPACT-I pipeline,
//!
//! plus a fully-associative LRU cache over the natural layout (the
//! hardware-heavy alternative the paper argues against).

use impact_cache::{
    AccessSink, Associativity, Cache, CacheConfig, NextLinePrefetcher, VictimCache,
};
use impact_layout::baseline;
use impact_layout::pipeline::{Pipeline, PipelineConfig};
use impact_trace::TraceGenerator;

use crate::fmt;
use crate::prepare::{pipeline_config, Prepared};
use crate::sim;

/// Headline geometry.
pub const CACHE_BYTES: u64 = 2048;
/// Headline block size.
pub const BLOCK_BYTES: u64 = 64;

/// One benchmark's miss ratios across the placement ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Random layout, direct-mapped.
    pub random: f64,
    /// Natural (declaration-order) layout, direct-mapped.
    pub natural: f64,
    /// Natural layout on a fully-associative LRU cache.
    pub natural_fully_assoc: f64,
    /// Optimized placement without inline expansion.
    pub no_inline: f64,
    /// Full IMPACT-I placement.
    pub full: f64,
    /// Pettis-Hansen-style placement of the same (inlined) program.
    pub pettis_hansen: f64,
    /// Natural layout with a tagged next-line prefetcher (demand misses).
    pub natural_prefetch: f64,
    /// Natural layout with a 4-entry victim buffer (memory misses).
    pub natural_victim: f64,
}

impact_support::json_object!(Row {
    name,
    random,
    natural,
    natural_fully_assoc,
    no_inline,
    full,
    pettis_hansen,
    natural_prefetch,
    natural_victim
});

/// Runs the ablation ladder.
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    let dm = [CacheConfig::direct_mapped(CACHE_BYTES, BLOCK_BYTES)];
    let fa = [CacheConfig::direct_mapped(CACHE_BYTES, BLOCK_BYTES)
        .with_associativity(Associativity::Full)];
    prepared
        .iter()
        .map(|p| {
            let limits = p.budget.eval_limits(&p.workload);
            let seed = p.eval_seed();
            let program = &p.baseline_program;

            let random_placement = baseline::random(program, 0xab1a7e);
            let random = sim::simulate(program, &random_placement, seed, limits, &dm)[0];
            let natural = sim::simulate(program, &p.baseline, seed, limits, &dm)[0];
            let natural_fa = sim::simulate(program, &p.baseline, seed, limits, &fa)[0];

            let no_inline_cfg = PipelineConfig {
                inline: None,
                ..pipeline_config(&p.workload, &p.budget)
            };
            let ni = Pipeline::new(no_inline_cfg).run(program);
            let no_inline = sim::simulate(&ni.program, &ni.placement, seed, limits, &dm)[0];

            let full = sim::simulate(&p.result.program, &p.result.placement, seed, limits, &dm)[0];

            let ph_placement = impact_layout::ph::place(&p.result.program, &p.result.profile);
            let ph = sim::simulate(&p.result.program, &ph_placement, seed, limits, &dm)[0];

            // The hardware alternatives, applied to the unoptimized
            // layout: does placement beat a prefetcher or a victim cache?
            let mut pf = NextLinePrefetcher::new(Cache::new(dm[0]));
            let mut vc = VictimCache::new(dm[0], 4);
            TraceGenerator::new(program, &p.baseline)
                .with_limits(limits)
                .run(seed, |addr| {
                    pf.access(addr);
                    vc.access(addr);
                });

            Row {
                name: p.workload.name.to_owned(),
                random: random.miss_ratio(),
                natural: natural.miss_ratio(),
                natural_fully_assoc: natural_fa.miss_ratio(),
                no_inline: no_inline.miss_ratio(),
                full: full.miss_ratio(),
                pettis_hansen: ph.miss_ratio(),
                natural_prefetch: pf.stats().miss_ratio(),
                natural_victim: vc.memory_miss_ratio(),
            }
        })
        .collect()
}

/// Renders the ladder with a mean row.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "name",
        "random DM",
        "natural DM",
        "natural FA",
        "layout w/o inline",
        "full pipeline",
        "Pettis-Hansen",
        "nat+prefetch",
        "nat+victim4",
    ]
    .map(str::to_owned)
    .to_vec();
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                fmt::pct(r.random),
                fmt::pct(r.natural),
                fmt::pct(r.natural_fully_assoc),
                fmt::pct(r.no_inline),
                fmt::pct(r.full),
                fmt::pct(r.pettis_hansen),
                fmt::pct(r.natural_prefetch),
                fmt::pct(r.natural_victim),
            ]
        })
        .collect();
    let n = rows.len().max(1) as f64;
    let mean = |f: fn(&Row) -> f64| rows.iter().map(f).sum::<f64>() / n;
    table.push(vec![
        "average".to_owned(),
        fmt::pct(mean(|r| r.random)),
        fmt::pct(mean(|r| r.natural)),
        fmt::pct(mean(|r| r.natural_fully_assoc)),
        fmt::pct(mean(|r| r.no_inline)),
        fmt::pct(mean(|r| r.full)),
        fmt::pct(mean(|r| r.pettis_hansen)),
        fmt::pct(mean(|r| r.natural_prefetch)),
        fmt::pct(mean(|r| r.natural_victim)),
    ]);
    format!(
        "Ablation. Miss ratio at 2KB/64B across the placement ladder\n{}\
         (nat+prefetch hides misses by spending bus bandwidth — its memory\n\
         traffic roughly doubles, which the paper's 4-byte bus cannot\n\
         afford; placement lowers misses AND traffic simultaneously.)\n",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn full_pipeline_beats_random_layout() {
        let w = impact_workloads::by_name("make").unwrap();
        let p = prepare(&w, &Budget::fast());
        let rows = run(std::slice::from_ref(&p));
        let r = &rows[0];
        assert!(
            r.full < r.random,
            "full pipeline {} must beat random {}",
            r.full,
            r.random
        );
        assert!(render(&rows).contains("average"));
    }
}

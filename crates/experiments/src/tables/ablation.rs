//! Ablations beyond the paper's tables: which pipeline step buys what.
//!
//! For every benchmark, the headline cache (2 KB direct-mapped, 64 B
//! blocks) is simulated under a ladder of placements:
//!
//! 1. **random** — functions and blocks shuffled (pessimistic bound),
//! 2. **natural** — declaration order (a conventional compiler/linker),
//! 3. **no-inline** — full placement pipeline with Step 2 disabled,
//! 4. **full** — the complete IMPACT-I pipeline,
//!
//! plus a fully-associative LRU cache over the natural layout (the
//! hardware-heavy alternative the paper argues against).

use impact_cache::{Associativity, Cache, CacheConfig, NextLinePrefetcher, VictimCache};
use impact_layout::baseline;
use impact_layout::pipeline::{Pipeline, PipelineConfig};

use crate::fmt;
use crate::prepare::{pipeline_config, Prepared};
use crate::session::{SimHandle, SimSession, SinkHandle};

/// Headline geometry.
pub const CACHE_BYTES: u64 = 2048;
/// Headline block size.
pub const BLOCK_BYTES: u64 = 64;

/// One benchmark's miss ratios across the placement ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Random layout, direct-mapped.
    pub random: f64,
    /// Natural (declaration-order) layout, direct-mapped.
    pub natural: f64,
    /// Natural layout on a fully-associative LRU cache.
    pub natural_fully_assoc: f64,
    /// Optimized placement without inline expansion.
    pub no_inline: f64,
    /// Full IMPACT-I placement.
    pub full: f64,
    /// Pettis-Hansen-style placement of the same (inlined) program.
    pub pettis_hansen: f64,
    /// Natural layout with a tagged next-line prefetcher (demand misses).
    pub natural_prefetch: f64,
    /// Natural layout with a 4-entry victim buffer (memory misses).
    pub natural_victim: f64,
}

impact_support::json_object!(Row {
    name,
    random,
    natural,
    natural_fully_assoc,
    no_inline,
    full,
    pettis_hansen,
    natural_prefetch,
    natural_victim
});

/// One benchmark's pending handles across the ladder.
#[derive(Debug)]
struct RowPlan {
    name: String,
    random: SimHandle,
    natural: SimHandle,
    natural_fa: SimHandle,
    no_inline: SimHandle,
    full: SimHandle,
    ph: SimHandle,
    prefetch: SinkHandle,
    victim: SinkHandle,
}

/// Pending session requests for this table.
#[derive(Debug)]
pub struct Plan {
    rows: Vec<RowPlan>,
}

/// Registers the whole placement ladder per benchmark. The expensive
/// per-row placements (the inline-disabled pipeline re-run and the
/// Pettis-Hansen layout) are computed across the session's worker
/// threads; every ladder rung becomes its own trace key, while the
/// natural direct-mapped and fully-associative demands share one key
/// (and one stream) through the config union. The prefetcher and victim
/// cache ride the natural-layout stream as sinks.
pub fn plan(session: &mut SimSession, prepared: &[Prepared]) -> Plan {
    let dm = [CacheConfig::direct_mapped(CACHE_BYTES, BLOCK_BYTES)];
    let fa = [CacheConfig::direct_mapped(CACHE_BYTES, BLOCK_BYTES)
        .with_associativity(Associativity::Full)];
    let placements = impact_support::parallel_map(session.jobs(), prepared.iter().collect(), |p| {
        let no_inline_cfg = PipelineConfig {
            inline: None,
            ..pipeline_config(&p.workload, &p.budget)
        };
        let ni = Pipeline::new(no_inline_cfg).run(&p.baseline_program);
        let ph = impact_layout::ph::place(&p.result.program, &p.result.profile);
        (ni, ph)
    });
    let rows = prepared
        .iter()
        .zip(placements)
        .map(|(p, (ni, ph_placement))| {
            let limits = p.budget.eval_limits(&p.workload);
            let seed = p.eval_seed();
            let program = &p.baseline_program;

            let random_placement = baseline::random(program, 0xab1a7e);
            RowPlan {
                name: p.workload.name.to_owned(),
                random: session.request(program, &random_placement, seed, limits, &dm),
                natural: session.request(program, &p.baseline, seed, limits, &dm),
                natural_fa: session.request(program, &p.baseline, seed, limits, &fa),
                no_inline: session.request(&ni.program, &ni.placement, seed, limits, &dm),
                full: session.request(&p.result.program, &p.result.placement, seed, limits, &dm),
                ph: session.request(&p.result.program, &ph_placement, seed, limits, &dm),
                // The hardware alternatives, applied to the unoptimized
                // layout: does placement beat a prefetcher or a victim
                // cache?
                prefetch: session.request_sink(
                    program,
                    &p.baseline,
                    seed,
                    limits,
                    NextLinePrefetcher::new(Cache::new(dm[0])),
                ),
                victim: session.request_sink(
                    program,
                    &p.baseline,
                    seed,
                    limits,
                    VictimCache::new(dm[0], 4),
                ),
            }
        })
        .collect();
    Plan { rows }
}

/// Reads the executed statistics (and takes the sinks back) into rows.
#[must_use]
pub fn finish(session: &mut SimSession, plan: Plan) -> Vec<Row> {
    plan.rows
        .into_iter()
        .map(|r| {
            let pf: NextLinePrefetcher = session.take_sink(&r.prefetch);
            let vc: VictimCache = session.take_sink(&r.victim);
            Row {
                name: r.name,
                random: session.stats(&r.random)[0].miss_ratio(),
                natural: session.stats(&r.natural)[0].miss_ratio(),
                natural_fully_assoc: session.stats(&r.natural_fa)[0].miss_ratio(),
                no_inline: session.stats(&r.no_inline)[0].miss_ratio(),
                full: session.stats(&r.full)[0].miss_ratio(),
                pettis_hansen: session.stats(&r.ph)[0].miss_ratio(),
                natural_prefetch: pf.stats().miss_ratio(),
                natural_victim: vc.memory_miss_ratio(),
            }
        })
        .collect()
}

/// Runs the ablation ladder (one-shot session wrapper around
/// [`plan`] / [`finish`]).
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    let mut session = SimSession::new();
    let plan = plan(&mut session, prepared);
    session.execute();
    finish(&mut session, plan)
}

/// Renders the ladder with a mean row.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "name",
        "random DM",
        "natural DM",
        "natural FA",
        "layout w/o inline",
        "full pipeline",
        "Pettis-Hansen",
        "nat+prefetch",
        "nat+victim4",
    ]
    .map(str::to_owned)
    .to_vec();
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                fmt::pct(r.random),
                fmt::pct(r.natural),
                fmt::pct(r.natural_fully_assoc),
                fmt::pct(r.no_inline),
                fmt::pct(r.full),
                fmt::pct(r.pettis_hansen),
                fmt::pct(r.natural_prefetch),
                fmt::pct(r.natural_victim),
            ]
        })
        .collect();
    let n = rows.len().max(1) as f64;
    let mean = |f: fn(&Row) -> f64| rows.iter().map(f).sum::<f64>() / n;
    table.push(vec![
        "average".to_owned(),
        fmt::pct(mean(|r| r.random)),
        fmt::pct(mean(|r| r.natural)),
        fmt::pct(mean(|r| r.natural_fully_assoc)),
        fmt::pct(mean(|r| r.no_inline)),
        fmt::pct(mean(|r| r.full)),
        fmt::pct(mean(|r| r.pettis_hansen)),
        fmt::pct(mean(|r| r.natural_prefetch)),
        fmt::pct(mean(|r| r.natural_victim)),
    ]);
    format!(
        "Ablation. Miss ratio at 2KB/64B across the placement ladder\n{}\
         (nat+prefetch hides misses by spending bus bandwidth — its memory\n\
         traffic roughly doubles, which the paper's 4-byte bus cannot\n\
         afford; placement lowers misses AND traffic simultaneously.)\n",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn full_pipeline_beats_random_layout() {
        let w = impact_workloads::by_name("make").unwrap();
        let p = prepare(&w, &Budget::fast());
        let rows = run(std::slice::from_ref(&p));
        let r = &rows[0];
        assert!(
            r.full < r.random,
            "full pipeline {} must beat random {}",
            r.full,
            r.random
        );
        assert!(render(&rows).contains("average"));
    }
}

//! Table 1 — design-target miss ratios (fully associative).
//!
//! The paper's Table 1 is a quotation of Smith's published
//! fully-associative design targets. We print those targets next to a
//! measured counterpart: the average miss ratio of a fully associative
//! LRU cache over our ten benchmarks **without** placement optimization
//! (natural declaration-order layout) — the configuration Smith's numbers
//! model. The paper's claim (§4.2.4) is that its optimized *direct-mapped*
//! numbers (Tables 6–7) beat this column.

use impact_cache::{smith, CacheConfig, CacheStats};

use crate::fmt;
use crate::prepare::Prepared;
use crate::session::{SimHandle, SimSession};

/// One `(cache size, block size)` cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Cache size in bytes.
    pub cache_size: u64,
    /// Block size in bytes.
    pub block_size: u64,
    /// Smith's published design-target miss ratio.
    pub smith_target: f64,
    /// Our measured fully-associative miss ratio on unoptimized layouts,
    /// averaged over the benchmarks.
    pub measured_unoptimized: f64,
}

impact_support::json_object!(Row {
    cache_size,
    block_size,
    smith_target,
    measured_unoptimized
});

/// Pending session requests for this table.
#[derive(Debug)]
pub struct Plan {
    configs: Vec<CacheConfig>,
    handles: Vec<SimHandle>,
    benchmarks: usize,
}

/// Registers one 16-configuration request per benchmark (unoptimized
/// layout) on the session.
pub fn plan(session: &mut SimSession, prepared: &[Prepared]) -> Plan {
    let configs: Vec<CacheConfig> = smith::CACHE_SIZES
        .iter()
        .flat_map(|&s| {
            smith::BLOCK_SIZES
                .iter()
                .map(move |&b| CacheConfig::fully_associative(s, b))
        })
        .collect();
    let handles = prepared
        .iter()
        .map(|p| {
            session.request(
                &p.baseline_program,
                &p.baseline,
                p.eval_seed(),
                p.budget.eval_limits(&p.workload),
                &configs,
            )
        })
        .collect();
    Plan {
        configs,
        handles,
        benchmarks: prepared.len(),
    }
}

/// Averages the executed session results into the 16 grid cells.
#[must_use]
pub fn finish(session: &SimSession, plan: &Plan) -> Vec<Row> {
    let mut sums = vec![0.0f64; plan.configs.len()];
    for h in &plan.handles {
        let stats: Vec<CacheStats> = session.stats(h);
        for (sum, s) in sums.iter_mut().zip(&stats) {
            *sum += s.miss_ratio();
        }
    }
    let n = plan.benchmarks.max(1) as f64;

    plan.configs
        .iter()
        .zip(&sums)
        .map(|(c, &sum)| Row {
            cache_size: c.size_bytes,
            block_size: c.block_bytes,
            smith_target: smith::target_miss_ratio(c.size_bytes, c.block_bytes)
                .expect("grid comes from smith tables"),
            measured_unoptimized: sum / n,
        })
        .collect()
}

/// Computes all 16 grid cells (one-shot session wrapper around
/// [`plan`] / [`finish`]).
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    let mut session = SimSession::new();
    let plan = plan(&mut session, prepared);
    session.execute();
    finish(&session, &plan)
}

/// Renders the grid with target and measured values side by side.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header: Vec<String> = std::iter::once("cache size".to_owned())
        .chain(
            smith::BLOCK_SIZES
                .iter()
                .map(|b| format!("{b}B target/measured")),
        )
        .collect();
    let table: Vec<Vec<String>> = smith::CACHE_SIZES
        .iter()
        .map(|&s| {
            std::iter::once(format!("{s}"))
                .chain(smith::BLOCK_SIZES.iter().map(|&b| {
                    let r = rows
                        .iter()
                        .find(|r| r.cache_size == s && r.block_size == b)
                        .expect("full grid");
                    format!(
                        "{} / {}",
                        fmt::pct(r.smith_target),
                        fmt::pct(r.measured_unoptimized)
                    )
                }))
                .collect()
        })
        .collect();
    format!(
        "Table 1. Design Target Miss Ratio (fully associative; measured = unoptimized layout)\n{}",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn grid_is_complete_and_monotone_in_cache_size() {
        let w = impact_workloads::by_name("wc").unwrap();
        let p = prepare(&w, &Budget::fast());
        let rows = run(&[p]);
        assert_eq!(rows.len(), 16);
        // LRU stack property: fully-associative misses shrink as the
        // cache grows, per block size.
        for &b in &smith::BLOCK_SIZES {
            let col: Vec<f64> = smith::CACHE_SIZES
                .iter()
                .map(|&s| {
                    rows.iter()
                        .find(|r| r.cache_size == s && r.block_size == b)
                        .unwrap()
                        .measured_unoptimized
                })
                .collect();
            for w in col.windows(2) {
                assert!(w[1] <= w[0] + 1e-12, "not monotone: {col:?}");
            }
        }
        let text = render(&rows);
        assert!(text.contains("Table 1"));
    }
}

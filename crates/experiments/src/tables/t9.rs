//! Table 9 — the effect of code scaling (2 KB cache, 64-byte blocks,
//! partial loading).
//!
//! Code scaling emulates different instruction-encoding densities: every
//! basic block is scaled to 0.5× / 0.7× / 1.0× / 1.1× of its size and the
//! whole pipeline re-runs (profile, inline, trace-select, lay out) on the
//! scaled program, exactly as a compiler for a denser ISA would.

use impact_cache::{CacheConfig, FillPolicy};
use impact_layout::pipeline::Pipeline;
use impact_layout::scale::scale_code;

use crate::fmt;
use crate::prepare::{pipeline_config, Prepared};
use crate::session::{SimHandle, SimSession};

/// The paper's scaling factors.
pub const FACTORS: [f64; 4] = [0.5, 0.7, 1.0, 1.1];

/// One benchmark's miss/traffic across scaling factors.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// `(miss ratio, traffic ratio)` per entry of [`FACTORS`].
    pub cells: Vec<(f64, f64)>,
}

impact_support::json_object!(Row { name, cells });

/// Pending session requests for this table.
#[derive(Debug)]
pub struct Plan {
    rows: Vec<(String, Vec<SimHandle>)>,
}

/// Re-runs the pipeline per `(benchmark, factor)` — fanned across the
/// session's worker threads — and registers one request per scaled
/// placement. Each scaled program yields a distinct trace key (the
/// fingerprint covers block sizes and placement addresses), so the
/// session cannot conflate densities; the 1.0× run reproduces the
/// standard optimized placement and is served from the shared memo.
pub fn plan(session: &mut SimSession, prepared: &[Prepared]) -> Plan {
    let config = [CacheConfig::direct_mapped(2048, 64).with_fill(FillPolicy::Partial)];
    let work: Vec<(&Prepared, f64)> = prepared
        .iter()
        .flat_map(|p| FACTORS.iter().map(move |&f| (p, f)))
        .collect();
    let results = impact_support::parallel_map(session.jobs(), work, |(p, factor)| {
        let scaled = scale_code(&p.baseline_program, factor);
        let pc = pipeline_config(&p.workload, &p.budget);
        Pipeline::new(pc).run(&scaled)
    });
    let rows = prepared
        .iter()
        .zip(results.chunks(FACTORS.len()))
        .map(|(p, scaled)| {
            let handles = scaled
                .iter()
                .map(|result| {
                    session.request(
                        &result.program,
                        &result.placement,
                        p.eval_seed(),
                        p.budget.eval_limits(&p.workload),
                        &config,
                    )
                })
                .collect();
            (p.workload.name.to_owned(), handles)
        })
        .collect();
    Plan { rows }
}

/// Reads the executed statistics into rows.
#[must_use]
pub fn finish(session: &SimSession, plan: &Plan) -> Vec<Row> {
    plan.rows
        .iter()
        .map(|(name, handles)| Row {
            name: name.clone(),
            cells: handles
                .iter()
                .map(|h| {
                    let s = session.stats(h)[0];
                    (s.miss_ratio(), s.traffic_ratio())
                })
                .collect(),
        })
        .collect()
}

/// Re-runs the pipeline per scaling factor and simulates the partial-
/// loading configuration (one-shot session wrapper around
/// [`plan`] / [`finish`]).
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    let mut session = SimSession::new();
    let plan = plan(&mut session, prepared);
    session.execute();
    finish(&session, &plan)
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut header = vec!["name".to_owned()];
    for f in FACTORS {
        header.push(format!("{f} miss"));
        header.push(format!("{f} traffic"));
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.name.clone()];
            for &(m, t) in &r.cells {
                row.push(fmt::pct(m));
                row.push(fmt::pct(t));
            }
            row
        })
        .collect();
    format!(
        "Table 9. Effect of Code Scaling (2KB, 64B blocks, partial loading)\n{}",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn scaling_keeps_ratios_stable_for_cache_friendly_benchmarks() {
        let w = impact_workloads::by_name("wc").unwrap();
        let p = prepare(&w, &Budget::fast());
        let rows = run(std::slice::from_ref(&p));
        assert_eq!(rows[0].cells.len(), 4);
        // wc fits every cache at every density: all cells stay tiny.
        for &(m, _) in &rows[0].cells {
            assert!(m < 0.02, "wc miss under scaling: {m}");
        }
        assert!(render(&rows).contains("Table 9"));
    }
}

//! Table 2 — profile characteristics of the benchmarks.
//!
//! The paper reports C source lines, profiling-run counts, dynamic
//! instructions and dynamic control transfers (excluding call/return)
//! accumulated over all profiling runs. Our models have no C source, so
//! the static measure is basic-block count; everything else matches the
//! paper's definitions.

use crate::fmt;
use crate::prepare::Prepared;
use crate::session::SimSession;

/// One benchmark's profile characteristics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Static basic blocks (stands in for the paper's "C lines").
    pub blocks: u64,
    /// Profiling runs (distinct input seeds).
    pub runs: u32,
    /// Dynamic instructions accumulated over all profiling runs.
    pub instructions: u64,
    /// Dynamic control transfers other than call/return, over all runs.
    pub control: u64,
}

impact_support::json_object!(Row {
    name,
    blocks,
    runs,
    instructions,
    control
});

/// Session-uniform plan/finish shape: this table is profile-only (no
/// simulation), so its rows are fully computed at plan time.
#[derive(Debug)]
pub struct Plan {
    rows: Vec<Row>,
}

/// Computes all rows from the profiles (nothing to simulate).
pub fn plan(_session: &mut SimSession, prepared: &[Prepared]) -> Plan {
    Plan {
        rows: run(prepared),
    }
}

/// Returns the rows computed in [`plan`].
#[must_use]
pub fn finish(_session: &SimSession, plan: Plan) -> Vec<Row> {
    plan.rows
}

/// Computes one row per prepared benchmark from its pre-inlining profile
/// (Table 2 describes the original programs).
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    prepared
        .iter()
        .map(|p| {
            let profile = &p.result.pre_inline_profile;
            Row {
                name: p.workload.name.to_owned(),
                blocks: p
                    .baseline_program
                    .functions()
                    .map(|(_, f)| f.block_count() as u64)
                    .sum(),
                runs: profile.runs,
                instructions: profile.totals.instructions,
                control: profile.totals.intra_transfers,
            }
        })
        .collect()
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = ["name", "blocks", "runs", "instructions", "control"]
        .map(str::to_owned)
        .to_vec();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.blocks.to_string(),
                r.runs.to_string(),
                fmt::mcount(r.instructions),
                fmt::mcount(r.control),
            ]
        })
        .collect();
    format!(
        "Table 2. Profile Results\n{}",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn rows_reflect_profiles() {
        let w = impact_workloads::by_name("cmp").unwrap();
        let p = prepare(&w, &Budget::fast());
        let rows = run(std::slice::from_ref(&p));
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.name, "cmp");
        assert_eq!(r.runs, w.spec.profile_runs);
        assert!(r.instructions > 0);
        assert!(r.control > 0);
        assert!(r.control < r.instructions);
        assert!(render(&rows).contains("cmp"));
    }
}

//! Table 5 — static and dynamic code sizes.

use crate::fmt;
use crate::prepare::Prepared;
use crate::session::{SimHandle, SimSession};

/// One benchmark's size characteristics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Total static bytes of the laid-out (post-inlining) program.
    pub total_static_bytes: u64,
    /// Bytes with non-trivial execution count (the effective region).
    pub effective_static_bytes: u64,
    /// Dynamic instruction accesses in the evaluation trace.
    pub dynamic_accesses: u64,
}

impact_support::json_object!(Row {
    name,
    total_static_bytes,
    effective_static_bytes,
    dynamic_accesses
});

/// Pending session requests for this table.
#[derive(Debug)]
pub struct Plan {
    rows: Vec<(String, u64, u64, SimHandle)>,
}

/// Registers one empty-config (trace-length only) request per benchmark;
/// the optimized trace is shared with every other table that streams it.
pub fn plan(session: &mut SimSession, prepared: &[Prepared]) -> Plan {
    let rows = prepared
        .iter()
        .map(|p| {
            let handle = session.request(
                &p.result.program,
                &p.result.placement,
                p.eval_seed(),
                p.budget.eval_limits(&p.workload),
                &[],
            );
            (
                p.workload.name.to_owned(),
                p.result.total_static_bytes(),
                p.result.effective_static_bytes(),
                handle,
            )
        })
        .collect();
    Plan { rows }
}

/// Reads the executed trace lengths into rows.
#[must_use]
pub fn finish(session: &SimSession, plan: &Plan) -> Vec<Row> {
    plan.rows
        .iter()
        .map(|(name, total, effective, handle)| Row {
            name: name.clone(),
            total_static_bytes: *total,
            effective_static_bytes: *effective,
            dynamic_accesses: session.instructions(handle),
        })
        .collect()
}

/// Computes one row per prepared benchmark (one-shot session wrapper
/// around [`plan`] / [`finish`]).
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    let mut session = SimSession::new();
    let plan = plan(&mut session, prepared);
    session.execute();
    finish(&session, &plan)
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "name",
        "total static bytes",
        "effective static bytes",
        "dynamic accesses",
    ]
    .map(str::to_owned)
    .to_vec();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                fmt::kbytes(r.total_static_bytes),
                fmt::kbytes(r.effective_static_bytes),
                fmt::mcount(r.dynamic_accesses),
            ]
        })
        .collect();
    format!(
        "Table 5. Static and Dynamic Code Sizes of Benchmarks\n{}",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn effective_is_at_most_total() {
        let w = impact_workloads::by_name("compress").unwrap();
        let p = prepare(&w, &Budget::fast());
        let rows = run(std::slice::from_ref(&p));
        let r = &rows[0];
        assert!(r.effective_static_bytes <= r.total_static_bytes);
        assert!(
            r.effective_static_bytes < r.total_static_bytes,
            "compress has dead utilities; effective must be strictly smaller"
        );
        assert!(r.dynamic_accesses > 0);
        assert!(render(&rows).contains("compress"));
    }
}

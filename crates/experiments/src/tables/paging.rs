//! Instruction paging experiment (the paper's §5 second research
//! direction, realized): page faults and working-set size with and
//! without placement optimization.
//!
//! §4.1.3 argues that separating effective from never-executed code means
//! "when a page is transferred from the secondary memory to the main
//! memory, all the bytes of that page are likely to be used". This
//! experiment measures exactly that: an LRU-paged instruction memory with
//! a small resident set, natural layout vs. optimized placement, plus the
//! Denning working-set size and the traffic saved by page sectoring.

use impact_cache::paging::{PageConfig, PagingSim, WorkingSetTracker};
use impact_ir::Program;
use impact_layout::Placement;

use crate::fmt;
use crate::prepare::Prepared;
use crate::session::{SimSession, SinkHandle};

/// Page size used throughout.
pub const PAGE_BYTES: u64 = 1024;
/// Resident-set capacity in pages.
pub const RESIDENT_PAGES: usize = 4;
/// Sector size for the sectored variant.
pub const SECTOR_BYTES: u64 = 128;
/// Working-set window in accesses.
pub const WS_WINDOW: u64 = 100_000;

/// One benchmark's paging behavior under both layouts.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Page-fault ratio, natural layout.
    pub natural_fault_ratio: f64,
    /// Page-fault ratio, optimized placement.
    pub optimized_fault_ratio: f64,
    /// Mean working-set pages, natural layout.
    pub natural_ws_pages: f64,
    /// Mean working-set pages, optimized placement.
    pub optimized_ws_pages: f64,
    /// Paging traffic ratio with whole-page transfers (optimized).
    pub full_traffic: f64,
    /// Paging traffic ratio with 128-byte page sectoring (optimized).
    pub sectored_traffic: f64,
}

impact_support::json_object!(Row {
    name,
    natural_fault_ratio,
    optimized_fault_ratio,
    natural_ws_pages,
    optimized_ws_pages,
    full_traffic,
    sectored_traffic
});

/// The paging sinks attached to one layout's trace stream.
#[derive(Debug)]
struct LayoutSinks {
    full: SinkHandle,
    sectored: SinkHandle,
    ws: SinkHandle,
}

/// One benchmark's pending sinks across both layouts.
#[derive(Debug)]
struct RowPlan {
    name: String,
    natural: LayoutSinks,
    optimized: LayoutSinks,
}

/// Pending session requests for this table.
#[derive(Debug)]
pub struct Plan {
    rows: Vec<RowPlan>,
}

/// Attaches all three paging measurements to a layout's trace stream.
fn attach(
    session: &mut SimSession,
    program: &Program,
    placement: &Placement,
    seed: u64,
    limits: impact_profile::ExecLimits,
) -> LayoutSinks {
    let full = PagingSim::new(PageConfig {
        page_bytes: PAGE_BYTES,
        resident_pages: RESIDENT_PAGES,
        sector_bytes: None,
    });
    let sectored = PagingSim::new(PageConfig {
        page_bytes: PAGE_BYTES,
        resident_pages: RESIDENT_PAGES,
        sector_bytes: Some(SECTOR_BYTES),
    });
    let ws = WorkingSetTracker::new(PAGE_BYTES, WS_WINDOW);
    LayoutSinks {
        full: session.request_sink(program, placement, seed, limits, full),
        sectored: session.request_sink(program, placement, seed, limits, sectored),
        ws: session.request_sink(program, placement, seed, limits, ws),
    }
}

/// Registers the paging sinks for both layouts of every benchmark; the
/// streams are shared with every cache table that evaluates the same
/// keys.
pub fn plan(session: &mut SimSession, prepared: &[Prepared]) -> Plan {
    let rows = prepared
        .iter()
        .map(|p| {
            let limits = p.budget.eval_limits(&p.workload);
            let seed = p.eval_seed();
            RowPlan {
                name: p.workload.name.to_owned(),
                natural: attach(session, &p.baseline_program, &p.baseline, seed, limits),
                optimized: attach(
                    session,
                    &p.result.program,
                    &p.result.placement,
                    seed,
                    limits,
                ),
            }
        })
        .collect();
    Plan { rows }
}

/// Takes the streamed sinks back and reads them into rows.
#[must_use]
pub fn finish(session: &mut SimSession, plan: Plan) -> Vec<Row> {
    plan.rows
        .into_iter()
        .map(|r| {
            let nat_full: PagingSim = session.take_sink(&r.natural.full);
            let _nat_sectored: PagingSim = session.take_sink(&r.natural.sectored);
            let nat_ws: WorkingSetTracker = session.take_sink(&r.natural.ws);
            let opt_full: PagingSim = session.take_sink(&r.optimized.full);
            let opt_sectored: PagingSim = session.take_sink(&r.optimized.sectored);
            let opt_ws: WorkingSetTracker = session.take_sink(&r.optimized.ws);
            Row {
                name: r.name,
                natural_fault_ratio: nat_full.stats().fault_ratio(),
                optimized_fault_ratio: opt_full.stats().fault_ratio(),
                natural_ws_pages: nat_ws.mean_pages(),
                optimized_ws_pages: opt_ws.mean_pages(),
                full_traffic: opt_full.stats().traffic_ratio(),
                sectored_traffic: opt_sectored.stats().traffic_ratio(),
            }
        })
        .collect()
}

/// Runs the paging experiment for every prepared benchmark (one-shot
/// session wrapper around [`plan`] / [`finish`]).
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    let mut session = SimSession::new();
    let plan = plan(&mut session, prepared);
    session.execute();
    finish(&mut session, plan)
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "name",
        "natural faults",
        "optimized faults",
        "natural WS pages",
        "optimized WS pages",
        "page traffic",
        "sectored traffic",
    ]
    .map(str::to_owned)
    .to_vec();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.4}%", r.natural_fault_ratio * 100.0),
                format!("{:.4}%", r.optimized_fault_ratio * 100.0),
                format!("{:.1}", r.natural_ws_pages),
                format!("{:.1}", r.optimized_ws_pages),
                fmt::pct(r.full_traffic),
                fmt::pct(r.sectored_traffic),
            ]
        })
        .collect();
    format!(
        "Paging. Instruction paging behavior ({PAGE_BYTES}B pages, {RESIDENT_PAGES}-page resident set, LRU)\n{}",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn optimization_shrinks_working_set_and_sectoring_cuts_traffic() {
        let w = impact_workloads::by_name("lex").unwrap();
        let p = prepare(&w, &Budget::fast());
        let rows = run(std::slice::from_ref(&p));
        let r = &rows[0];
        // lex's hot set packs into fewer pages after placement.
        assert!(r.optimized_ws_pages <= r.natural_ws_pages + 0.5, "{r:?}");
        assert!(r.sectored_traffic <= r.full_traffic + 1e-9, "{r:?}");
        assert!(render(&rows).contains("Paging"));
    }
}

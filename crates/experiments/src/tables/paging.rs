//! Instruction paging experiment (the paper's §5 second research
//! direction, realized): page faults and working-set size with and
//! without placement optimization.
//!
//! §4.1.3 argues that separating effective from never-executed code means
//! "when a page is transferred from the secondary memory to the main
//! memory, all the bytes of that page are likely to be used". This
//! experiment measures exactly that: an LRU-paged instruction memory with
//! a small resident set, natural layout vs. optimized placement, plus the
//! Denning working-set size and the traffic saved by page sectoring.

use impact_cache::paging::{PageConfig, PagingSim, WorkingSetTracker};
use impact_cache::AccessSink;
use impact_ir::Program;
use impact_layout::Placement;
use impact_trace::TraceGenerator;

use crate::fmt;
use crate::prepare::Prepared;

/// Page size used throughout.
pub const PAGE_BYTES: u64 = 1024;
/// Resident-set capacity in pages.
pub const RESIDENT_PAGES: usize = 4;
/// Sector size for the sectored variant.
pub const SECTOR_BYTES: u64 = 128;
/// Working-set window in accesses.
pub const WS_WINDOW: u64 = 100_000;

/// One benchmark's paging behavior under both layouts.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Page-fault ratio, natural layout.
    pub natural_fault_ratio: f64,
    /// Page-fault ratio, optimized placement.
    pub optimized_fault_ratio: f64,
    /// Mean working-set pages, natural layout.
    pub natural_ws_pages: f64,
    /// Mean working-set pages, optimized placement.
    pub optimized_ws_pages: f64,
    /// Paging traffic ratio with whole-page transfers (optimized).
    pub full_traffic: f64,
    /// Paging traffic ratio with 128-byte page sectoring (optimized).
    pub sectored_traffic: f64,
}

impact_support::json_object!(Row {
    name,
    natural_fault_ratio,
    optimized_fault_ratio,
    natural_ws_pages,
    optimized_ws_pages,
    full_traffic,
    sectored_traffic
});

/// All three measurements in one trace pass per layout.
fn measure(
    program: &Program,
    placement: &Placement,
    seed: u64,
    limits: impact_profile::ExecLimits,
) -> (f64, f64, f64, f64) {
    let mut full = PagingSim::new(PageConfig {
        page_bytes: PAGE_BYTES,
        resident_pages: RESIDENT_PAGES,
        sector_bytes: None,
    });
    let mut sectored = PagingSim::new(PageConfig {
        page_bytes: PAGE_BYTES,
        resident_pages: RESIDENT_PAGES,
        sector_bytes: Some(SECTOR_BYTES),
    });
    let mut ws = WorkingSetTracker::new(PAGE_BYTES, WS_WINDOW);
    let gen = TraceGenerator::new(program, placement).with_limits(limits);
    gen.run(seed, |addr| {
        full.access(addr);
        sectored.access(addr);
        ws.access(addr);
    });
    (
        full.stats().fault_ratio(),
        ws.mean_pages(),
        full.stats().traffic_ratio(),
        sectored.stats().traffic_ratio(),
    )
}

/// Runs the paging experiment for every prepared benchmark.
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    prepared
        .iter()
        .map(|p| {
            let limits = p.budget.eval_limits(&p.workload);
            let (nat_fault, nat_ws, _, _) =
                measure(&p.baseline_program, &p.baseline, p.eval_seed(), limits);
            let (opt_fault, opt_ws, full_traffic, sectored_traffic) = measure(
                &p.result.program,
                &p.result.placement,
                p.eval_seed(),
                limits,
            );
            Row {
                name: p.workload.name.to_owned(),
                natural_fault_ratio: nat_fault,
                optimized_fault_ratio: opt_fault,
                natural_ws_pages: nat_ws,
                optimized_ws_pages: opt_ws,
                full_traffic,
                sectored_traffic,
            }
        })
        .collect()
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "name",
        "natural faults",
        "optimized faults",
        "natural WS pages",
        "optimized WS pages",
        "page traffic",
        "sectored traffic",
    ]
    .map(str::to_owned)
    .to_vec();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.4}%", r.natural_fault_ratio * 100.0),
                format!("{:.4}%", r.optimized_fault_ratio * 100.0),
                format!("{:.1}", r.natural_ws_pages),
                format!("{:.1}", r.optimized_ws_pages),
                fmt::pct(r.full_traffic),
                fmt::pct(r.sectored_traffic),
            ]
        })
        .collect();
    format!(
        "Paging. Instruction paging behavior ({PAGE_BYTES}B pages, {RESIDENT_PAGES}-page resident set, LRU)\n{}",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn optimization_shrinks_working_set_and_sectoring_cuts_traffic() {
        let w = impact_workloads::by_name("lex").unwrap();
        let p = prepare(&w, &Budget::fast());
        let rows = run(std::slice::from_ref(&p));
        let r = &rows[0];
        // lex's hot set packs into fewer pages after placement.
        assert!(r.optimized_ws_pages <= r.natural_ws_pages + 0.5, "{r:?}");
        assert!(r.sectored_traffic <= r.full_traffic + 1e-9, "{r:?}");
        assert!(render(&rows).contains("Paging"));
    }
}

//! Placement-score validation: do the static scorers rank layouts the
//! way the simulator does?
//!
//! The layout advisor's whole premise is that a placement can be judged
//! without running it. This table puts that premise on trial: for every
//! benchmark it builds several layout *variants* of the same workload —
//! the paper pipeline's placement, the natural (declaration-order)
//! baseline, two seeded random shuffles, and a pipeline run with
//! inlining disabled — scores each one statically with the ExtTSP cost
//! model (see [`impact_analyze::score_placement`]), and simulates each
//! one on the held-out evaluation input at the paper's 2 KB / 64 B
//! reference cache. The per-benchmark tie-averaged Spearman rank
//! correlation between static cost (`1 - exttsp`) and the simulated
//! miss ratio — and, second column, the simulated memory-traffic ratio
//! — says whether the scorer orders real layouts correctly. The static
//! score knows nothing about set indexing, so perfect correlation is
//! not expected; the committed baseline in `experiments_out/score.json`
//! gates regressions on the mean.

use impact_analyze::{score_placement, ScoreConfig};
use impact_cache::CacheConfig;
use impact_ir::Program;
use impact_layout::baseline;
use impact_layout::pipeline::{Pipeline, PipelineConfig};
use impact_layout::Placement;
use impact_profile::Profile;

use crate::fmt;
use crate::prepare::{pipeline_config, Prepared};
use crate::session::{SimHandle, SimSession};
use crate::tables::static_validation::spearman;

/// Reference cache geometry (bytes, line bytes): the paper's 2 KB point.
pub const CACHE_BYTES: u64 = 2048;
/// Reference line size in bytes.
pub const LINE_BYTES: u64 = 64;
/// Seeds for the random layout variants.
pub const RANDOM_SEEDS: [u64; 2] = [7, 11];

/// One benchmark's score-vs-simulation comparison over all variants.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Number of layout variants compared.
    pub variants: usize,
    /// Static ExtTSP cost (`1 - normalized score`) of the paper placement.
    pub paper_cost: f64,
    /// Static ExtTSP cost of the natural-order baseline.
    pub natural_cost: f64,
    /// Spearman rank correlation of static cost vs. simulated miss ratio.
    pub miss_rho: f64,
    /// Spearman rank correlation of static cost vs. simulated traffic ratio.
    pub traffic_rho: f64,
}

impact_support::json_object!(Row {
    name,
    variants,
    paper_cost,
    natural_cost,
    miss_rho,
    traffic_rho
});

/// One layout variant awaiting its simulation: everything the static
/// scorer needs plus the session handle.
struct Variant {
    name: &'static str,
    program: Program,
    profile: Profile,
    placement: Placement,
    handle: SimHandle,
}

/// Pending session requests for this table.
pub struct Plan {
    rows: Vec<(usize, Vec<Variant>)>,
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("rows", &self.rows.len())
            .finish()
    }
}

/// The layout variants of one prepared benchmark. The first four share
/// the post-inline program (only the placement changes); the last
/// re-runs the pipeline with inlining disabled, so both the program and
/// the placement differ.
fn variants(p: &Prepared) -> Vec<(&'static str, Program, Profile, Placement)> {
    let program = &p.result.program;
    let profile = &p.result.profile;
    let mut out = vec![
        (
            "paper",
            program.clone(),
            profile.clone(),
            p.result.placement.clone(),
        ),
        (
            "natural",
            program.clone(),
            profile.clone(),
            baseline::natural(program),
        ),
    ];
    out.push((
        "random:7",
        program.clone(),
        profile.clone(),
        baseline::random(program, RANDOM_SEEDS[0]),
    ));
    out.push((
        "random:11",
        program.clone(),
        profile.clone(),
        baseline::random(program, RANDOM_SEEDS[1]),
    ));
    let config = PipelineConfig {
        inline: None,
        ..pipeline_config(&p.workload, &p.budget)
    };
    let no_inline = Pipeline::new(config).run(&p.workload.program);
    out.push((
        "inline-off",
        no_inline.program,
        no_inline.profile,
        no_inline.placement,
    ));
    out
}

/// Builds every variant and registers its simulation.
pub fn plan(session: &mut SimSession, prepared: &[Prepared]) -> Plan {
    let configs = [CacheConfig::direct_mapped(CACHE_BYTES, LINE_BYTES)];
    let rows = prepared
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let vs = variants(p)
                .into_iter()
                .map(|(name, program, profile, placement)| {
                    let handle = session.request(
                        &program,
                        &placement,
                        p.eval_seed(),
                        p.budget.eval_limits(&p.workload),
                        &configs,
                    );
                    Variant {
                        name,
                        program,
                        profile,
                        placement,
                        handle,
                    }
                })
                .collect();
            (i, vs)
        })
        .collect();
    Plan { rows }
}

/// Scores every variant statically and correlates against the executed
/// simulations.
#[must_use]
pub fn finish(session: &SimSession, plan: &Plan, prepared: &[Prepared]) -> Vec<Row> {
    let config = ScoreConfig {
        line_bytes: LINE_BYTES,
        ..ScoreConfig::default()
    };
    plan.rows
        .iter()
        .map(|(i, vs)| {
            let p = &prepared[*i];
            let mut costs = Vec::new();
            let mut misses = Vec::new();
            let mut traffics = Vec::new();
            let mut paper_cost = 0.0;
            let mut natural_cost = 0.0;
            for v in vs {
                let card = score_placement(&v.program, &v.profile, &v.placement, config);
                let cost = 1.0 - card.exttsp;
                match v.name {
                    "paper" => paper_cost = cost,
                    "natural" => natural_cost = cost,
                    _ => {}
                }
                let stats = &session.stats(&v.handle)[0];
                costs.push(cost);
                misses.push(stats.miss_ratio());
                traffics.push(stats.traffic_ratio());
            }
            Row {
                name: p.workload.name.to_owned(),
                variants: vs.len(),
                paper_cost,
                natural_cost,
                miss_rho: spearman(&costs, &misses),
                traffic_rho: spearman(&costs, &traffics),
            }
        })
        .collect()
}

/// Runs scoring and simulation for every benchmark (one-shot session
/// wrapper around [`plan`] / [`finish`]).
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    let mut session = SimSession::new();
    let plan = plan(&mut session, prepared);
    session.execute();
    finish(&session, &plan, prepared)
}

/// Mean per-benchmark cost-vs-miss rank correlation — the number the
/// `repro score` regression gate compares against the committed
/// baseline.
#[must_use]
pub fn mean_miss_rho(rows: &[Row]) -> f64 {
    rows.iter().map(|r| r.miss_rho).sum::<f64>() / rows.len().max(1) as f64
}

/// Mean per-benchmark cost-vs-traffic rank correlation.
#[must_use]
pub fn mean_traffic_rho(rows: &[Row]) -> f64 {
    rows.iter().map(|r| r.traffic_rho).sum::<f64>() / rows.len().max(1) as f64
}

/// Renders the table with the summary correlations at the foot.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = vec![
        "name".to_owned(),
        "variants".to_owned(),
        "paper cost".to_owned(),
        "natural cost".to_owned(),
        "miss rank corr".to_owned(),
        "traffic rank corr".to_owned(),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.variants.to_string(),
                format!("{:.3}", r.paper_cost),
                format!("{:.3}", r.natural_cost),
                format!("{:+.3}", r.miss_rho),
                format!("{:+.3}", r.traffic_rho),
            ]
        })
        .collect();
    format!(
        "Placement-score validation. Static ExtTSP cost vs simulated miss and traffic \
         ratios over layout variants ({CACHE_BYTES}B direct-mapped, {LINE_BYTES}B lines)\n{}\
         mean miss-rank corr {:+.3}; mean traffic-rank corr {:+.3}\n",
        fmt::render_table(&header, &table),
        mean_miss_rho(rows),
        mean_traffic_rho(rows),
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn scores_rank_wc_layouts_like_the_simulator() {
        let w = impact_workloads::by_name("wc").unwrap();
        let p = prepare(&w, &Budget::fast());
        let rows = run(std::slice::from_ref(&p));
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.variants, 5);
        assert!(
            r.paper_cost < r.natural_cost,
            "the pipeline must out-score the natural order: paper {} vs natural {}",
            r.paper_cost,
            r.natural_cost
        );
        assert!(r.miss_rho >= -1.0 && r.miss_rho <= 1.0);
        assert!(render(&rows).contains("Placement-score validation"));
    }

    #[test]
    fn variants_are_deterministic() {
        let w = impact_workloads::by_name("cmp").unwrap();
        let p = prepare(&w, &Budget::fast());
        let a = run(std::slice::from_ref(&p));
        let b = run(std::slice::from_ref(&p));
        assert_eq!(a, b, "same inputs must produce identical rows");
    }
}

//! Input-sensitivity analysis: the headline miss ratio across several
//! held-out evaluation inputs.
//!
//! The paper evaluates each benchmark on a single "randomly selected"
//! input. This table re-runs the headline configuration (2 KB
//! direct-mapped, 64 B blocks, optimized placement) over `SEEDS`
//! distinct held-out inputs per benchmark and reports the spread — the
//! reproduction's answer to "how much did the single-trace methodology
//! matter?".

use impact_cache::CacheConfig;

use crate::fmt;
use crate::prepare::Prepared;
use crate::session::{SimHandle, SimSession};

/// Number of held-out inputs evaluated per benchmark.
pub const SEEDS: u64 = 5;

/// Headline geometry.
pub const CACHE_BYTES: u64 = 2048;
/// Headline block size.
pub const BLOCK_BYTES: u64 = 64;

/// Miss-ratio spread for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Per-seed miss ratios, in seed order.
    pub miss_ratios: Vec<f64>,
    /// Mean miss ratio.
    pub mean: f64,
    /// Sample standard deviation (0 when `SEEDS < 2`).
    pub std_dev: f64,
    /// Smallest observed.
    pub min: f64,
    /// Largest observed.
    pub max: f64,
}

impact_support::json_object!(Row {
    name,
    miss_ratios,
    mean,
    std_dev,
    min,
    max
});

/// Pending session requests for this table.
#[derive(Debug)]
pub struct Plan {
    rows: Vec<(String, Vec<SimHandle>)>,
}

/// Registers one request per held-out seed per benchmark. Each seed is a
/// distinct trace key; the `k = 0` seed *is* the standard evaluation
/// input, so that stream is shared with the headline tables.
pub fn plan(session: &mut SimSession, prepared: &[Prepared]) -> Plan {
    let configs = [CacheConfig::direct_mapped(CACHE_BYTES, BLOCK_BYTES)];
    let rows = prepared
        .iter()
        .map(|p| {
            let limits = p.budget.eval_limits(&p.workload);
            let handles = (0..SEEDS)
                .map(|k| {
                    // Spacing by a large stride keeps the extra seeds far
                    // from both the profiling range and each other.
                    let seed = p.eval_seed() + k * 7919;
                    session.request(
                        &p.result.program,
                        &p.result.placement,
                        seed,
                        limits,
                        &configs,
                    )
                })
                .collect();
            (p.workload.name.to_owned(), handles)
        })
        .collect();
    Plan { rows }
}

/// Reads the executed statistics into spread rows.
#[must_use]
pub fn finish(session: &SimSession, plan: &Plan) -> Vec<Row> {
    plan.rows
        .iter()
        .map(|(name, handles)| {
            let miss_ratios: Vec<f64> = handles
                .iter()
                .map(|h| session.stats(h)[0].miss_ratio())
                .collect();
            let n = miss_ratios.len() as f64;
            let mean = miss_ratios.iter().sum::<f64>() / n;
            let var = if miss_ratios.len() > 1 {
                miss_ratios.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / (n - 1.0)
            } else {
                0.0
            };
            let min = miss_ratios.iter().copied().fold(f64::INFINITY, f64::min);
            let max = miss_ratios.iter().copied().fold(0.0f64, f64::max);
            Row {
                name: name.clone(),
                miss_ratios,
                mean,
                std_dev: var.sqrt(),
                min,
                max,
            }
        })
        .collect()
}

/// Evaluates every benchmark over [`SEEDS`] held-out inputs (one-shot
/// session wrapper around [`plan`] / [`finish`]).
#[must_use]
pub fn run(prepared: &[Prepared]) -> Vec<Row> {
    let mut session = SimSession::new();
    let plan = plan(&mut session, prepared);
    session.execute();
    finish(&session, &plan)
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = ["name", "mean miss", "std dev", "min", "max"]
        .map(str::to_owned)
        .to_vec();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                fmt::pct(r.mean),
                fmt::pct(r.std_dev),
                fmt::pct(r.min),
                fmt::pct(r.max),
            ]
        })
        .collect();
    format!(
        "Variability. Optimized 2KB/64B miss ratio over {SEEDS} held-out inputs\n{}",
        fmt::render_table(&header, &table)
    )
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn spread_statistics_are_consistent() {
        let w = impact_workloads::by_name("compress").unwrap();
        let p = prepare(&w, &Budget::fast());
        let rows = run(std::slice::from_ref(&p));
        let r = &rows[0];
        assert_eq!(r.miss_ratios.len() as u64, SEEDS);
        assert!(r.min <= r.mean && r.mean <= r.max);
        assert!(r.std_dev >= 0.0);
        assert!(render(&rows).contains("Variability"));
    }
}

//! Analytical miss-ratio estimation from the weighted control graphs —
//! the paper's §5 third research direction, realized:
//!
//! > "With few mapping conflicts, performance measurements based on
//! > weighted call graphs could closely approximate the trace driven
//! > simulation. If the approximation proves to be accurate, we would be
//! > able to search the instruction memory hierarchy design space with
//! > billions of dynamic accesses."
//!
//! The estimator predicts a direct-mapped cache's miss ratio from the
//! profile and the placement alone — no trace is generated, so its cost
//! is proportional to static code size, not dynamic instruction count.
//!
//! # Model
//!
//! Fetches are grouped into *line entries*: events where the fetch
//! stream enters a cache line non-sequentially (a taken transfer landing
//! in a different line) or by crossing a line boundary sequentially.
//! Within one entry, all subsequent fetches to the same line hit
//! trivially, so only entries can miss.
//!
//! Per-line entry weights are computed exactly from the weighted control
//! graph and the placement. Misses are then estimated per cache set
//! under an independent-reference approximation over entry events: an
//! entry to line `i` of a set with entry weights `e_1..e_k` misses with
//! probability `1 − e_i / Σe` (the chance that the set's frame was last
//! used by some other line), plus one cold miss per touched line.
//!
//! The approximation is exact for sets with a single resident line and
//! degrades gracefully with conflict intensity; the `repro estimate`
//! table quantifies the error against trace-driven simulation.

use std::collections::BTreeMap;

use impact_cache::CacheConfig;
use impact_ir::{Program, Terminator, BYTES_PER_INSTR};
use impact_layout::Placement;
use impact_profile::Profile;

/// Per-cache-line *entry weights*: for every line (index `addr / block`),
/// the expected number of times the fetch stream enters it per profiled
/// execution — the event granularity at which misses can occur.
///
/// Entries are (i) sequential line-boundary crossings inside straight
/// code and (ii) taken transfers landing in a different line (call
/// continuations always count: the callee ran in between). Shared by the
/// miss estimator and the set-pressure visualization.
///
/// The map is ordered so every consumer folds the weights in one fixed
/// line order: float summation stays byte-identical across runs and
/// `--jobs` counts.
#[must_use]
pub fn line_entry_weights(
    program: &Program,
    profile: &Profile,
    placement: &Placement,
    block_bytes: u64,
) -> BTreeMap<u64, f64> {
    let line_of = |addr: u64| addr / block_bytes;
    let mut entries: BTreeMap<u64, f64> = BTreeMap::new();

    for (fid, func) in program.functions() {
        let fp = profile.function(fid);
        for (bid, bb) in func.blocks() {
            let w = fp.block_counts[bid.index()] as f64;
            if w == 0.0 {
                continue;
            }
            let base = placement.addr(fid, bid);
            let end = base + bb.size_bytes() - BYTES_PER_INSTR;
            // Sequential entries: every line boundary crossed inside the
            // block.
            for line in line_of(base) + 1..=line_of(end) {
                *entries.entry(line).or_insert(0.0) += w;
            }
        }

        // Transfer entries: a landing in the source's own line cannot
        // miss, and a sequential fall-through across a boundary is
        // already counted above — everything else enters a line.
        for (&(from, to), &w) in &fp.arcs {
            let from_bb = func.block(from);
            let from_end = placement.addr(fid, from) + from_bb.size_bytes() - BYTES_PER_INSTR;
            let to_start = placement.addr(fid, to);
            let sequential = to_start == from_end + BYTES_PER_INSTR;
            let through_call = matches!(from_bb.terminator(), Terminator::Call { .. });
            if line_of(to_start) == line_of(from_end) && !through_call {
                continue;
            }
            if sequential && !through_call {
                continue;
            }
            *entries.entry(line_of(to_start)).or_insert(0.0) += w as f64;
        }
    }

    // Call entries into callee entry blocks (inter-function transfers
    // are not in the intra-function arc sets; one entry per invocation).
    for (fid, func) in program.functions() {
        let fp = profile.function(fid);
        if fp.invocations > 0 {
            let entry_addr = placement.addr(fid, func.entry());
            *entries.entry(line_of(entry_addr)).or_insert(0.0) += fp.invocations as f64;
        }
    }
    entries
}

/// The estimator's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissEstimate {
    /// Estimated cold (first-touch) misses.
    pub cold_misses: f64,
    /// Estimated steady-state conflict misses.
    pub conflict_misses: f64,
    /// Dynamic fetches the profile represents.
    pub accesses: f64,
    /// Predicted miss ratio.
    pub miss_ratio: f64,
}

impact_support::json_object!(MissEstimate {
    cold_misses,
    conflict_misses,
    accesses,
    miss_ratio
});

/// Predicts the miss ratio of a direct-mapped cache for `program` placed
/// by `placement`, using only `profile` (no trace).
///
/// # Panics
///
/// Panics if `config` is invalid or not direct-mapped with whole-block
/// fill (the estimator models exactly the organization the paper
/// advocates).
#[must_use]
pub fn estimate_direct_mapped(
    program: &Program,
    profile: &Profile,
    placement: &Placement,
    config: CacheConfig,
) -> MissEstimate {
    config.validate().expect("valid cache config");
    assert!(
        matches!(config.associativity, impact_cache::Associativity::Direct),
        "the estimator models direct-mapped caches"
    );
    assert!(
        matches!(config.fill, impact_cache::FillPolicy::FullBlock),
        "the estimator models whole-block fills"
    );

    let sets = config.sets();
    let entries = line_entry_weights(program, profile, placement, config.block_bytes);

    // Group lines by set and apply the independent-entry model. Line
    // order (and therefore summation order) is fixed by the BTreeMaps.
    let mut per_set: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for (&line, &e) in &entries {
        per_set.entry(line % sets).or_default().push(e);
    }
    let mut conflict = 0.0;
    for weights in per_set.values() {
        let total: f64 = weights.iter().sum();
        if weights.len() < 2 || total == 0.0 {
            continue;
        }
        for &e in weights {
            conflict += e * (1.0 - e / total);
        }
    }
    let cold = entries.len() as f64;
    let accesses = profile.totals.instructions as f64;
    let misses = cold + conflict;
    MissEstimate {
        cold_misses: cold,
        conflict_misses: conflict,
        accesses,
        miss_ratio: if accesses > 0.0 {
            misses / accesses
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use impact_ir::{BranchBias, Instr, ProgramBuilder};
    use impact_layout::baseline;
    use impact_profile::Profiler;

    use super::*;

    /// A single hot loop that fits one cache line.
    fn tiny_loop() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let body = f.block(vec![Instr::IntAlu; 6]);
        let exit = f.block(vec![]);
        f.terminate(
            body,
            Terminator::branch(body, exit, BranchBias::fixed(0.999)),
        );
        f.terminate(exit, Terminator::Exit);
        let id = f.finish();
        pb.set_entry(id);
        pb.finish().unwrap()
    }

    #[test]
    fn resident_loop_predicts_near_zero_misses() {
        let p = tiny_loop();
        let profile = Profiler::new().runs(2).profile(&p);
        let placement = baseline::natural(&p);
        let est = estimate_direct_mapped(
            &p,
            &profile,
            &placement,
            CacheConfig::direct_mapped(2048, 64),
        );
        assert!(est.conflict_misses < 1e-9, "{est:?}");
        assert!(est.miss_ratio < 0.01, "{est:?}");
        // One line touched (32 bytes of code).
        assert_eq!(est.cold_misses, 1.0);
    }

    #[test]
    fn conflicting_loop_predicts_thrashing() {
        // Two blocks alternating, placed 2048 bytes apart in a 2 KB
        // direct-mapped cache: every entry conflicts.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let a = f.block(vec![Instr::IntAlu; 500]); // spans many lines
        let b = f.block(vec![Instr::IntAlu; 11]);
        let exit = f.block(vec![]);
        f.terminate(a, Terminator::jump(b));
        f.terminate(b, Terminator::branch(a, exit, BranchBias::fixed(0.99)));
        f.terminate(exit, Terminator::Exit);
        let id = f.finish();
        pb.set_entry(id);
        let p = pb.finish().unwrap();

        let profile = Profiler::new().runs(2).profile(&p);
        let placement = baseline::natural(&p);
        // Block a is 2004 bytes; block b lands at 2004.. which maps onto
        // a's first lines in a 2 KB cache.
        let est = estimate_direct_mapped(
            &p,
            &profile,
            &placement,
            CacheConfig::direct_mapped(2048, 64),
        );
        assert!(
            est.conflict_misses > est.cold_misses,
            "expected conflicts to dominate: {est:?}"
        );
    }

    #[test]
    fn entry_weights_count_sequential_crossings() {
        // One 40-instruction block: spans 160 bytes = 2.5 lines of 64B.
        // Each execution enters lines 1 and 2 sequentially; line 0 is
        // entered once per run (program entry).
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let big = f.block(vec![Instr::IntAlu; 39]); // 40 instrs with term
        f.terminate(big, Terminator::Exit);
        let id = f.finish();
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let profile = Profiler::new().runs(3).profile(&p);
        let placement = baseline::natural(&p);

        let entries = line_entry_weights(&p, &profile, &placement, 64);
        assert_eq!(entries[&0], 3.0, "one program entry per run");
        assert_eq!(entries[&1], 3.0, "crossed once per execution");
        assert_eq!(entries[&2], 3.0);
        assert_eq!(entries.len(), 3);
    }

    #[test]
    fn entry_weights_skip_same_line_transfers() {
        // A tight loop entirely inside one line: the back edge lands in
        // its own line and must not create entries.
        let p = tiny_loop(); // 7 + 1 instructions = 32 bytes, one line
        let profile = Profiler::new().runs(2).profile(&p);
        let placement = baseline::natural(&p);
        let entries = line_entry_weights(&p, &profile, &placement, 64);
        // Only the per-run program entry registers.
        assert_eq!(entries[&0], 2.0);
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn call_continuations_always_count_as_entries() {
        // main calls a helper and continues: even though the continuation
        // might land in the same line as the call, the callee ran in
        // between, so an entry is recorded.
        let mut pb = ProgramBuilder::new();
        let h = pb.reserve("h");
        let mut main = pb.function("main");
        let m0 = main.block(vec![Instr::IntAlu]);
        let m1 = main.block(vec![]);
        main.terminate(m0, Terminator::call(h, m1));
        main.terminate(m1, Terminator::Exit);
        let mid = main.finish();
        let mut hf = pb.function_reserved(h);
        let h0 = hf.block(vec![Instr::IntAlu; 2]);
        hf.terminate(h0, Terminator::Return);
        hf.finish();
        pb.set_entry(mid);
        let p = pb.finish().unwrap();
        let profile = Profiler::new().runs(1).profile(&p);
        let placement = baseline::natural(&p);
        let entries = line_entry_weights(&p, &profile, &placement, 64);
        // Everything fits one line, but three entries exist: program
        // entry, the call into h, and the continuation back into main.
        let total: f64 = entries.values().sum();
        assert_eq!(total, 3.0, "{entries:?}");
    }

    #[test]
    #[should_panic(expected = "direct-mapped")]
    fn rejects_fully_associative() {
        let p = tiny_loop();
        let profile = Profiler::new().runs(1).profile(&p);
        let placement = baseline::natural(&p);
        let _ = estimate_direct_mapped(
            &p,
            &profile,
            &placement,
            CacheConfig::fully_associative(2048, 64),
        );
    }
}

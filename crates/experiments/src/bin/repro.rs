//! `repro` — regenerate any table of the ISCA 1989 IMPACT-I paper.
//!
//! ```text
//! repro [table1 .. table9 | ablation | paging | estimate | variability | assoc | minprob | all] [--fast] [--extended] [--json DIR]
//! ```
//!
//! * `--fast` caps walk lengths (quick smoke run; ratios are noisier).
//! * `--json DIR` additionally writes each table's rows as `tableN.json`.

use std::process::ExitCode;

use impact_experiments::prepare::{prepare_all, prepare_all_extended, Budget, Prepared};
use impact_experiments::tables;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [table1..table9 | ablation | paging | estimate | variability | assoc | minprob | all] [--fast] [--extended] [--json DIR]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut selected: Vec<u8> = Vec::new();
    let mut fast = false;
    let mut extended = false;
    let mut json_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--extended" => extended = true,
            "--json" => match args.next() {
                Some(dir) => json_dir = Some(dir),
                None => return usage(),
            },
            "all" => selected.extend(1..=15),
            "ablation" => selected.push(10),
            "paging" => selected.push(11),
            "estimate" => selected.push(12),
            "variability" => selected.push(13),
            "assoc" => selected.push(14),
            "minprob" => selected.push(15),
            t if t.starts_with("table") => match t["table".len()..].parse::<u8>() {
                Ok(n @ 1..=9) => selected.push(n),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    if selected.is_empty() {
        selected.extend(1..=9);
    }
    selected.sort_unstable();
    selected.dedup();

    let budget = if fast {
        Budget::fast()
    } else {
        Budget::default()
    };
    eprintln!(
        "preparing {} benchmarks ({} budget)...",
        if extended { 18 } else { 10 },
        if fast { "fast" } else { "full" }
    );
    let t0 = std::time::Instant::now();
    let prepared = if extended {
        prepare_all_extended(&budget)
    } else {
        prepare_all(&budget)
    };
    eprintln!("prepared in {:.1?}", t0.elapsed());

    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }

    for n in selected {
        let t = std::time::Instant::now();
        let (text, json) = run_table(n, &prepared);
        println!("{text}");
        let label = match n {
            10 => "ablation".to_owned(),
            11 => "paging".to_owned(),
            12 => "estimate".to_owned(),
            13 => "variability".to_owned(),
            14 => "assoc".to_owned(),
            15 => "minprob".to_owned(),
            _ => format!("table{n}"),
        };
        eprintln!("{label} in {:.1?}\n", t.elapsed());
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/{label}.json");
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Runs table `n`, returning `(rendered text, rows as JSON)`.
fn run_table(n: u8, prepared: &[Prepared]) -> (String, String) {
    fn pack<R: impact_support::ToJson>(text: String, rows: &[R]) -> (String, String) {
        let json = impact_support::json::rows_to_json_pretty(rows);
        (text, json)
    }
    match n {
        1 => {
            let rows = tables::t1::run(prepared);
            pack(tables::t1::render(&rows), &rows)
        }
        2 => {
            let rows = tables::t2::run(prepared);
            pack(tables::t2::render(&rows), &rows)
        }
        3 => {
            let rows = tables::t3::run(prepared);
            pack(tables::t3::render(&rows), &rows)
        }
        4 => {
            let rows = tables::t4::run(prepared);
            pack(tables::t4::render(&rows), &rows)
        }
        5 => {
            let rows = tables::t5::run(prepared);
            pack(tables::t5::render(&rows), &rows)
        }
        6 => {
            let rows = tables::t6::run(prepared);
            pack(tables::t6::render(&rows), &rows)
        }
        7 => {
            let rows = tables::t7::run(prepared);
            pack(tables::t7::render(&rows), &rows)
        }
        8 => {
            let rows = tables::t8::run(prepared);
            pack(tables::t8::render(&rows), &rows)
        }
        9 => {
            let rows = tables::t9::run(prepared);
            pack(tables::t9::render(&rows), &rows)
        }
        10 => {
            let rows = tables::ablation::run(prepared);
            pack(tables::ablation::render(&rows), &rows)
        }
        11 => {
            let rows = tables::paging::run(prepared);
            pack(tables::paging::render(&rows), &rows)
        }
        12 => {
            let rows = tables::estimate_validation::run(prepared);
            pack(tables::estimate_validation::render(&rows), &rows)
        }
        13 => {
            let rows = tables::variability::run(prepared);
            pack(tables::variability::render(&rows), &rows)
        }
        14 => {
            let rows = tables::assoc::run(prepared);
            pack(tables::assoc::render(&rows), &rows)
        }
        15 => {
            let rows = tables::min_prob::run(prepared);
            pack(tables::min_prob::render(&rows), &rows)
        }
        _ => unreachable!("selection is validated in main"),
    }
}

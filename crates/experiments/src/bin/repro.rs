//! `repro` — regenerate any table of the ISCA 1989 IMPACT-I paper.
//!
//! ```text
//! repro [table1 .. table9 | ablation | paging | estimate | variability | assoc | minprob | static | score | all]
//!       [--fast] [--extended] [--json DIR] [--jobs N] [--metrics FILE]
//!       [--store DIR] [--artifact-budget BYTES]
//! ```
//!
//! * `--fast` caps walk lengths (quick smoke run; ratios are noisier).
//! * `--json DIR` additionally writes each table's rows as `tableN.json`.
//! * `--jobs N` bounds the worker threads for preparation and simulation
//!   (default: the machine's available parallelism). Table output is
//!   byte-identical for every `N`.
//! * `--metrics FILE` writes the evaluation-engine metrics (traces
//!   streamed vs. memo-served, instructions/sec, per-table timing) as
//!   JSON; a summary always goes to stderr.
//! * `--store DIR` attaches a persistent content-addressed store:
//!   results and trace artifacts are written through, and a repeated
//!   invocation is answered mostly from disk (`disk_served` in the
//!   metrics) with byte-identical tables.
//! * `--artifact-budget BYTES` caps in-memory run-buffer artifacts
//!   (default 256 MiB; `0` disables capture).
//!
//! All selected tables share one [`SimSession`], so every unique
//! evaluation trace is streamed exactly once per run no matter how many
//! tables demand it.
//!
//! When the `score` table runs at the full budget over the standard
//! workload set, its mean cost-vs-miss rank correlation is checked
//! against the committed baseline in `experiments_out/score.json`; a
//! drop exits 1 so scorer regressions cannot land silently.
//!
//! [`SimSession`]: impact_experiments::session::SimSession

use std::process::ExitCode;

use impact_experiments::prepare::{prepare_many_jobs, Budget};
use impact_experiments::runner;
use impact_experiments::session::SimSession;
use impact_support::ToJson;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [table1..table9 | ablation | paging | estimate | variability | assoc | minprob | static | score | all] [--fast] [--extended] [--json DIR] [--jobs N] [--metrics FILE] [--store DIR] [--artifact-budget BYTES]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut selected: Vec<u8> = Vec::new();
    let mut fast = false;
    let mut extended = false;
    let mut json_dir: Option<String> = None;
    let mut metrics_file: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut store_dir: Option<String> = None;
    let mut artifact_budget: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--extended" => extended = true,
            "--json" => match args.next() {
                Some(dir) => json_dir = Some(dir),
                None => return usage(),
            },
            "--metrics" => match args.next() {
                Some(file) => metrics_file = Some(file),
                None => return usage(),
            },
            "--store" => match args.next() {
                Some(dir) => store_dir = Some(dir),
                None => return usage(),
            },
            "--artifact-budget" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(bytes) => artifact_budget = Some(bytes),
                None => return usage(),
            },
            "--jobs" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = Some(n),
                Some(0) => {
                    eprintln!(
                        "repro: --jobs must be at least 1 (0 worker threads cannot \
                         make progress); omit --jobs to size from the CPU count"
                    );
                    return ExitCode::FAILURE;
                }
                _ => return usage(),
            },
            "all" => selected.extend(runner::TABLE_IDS),
            "ablation" => selected.push(10),
            "paging" => selected.push(11),
            "estimate" => selected.push(12),
            "variability" => selected.push(13),
            "assoc" => selected.push(14),
            "minprob" => selected.push(15),
            "static" => selected.push(16),
            "score" => selected.push(17),
            t if t.starts_with("table") => match t["table".len()..].parse::<u8>() {
                Ok(n @ 1..=9) => selected.push(n),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    if selected.is_empty() {
        selected.extend(1..=9);
    }
    selected.sort_unstable();
    selected.dedup();

    let jobs = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    let budget = if fast {
        Budget::fast()
    } else {
        Budget::default()
    };
    let mut workloads = impact_workloads::all();
    if extended {
        workloads.extend(impact_workloads::extended());
    }
    eprintln!(
        "preparing {} benchmarks ({} budget, {jobs} jobs)...",
        workloads.len(),
        if fast { "fast" } else { "full" }
    );
    let t0 = std::time::Instant::now();
    let prepared = prepare_many_jobs(&workloads, &budget, jobs);
    eprintln!("prepared in {:.1?}", t0.elapsed());

    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut session = SimSession::with_jobs(jobs);
    if let Some(bytes) = artifact_budget {
        session = session.with_artifact_budget(bytes);
    }
    if let Some(dir) = &store_dir {
        match impact_store::Store::open(dir) {
            Ok(store) => session = session.with_store(std::sync::Arc::new(store)),
            Err(e) => {
                eprintln!("cannot open store {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let outputs = runner::run_tables(&mut session, &prepared, &selected);
    for out in &outputs {
        println!("{}", out.text);
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/{}.json", out.label);
            if let Err(e) = std::fs::write(&path, &out.json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let metrics = session.metrics();
    eprintln!("{}", metrics.render_summary());
    if let Some(file) = &metrics_file {
        if let Err(e) = std::fs::write(file, metrics.to_json().to_string_pretty()) {
            eprintln!("cannot write {file}: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Scorer regression gate. Only the full budget over the standard
    // workload set is comparable to the committed baseline.
    if !fast && !extended {
        if let Some(out) = outputs.iter().find(|o| o.label == "score") {
            match score_gate(&out.json) {
                Ok(msg) => eprintln!("{msg}"),
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}

/// Compares this run's mean cost-vs-miss rank correlation against the
/// committed `experiments_out/score.json`. A missing baseline skips the
/// gate (first run on a fresh checkout); a drop is an error.
fn score_gate(current_json: &str) -> Result<String, String> {
    const BASELINE: &str = "experiments_out/score.json";
    let Ok(committed) = std::fs::read_to_string(BASELINE) else {
        return Ok(format!(
            "score gate: no committed baseline at {BASELINE}; skipping"
        ));
    };
    let baseline = mean_miss_rho_of(&committed)
        .map_err(|e| format!("score gate: bad baseline {BASELINE}: {e}"))?;
    let current =
        mean_miss_rho_of(current_json).map_err(|e| format!("score gate: bad table output: {e}"))?;
    if current + 1e-9 < baseline {
        Err(format!(
            "score gate: mean miss-rank correlation regressed to {current:+.3} \
             (committed baseline {baseline:+.3})"
        ))
    } else {
        Ok(format!(
            "score gate: mean miss-rank correlation {current:+.3} >= committed {baseline:+.3}"
        ))
    }
}

/// Mean of the `miss_rho` field over a JSON array of score rows.
fn mean_miss_rho_of(src: &str) -> Result<f64, String> {
    let json = impact_support::json::parse(src).map_err(|e| e.to_string())?;
    let rows = json.as_arr().ok_or("expected a JSON array of rows")?;
    if rows.is_empty() {
        return Err("no rows".to_owned());
    }
    let mut sum = 0.0;
    for row in rows {
        sum += row
            .get("miss_rho")
            .and_then(impact_support::json::Json::as_f64)
            .ok_or("row missing numeric miss_rho")?;
    }
    Ok(sum / rows.len() as f64)
}

//! `repro` — regenerate any table of the ISCA 1989 IMPACT-I paper.
//!
//! ```text
//! repro [table1 .. table9 | ablation | paging | estimate | variability | assoc | minprob | static | all]
//!       [--fast] [--extended] [--json DIR] [--jobs N] [--metrics FILE]
//! ```
//!
//! * `--fast` caps walk lengths (quick smoke run; ratios are noisier).
//! * `--json DIR` additionally writes each table's rows as `tableN.json`.
//! * `--jobs N` bounds the worker threads for preparation and simulation
//!   (default: the machine's available parallelism). Table output is
//!   byte-identical for every `N`.
//! * `--metrics FILE` writes the evaluation-engine metrics (traces
//!   streamed vs. memo-served, instructions/sec, per-table timing) as
//!   JSON; a summary always goes to stderr.
//!
//! All selected tables share one [`SimSession`], so every unique
//! evaluation trace is streamed exactly once per run no matter how many
//! tables demand it.
//!
//! [`SimSession`]: impact_experiments::session::SimSession

use std::process::ExitCode;

use impact_experiments::prepare::{prepare_many_jobs, Budget};
use impact_experiments::runner;
use impact_experiments::session::SimSession;
use impact_support::ToJson;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [table1..table9 | ablation | paging | estimate | variability | assoc | minprob | static | all] [--fast] [--extended] [--json DIR] [--jobs N] [--metrics FILE]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut selected: Vec<u8> = Vec::new();
    let mut fast = false;
    let mut extended = false;
    let mut json_dir: Option<String> = None;
    let mut metrics_file: Option<String> = None;
    let mut jobs: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--extended" => extended = true,
            "--json" => match args.next() {
                Some(dir) => json_dir = Some(dir),
                None => return usage(),
            },
            "--metrics" => match args.next() {
                Some(file) => metrics_file = Some(file),
                None => return usage(),
            },
            "--jobs" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = Some(n),
                Some(0) => {
                    eprintln!(
                        "repro: --jobs must be at least 1 (0 worker threads cannot \
                         make progress); omit --jobs to size from the CPU count"
                    );
                    return ExitCode::FAILURE;
                }
                _ => return usage(),
            },
            "all" => selected.extend(runner::TABLE_IDS),
            "ablation" => selected.push(10),
            "paging" => selected.push(11),
            "estimate" => selected.push(12),
            "variability" => selected.push(13),
            "assoc" => selected.push(14),
            "minprob" => selected.push(15),
            "static" => selected.push(16),
            t if t.starts_with("table") => match t["table".len()..].parse::<u8>() {
                Ok(n @ 1..=9) => selected.push(n),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    if selected.is_empty() {
        selected.extend(1..=9);
    }
    selected.sort_unstable();
    selected.dedup();

    let jobs = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    let budget = if fast {
        Budget::fast()
    } else {
        Budget::default()
    };
    let mut workloads = impact_workloads::all();
    if extended {
        workloads.extend(impact_workloads::extended());
    }
    eprintln!(
        "preparing {} benchmarks ({} budget, {jobs} jobs)...",
        workloads.len(),
        if fast { "fast" } else { "full" }
    );
    let t0 = std::time::Instant::now();
    let prepared = prepare_many_jobs(&workloads, &budget, jobs);
    eprintln!("prepared in {:.1?}", t0.elapsed());

    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut session = SimSession::with_jobs(jobs);
    let outputs = runner::run_tables(&mut session, &prepared, &selected);
    for out in &outputs {
        println!("{}", out.text);
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/{}.json", out.label);
            if let Err(e) = std::fs::write(&path, &out.json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let metrics = session.metrics();
    eprintln!("{}", metrics.render_summary());
    if let Some(file) = &metrics_file {
        if let Err(e) = std::fs::write(file, metrics.to_json().to_string_pretty()) {
            eprintln!("cannot write {file}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

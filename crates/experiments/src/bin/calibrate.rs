//! `calibrate` — workload calibration probe.
//!
//! Prints, for every benchmark model, the static geometry and the
//! evaluation-trace lengths obtained from a range of evaluation-seed
//! offsets — for the original program (natural layout) and for the
//! post-inlining program the cache tables actually evaluate. Used when
//! tuning `impact-workloads` specs against the paper's published
//! statistics (see the `eval_seed_offset` knob: the paper evaluates on a
//! "typical size" input, so a degenerately short draw from the geometric
//! loop distributions warrants picking a different seed).
//!
//! ```text
//! calibrate [offsets]     # default 6
//! ```

use impact_experiments::prepare::{prepare, Budget};
use impact_layout::baseline;
use impact_profile::ExecLimits;
use impact_trace::TraceGenerator;

fn main() {
    let offsets: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);

    println!(
        "{:<10} {:>9} {:>7}  orig/optimized eval trace length by seed offset",
        "name", "bytes", "funcs"
    );
    for w in impact_workloads::all() {
        let natural = baseline::natural(&w.program);
        let prepared = prepare(&w, &Budget::default());
        let limits = ExecLimits {
            max_instructions: w.spec.max_dynamic_instrs,
            max_call_depth: 512,
        };
        let fmt_len = |n: u64, truncated: bool| {
            format!("{:.2}M{}", n as f64 / 1e6, if truncated { "*" } else { "" })
        };
        let lengths: Vec<String> = (0..offsets)
            .map(|off| {
                let mut n_orig = 0u64;
                let s_orig = TraceGenerator::new(&w.program, &natural)
                    .with_limits(limits)
                    .run(w.eval_seed() + off, |_| n_orig += 1);
                let mut n_opt = 0u64;
                let s_opt =
                    TraceGenerator::new(&prepared.result.program, &prepared.result.placement)
                        .with_limits(limits)
                        .run(w.eval_seed() + off, |_| n_opt += 1);
                format!(
                    "{}/{}",
                    fmt_len(n_orig, s_orig.truncated),
                    fmt_len(n_opt, s_opt.truncated)
                )
            })
            .collect();
        println!(
            "{:<10} {:>9} {:>7}  {}",
            w.name,
            w.program.total_bytes(),
            w.program.function_count(),
            lengths.join("  ")
        );
    }
    println!("(* = truncated at the workload's dynamic-instruction cap)");
}

//! Two-phase table driver: plan every selected table on one shared
//! [`SimSession`], execute once, then finish and render.
//!
//! This is what makes the session's memoization pay across tables: all
//! requests are registered *before* the single
//! [`SimSession::execute`] call, so overlapping demands (the optimized
//! trace alone is wanted by seven tables) collapse into one stream per
//! unique `(program, placement, seed, limits)` key and the
//! re-stream counter stays at zero. The `repro` binary is a thin CLI
//! shell around [`run_tables`].

use std::time::Instant;

use crate::prepare::Prepared;
use crate::session::SimSession;
use crate::tables;

/// Table selector used by the `repro` CLI: `1..=9` are the paper's
/// tables, `10..=17` the reproduction's extra experiments.
pub const TABLE_IDS: std::ops::RangeInclusive<u8> = 1..=17;

/// The stable label of table `n` (file names, metrics, CLI).
///
/// # Panics
///
/// Panics if `n` is outside [`TABLE_IDS`].
#[must_use]
pub fn label(n: u8) -> &'static str {
    match n {
        1 => "table1",
        2 => "table2",
        3 => "table3",
        4 => "table4",
        5 => "table5",
        6 => "table6",
        7 => "table7",
        8 => "table8",
        9 => "table9",
        10 => "ablation",
        11 => "paging",
        12 => "estimate",
        13 => "variability",
        14 => "assoc",
        15 => "minprob",
        16 => "static",
        17 => "score",
        _ => panic!("unknown table id {n}"),
    }
}

/// One rendered table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableOutput {
    /// Stable label (`table1` ... `minprob`).
    pub label: &'static str,
    /// Rendered text in the paper's shape.
    pub text: String,
    /// The typed rows as pretty-printed JSON.
    pub json: String,
}

/// A planned table waiting for the session to execute.
enum TablePlan {
    T1(tables::t1::Plan),
    T2(tables::t2::Plan),
    T3(tables::t3::Plan),
    T4(tables::t4::Plan),
    T5(tables::t5::Plan),
    T6(tables::t6::Plan),
    T7(tables::t7::Plan),
    T8(tables::t8::Plan),
    T9(tables::t9::Plan),
    Ablation(tables::ablation::Plan),
    Paging(tables::paging::Plan),
    Estimate(tables::estimate_validation::Plan),
    Variability(tables::variability::Plan),
    Assoc(tables::assoc::Plan),
    MinProb(tables::min_prob::Plan),
    Static(tables::static_validation::Plan),
    Score(tables::score_validation::Plan),
}

fn plan_one(n: u8, session: &mut SimSession, prepared: &[Prepared]) -> TablePlan {
    match n {
        1 => TablePlan::T1(tables::t1::plan(session, prepared)),
        2 => TablePlan::T2(tables::t2::plan(session, prepared)),
        3 => TablePlan::T3(tables::t3::plan(session, prepared)),
        4 => TablePlan::T4(tables::t4::plan(session, prepared)),
        5 => TablePlan::T5(tables::t5::plan(session, prepared)),
        6 => TablePlan::T6(tables::t6::plan(session, prepared)),
        7 => TablePlan::T7(tables::t7::plan(session, prepared)),
        8 => TablePlan::T8(tables::t8::plan(session, prepared)),
        9 => TablePlan::T9(tables::t9::plan(session, prepared)),
        10 => TablePlan::Ablation(tables::ablation::plan(session, prepared)),
        11 => TablePlan::Paging(tables::paging::plan(session, prepared)),
        12 => TablePlan::Estimate(tables::estimate_validation::plan(session, prepared)),
        13 => TablePlan::Variability(tables::variability::plan(session, prepared)),
        14 => TablePlan::Assoc(tables::assoc::plan(session, prepared)),
        15 => TablePlan::MinProb(tables::min_prob::plan(session, prepared)),
        16 => TablePlan::Static(tables::static_validation::plan(session, prepared)),
        17 => TablePlan::Score(tables::score_validation::plan(session, prepared)),
        _ => panic!("unknown table id {n}"),
    }
}

fn finish_one(
    plan: TablePlan,
    session: &mut SimSession,
    prepared: &[Prepared],
) -> (String, String) {
    fn pack<R: impact_support::ToJson>(text: String, rows: &[R]) -> (String, String) {
        (text, impact_support::json::rows_to_json_pretty(rows))
    }
    match plan {
        TablePlan::T1(p) => {
            let rows = tables::t1::finish(session, &p);
            pack(tables::t1::render(&rows), &rows)
        }
        TablePlan::T2(p) => {
            let rows = tables::t2::finish(session, p);
            pack(tables::t2::render(&rows), &rows)
        }
        TablePlan::T3(p) => {
            let rows = tables::t3::finish(session, p);
            pack(tables::t3::render(&rows), &rows)
        }
        TablePlan::T4(p) => {
            let rows = tables::t4::finish(session, p);
            pack(tables::t4::render(&rows), &rows)
        }
        TablePlan::T5(p) => {
            let rows = tables::t5::finish(session, &p);
            pack(tables::t5::render(&rows), &rows)
        }
        TablePlan::T6(p) => {
            let rows = tables::t6::finish(session, &p);
            pack(tables::t6::render(&rows), &rows)
        }
        TablePlan::T7(p) => {
            let rows = tables::t7::finish(session, &p);
            pack(tables::t7::render(&rows), &rows)
        }
        TablePlan::T8(p) => {
            let rows = tables::t8::finish(session, &p);
            pack(tables::t8::render(&rows), &rows)
        }
        TablePlan::T9(p) => {
            let rows = tables::t9::finish(session, &p);
            pack(tables::t9::render(&rows), &rows)
        }
        TablePlan::Ablation(p) => {
            let rows = tables::ablation::finish(session, p);
            pack(tables::ablation::render(&rows), &rows)
        }
        TablePlan::Paging(p) => {
            let rows = tables::paging::finish(session, p);
            pack(tables::paging::render(&rows), &rows)
        }
        TablePlan::Estimate(p) => {
            let rows = tables::estimate_validation::finish(session, &p, prepared);
            pack(tables::estimate_validation::render(&rows), &rows)
        }
        TablePlan::Variability(p) => {
            let rows = tables::variability::finish(session, &p);
            pack(tables::variability::render(&rows), &rows)
        }
        TablePlan::Assoc(p) => {
            let rows = tables::assoc::finish(session, &p);
            pack(tables::assoc::render(&rows), &rows)
        }
        TablePlan::MinProb(p) => {
            let rows = tables::min_prob::finish(session, &p);
            pack(tables::min_prob::render(&rows), &rows)
        }
        TablePlan::Static(p) => {
            let rows = tables::static_validation::finish(session, &p, prepared);
            pack(tables::static_validation::render(&rows), &rows)
        }
        TablePlan::Score(p) => {
            let rows = tables::score_validation::finish(session, &p, prepared);
            pack(tables::score_validation::render(&rows), &rows)
        }
    }
}

/// Plans every selected table on `session`, executes all pending traces
/// once, then finishes and renders each table in selection order.
///
/// Per-table plan and finish/render wall-clock is recorded on the
/// session's metrics ([`SimSession::record_table`]).
#[must_use]
pub fn run_tables(
    session: &mut SimSession,
    prepared: &[Prepared],
    selected: &[u8],
) -> Vec<TableOutput> {
    let plans: Vec<(u8, TablePlan, u64)> = selected
        .iter()
        .map(|&n| {
            let t0 = Instant::now();
            let plan = plan_one(n, session, prepared);
            (n, plan, t0.elapsed().as_nanos() as u64)
        })
        .collect();

    session.execute();

    plans
        .into_iter()
        .map(|(n, plan, plan_nanos)| {
            let t0 = Instant::now();
            let (text, json) = finish_one(plan, session, prepared);
            session.record_table(label(n), plan_nanos, t0.elapsed().as_nanos() as u64);
            TableOutput {
                label: label(n),
                text,
                json,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    #[test]
    fn shared_session_streams_each_key_once() {
        let budget = Budget::fast();
        let prepared: Vec<Prepared> = ["wc", "cmp"]
            .iter()
            .map(|n| prepare(&impact_workloads::by_name(n).unwrap(), &budget))
            .collect();
        let mut session = SimSession::new();
        let selected: Vec<u8> = TABLE_IDS.collect();
        let outputs = run_tables(&mut session, &prepared, &selected);
        assert_eq!(outputs.len(), 17);

        let m = session.metrics();
        assert_eq!(
            m.restreams, 0,
            "planning all tables first must make every stream unique"
        );
        assert_eq!(m.unique_traces, m.traces_streamed);
        assert!(
            m.memo_key_hits > 0,
            "tables overlap heavily; keys must be shared"
        );
        assert!(m.memo_served > 0, "identical configs must be memo-served");
        assert_eq!(m.tables.len(), 17);
    }

    #[test]
    fn outputs_match_standalone_run_and_any_job_count() {
        let budget = Budget::fast();
        let prepared = vec![prepare(&impact_workloads::by_name("wc").unwrap(), &budget)];
        // 12 (estimate) guards the order-independent float accumulation:
        // its sums must not depend on the session's job count.
        let selected = [1u8, 5, 6, 8, 12];

        let mut serial = SimSession::new();
        let a = run_tables(&mut serial, &prepared, &selected);
        let mut parallel = SimSession::with_jobs(4);
        let b = run_tables(&mut parallel, &prepared, &selected);
        assert_eq!(a, b, "jobs must not change any table byte");

        // The shared session reproduces each table's standalone output.
        let t6 = tables::t6::run(&prepared);
        let shared_t6 = a.iter().find(|o| o.label == "table6").unwrap();
        assert_eq!(shared_t6.text, tables::t6::render(&t6));
    }
}

//! Text visualizations: the placed address space and cache-set pressure.
//!
//! Two renderings that make placement decisions inspectable:
//!
//! * [`placement_map`] — the program's address space as contiguous spans
//!   annotated with function, region, and a hotness bar;
//! * [`set_pressure`] — per-cache-set entry weight and expected conflict
//!   intensity, from the same model as the miss estimator.
//!
//! Both are exposed through the `impact viz`-style reporting in examples
//! and are plain strings, so they render anywhere.

use std::collections::BTreeMap;

use impact_cache::CacheConfig;
use impact_ir::Program;
use impact_layout::Placement;
use impact_profile::Profile;

use crate::estimate::line_entry_weights;

/// One contiguous span of the placed address space.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// First byte address.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
    /// Owning function's name.
    pub func: String,
    /// `true` if the span lies inside the effective region.
    pub effective: bool,
    /// Dynamic fetches per byte (hotness).
    pub heat: f64,
}

/// Computes the address-ordered spans of a placement.
#[must_use]
pub fn spans(program: &Program, profile: &Profile, placement: &Placement) -> Vec<Span> {
    // Collect per-block extents, then merge adjacent blocks of the same
    // function and region.
    let mut blocks: Vec<(u64, u64, usize, f64)> = Vec::new();
    for (fid, func) in program.functions() {
        let fp = profile.function(fid);
        for (bid, bb) in func.blocks() {
            let start = placement.addr(fid, bid);
            let fetches = fp.block_counts[bid.index()] as f64 * bb.instr_count() as f64;
            blocks.push((start, start + bb.size_bytes(), fid.index(), fetches));
        }
    }
    blocks.sort_unstable_by_key(|&(s, ..)| s);

    let mut out: Vec<Span> = Vec::new();
    for (start, end, fidx, fetches) in blocks {
        let effective = start < placement.effective_bytes();
        let name = program
            .function(impact_ir::FuncId::new(fidx))
            .name()
            .to_owned();
        if let Some(last) = out.last_mut() {
            if last.end == start && last.func == name && last.effective == effective {
                // Merge; keep heat as a running fetches-per-byte average.
                let bytes_before = (last.end - last.start) as f64;
                let total = last.heat * bytes_before + fetches;
                last.end = end;
                last.heat = total / (last.end - last.start) as f64;
                continue;
            }
        }
        out.push(Span {
            start,
            end,
            func: name,
            effective,
            heat: fetches / (end - start) as f64,
        });
    }
    out
}

/// Renders the placement map with a log-scaled hotness bar.
#[must_use]
pub fn placement_map(program: &Program, profile: &Profile, placement: &Placement) -> String {
    let spans = spans(program, profile, placement);
    let max_heat = spans.iter().map(|s| s.heat).fold(0.0f64, f64::max);
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8} {:>8}  {:<4} {:<20} {}\n",
        "start", "bytes", "reg", "function", "hotness (log scale)"
    ));
    for s in &spans {
        let bar = heat_bar(s.heat, max_heat, 24);
        out.push_str(&format!(
            "{:>8} {:>8}  {:<4} {:<20} {bar}\n",
            s.start,
            s.end - s.start,
            if s.effective { "eff" } else { "dead" },
            s.func,
        ));
    }
    out
}

/// A `width`-character log-scaled bar for `value` against `max`.
fn heat_bar(value: f64, max: f64, width: usize) -> String {
    if value <= 0.0 || max <= 0.0 {
        return String::new();
    }
    // Map [1, max] logarithmically onto [1, width].
    let frac = (value.max(1.0)).ln() / (max.max(std::f64::consts::E)).ln();
    let n = ((frac * width as f64).round() as usize).clamp(1, width);
    "#".repeat(n)
}

/// Per-set pressure: total entry weight and the estimator's expected
/// conflict misses for each set of `config`.
#[must_use]
pub fn set_pressure_data(
    program: &Program,
    profile: &Profile,
    placement: &Placement,
    config: CacheConfig,
) -> Vec<(u64, f64, f64)> {
    let entries = line_entry_weights(program, profile, placement, config.block_bytes);
    let sets = config.sets();
    let mut per_set: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for (&line, &e) in &entries {
        per_set.entry(line % sets).or_default().push(e);
    }
    let mut out: Vec<(u64, f64, f64)> = (0..sets)
        .map(|set| {
            let weights = per_set.get(&set).map_or(&[][..], Vec::as_slice);
            let total: f64 = weights.iter().sum();
            let conflict = if weights.len() > 1 && total > 0.0 {
                weights.iter().map(|&e| e * (1.0 - e / total)).sum()
            } else {
                0.0
            };
            (set, total, conflict)
        })
        .collect();
    out.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
    out
}

/// Renders the top conflict-heavy sets of `config`.
#[must_use]
pub fn set_pressure(
    program: &Program,
    profile: &Profile,
    placement: &Placement,
    config: CacheConfig,
    top: usize,
) -> String {
    let data = set_pressure_data(program, profile, placement, config);
    let max_conflict = data.first().map_or(0.0, |&(_, _, c)| c);
    let mut out = format!(
        "top {top} of {} sets by expected conflicts ({}B cache, {}B blocks)\n{:>5} {:>14} {:>14}  \n",
        data.len(),
        config.size_bytes,
        config.block_bytes,
        "set",
        "entry weight",
        "conflicts"
    );
    for &(set, total, conflict) in data.iter().take(top) {
        let bar = heat_bar(conflict, max_conflict.max(1.0), 20);
        out.push_str(&format!("{set:>5} {total:>14.0} {conflict:>14.0}  {bar}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::prepare::{prepare, Budget};

    use super::*;

    fn prepared() -> crate::prepare::Prepared {
        let w = impact_workloads::by_name("yacc").unwrap();
        prepare(&w, &Budget::fast())
    }

    #[test]
    fn spans_tile_the_address_space() {
        let p = prepared();
        let spans = spans(&p.result.program, &p.result.profile, &p.result.placement);
        assert_eq!(spans[0].start, 0);
        for w in spans.windows(2) {
            assert_eq!(w[0].end, w[1].start, "spans must tile without gaps");
        }
        assert_eq!(spans.last().unwrap().end, p.result.placement.total_bytes());
        // Hot spans precede cold spans.
        let first_cold = spans.iter().position(|s| !s.effective).unwrap();
        assert!(spans[first_cold..].iter().all(|s| !s.effective));
    }

    #[test]
    fn placement_map_mentions_every_function_region() {
        let p = prepared();
        let map = placement_map(&p.result.program, &p.result.profile, &p.result.placement);
        assert!(map.contains("main"));
        assert!(map.contains("eff"));
        assert!(map.contains("dead"));
    }

    #[test]
    fn set_pressure_sorts_by_conflicts() {
        let p = prepared();
        let data = set_pressure_data(
            &p.result.program,
            &p.result.profile,
            &p.result.placement,
            CacheConfig::direct_mapped(2048, 64),
        );
        assert_eq!(data.len(), 32);
        for w in data.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
        let text = set_pressure(
            &p.result.program,
            &p.result.profile,
            &p.result.placement,
            CacheConfig::direct_mapped(2048, 64),
            5,
        );
        assert!(text.contains("32 sets"));
    }

    #[test]
    fn heat_bar_scales() {
        assert_eq!(heat_bar(0.0, 10.0, 10), "");
        assert_eq!(heat_bar(10.0, 10.0, 10).len(), 10);
        assert!(heat_bar(2.0, 1000.0, 10).len() <= 3);
    }
}

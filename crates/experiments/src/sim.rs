//! Evaluation-trace simulation helpers.

use impact_cache::{CacheBank, CacheConfig, CacheStats};
use impact_ir::Program;
use impact_layout::Placement;
use impact_profile::ExecLimits;
use impact_trace::TraceGenerator;

/// Streams one evaluation trace of `(program, placement)` under
/// `eval_seed` into a bank of cache configurations; returns per-config
/// statistics in input order.
///
/// The whole sweep costs a single pass over the trace (the paper applies
/// "the entire execution traces ... to the cache simulator").
#[must_use]
pub fn simulate(
    program: &Program,
    placement: &Placement,
    eval_seed: u64,
    limits: ExecLimits,
    configs: &[CacheConfig],
) -> Vec<CacheStats> {
    simulate_counted(program, placement, eval_seed, limits, configs).0
}

/// Like [`simulate`], but also returns the trace length.
///
/// This is the one raw bank-plus-generator implementation; [`simulate`]
/// delegates here, and the [`crate::session::SimSession`] equivalence
/// tests compare against this path, so the two can never diverge.
#[must_use]
pub fn simulate_counted(
    program: &Program,
    placement: &Placement,
    eval_seed: u64,
    limits: ExecLimits,
    configs: &[CacheConfig],
) -> (Vec<CacheStats>, u64) {
    let mut bank = CacheBank::new(configs.iter().copied());
    let gen = TraceGenerator::new(program, placement).with_limits(limits);
    let summary = gen.stream(eval_seed, &mut bank);
    (bank.take_stats(), summary.instructions)
}

#[cfg(test)]
mod tests {
    use impact_layout::baseline;

    use super::*;

    #[test]
    fn stats_align_with_configs() {
        let w = impact_workloads::by_name("wc").unwrap();
        let placement = baseline::natural(&w.program);
        let configs = [
            CacheConfig::direct_mapped(512, 64),
            CacheConfig::direct_mapped(2048, 64),
        ];
        let limits = ExecLimits {
            max_instructions: 50_000,
            max_call_depth: 512,
        };
        let (stats, len) = simulate_counted(&w.program, &placement, 99, limits, &configs);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].accesses, len);
        assert_eq!(stats[1].accesses, len);
        // A bigger cache never misses more under LRU-per-set with equal
        // geometry... not guaranteed for direct-mapped, but trivially true
        // here because wc's working set fits both.
        assert!(stats[1].miss_ratio() <= stats[0].miss_ratio() + 1e-9);
    }
}

//! `SimSession` — the shared, parallel, memoizing evaluation engine
//! behind every table runner.
//!
//! The paper applies "the entire execution traces ... to the cache
//! simulator"; fifteen table runners each need cache statistics over the
//! *same* handful of evaluation traces, differing only in which
//! [`CacheConfig`]s they care about. Re-streaming a multi-million-access
//! trace per table is pure waste, so the session works in three phases:
//!
//! 1. **Plan** — table runners [`request`](SimSession::request) cache
//!    statistics (or [`request_sink`](SimSession::request_sink) a custom
//!    [`AccessSink`]) for a `(program, placement, seed, limits)` key and
//!    receive a handle. Identical keys are interned — detected by a
//!    structural fingerprint and confirmed by full equality — and the
//!    requested configurations accumulate into one deduplicated union
//!    per key.
//! 2. **Execute** — [`execute`](SimSession::execute) streams every
//!    pending trace **through the interpreter at most once**, fanning
//!    keys across up to [`jobs`](SimSession::jobs) scoped threads
//!    ([`impact_support::parallel_map`]); each stream drives a single
//!    [`MultiLane`] bank holding the key's config union plus any
//!    attached sinks, while a [`CaptureSink`] tee records the run
//!    stream into a [`RunBuffer`] artifact. Keys that gain demands
//!    *after* their first execution replay the artifact at memcpy
//!    speed instead of re-walking the interpreter (a session-level
//!    byte budget caps artifact memory; over budget, late demands fall
//!    back to re-streaming). Results are stored per key, in
//!    deterministic order — with one job the execution is exactly
//!    today's serial loop.
//! 3. **Serve** — [`stats`](SimSession::stats),
//!    [`instructions`](SimSession::instructions) and
//!    [`take_sink`](SimSession::take_sink) hand results back through the
//!    handles; every duplicate demand is served from the memo.
//!
//! [`SimMetrics`] exposes the observability layer: traces streamed vs.
//! memo-served, instructions simulated, and per-table / per-simulation
//! wall-clock with instructions-per-second rates.

use std::any::Any;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

use impact_cache::{AccessSink, CacheConfig, CacheStats, MultiLane};
use impact_ir::{Program, Terminator};
use impact_layout::Placement;
use impact_profile::ExecLimits;
use impact_store::{Cid, Store, StoreCounters};
use impact_support::json::{Json, ToJson};
use impact_trace::{CaptureSink, RunBuffer, TraceGenerator};

use crate::persist;

/// Default cap on run-buffer artifact memory per session (bytes). Run
/// buffers cost ~16 bytes per straight-line stretch (~10–15 dynamic
/// instructions), so the default holds roughly two billion instructions
/// of unique trace — far beyond a full 16-table `repro` run — while
/// bounding a long-lived service. Tune with
/// [`SimSession::with_artifact_budget`]; a budget of `0` disables
/// capture entirely (every late demand re-streams the interpreter, the
/// pre-artifact behavior).
pub const DEFAULT_ARTIFACT_BUDGET: usize = 256 << 20;

/// Ticket for one [`SimSession::request`]: redeem with
/// [`SimSession::stats`] / [`SimSession::instructions`] after
/// [`SimSession::execute`].
#[derive(Debug, Clone)]
pub struct SimHandle {
    key: usize,
    slots: Vec<usize>,
}

/// Ticket for one [`SimSession::request_sink`]: redeem with
/// [`SimSession::take_sink`] after [`SimSession::execute`].
#[derive(Debug, Clone)]
pub struct SinkHandle {
    key: usize,
    slot: usize,
}

/// Object-safe adapter so heterogeneous sinks (prefetchers, victim
/// caches, paging simulators, ...) can ride one trace stream and be
/// recovered by concrete type afterwards.
trait SessionSink: Send {
    fn access_addr(&mut self, addr: u64);
    fn access_run_addr(&mut self, addr: u64, words: u64);
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<S: AccessSink + Send + 'static> SessionSink for S {
    fn access_addr(&mut self, addr: u64) {
        self.access(addr);
    }

    fn access_run_addr(&mut self, addr: u64, words: u64) {
        self.access_run(addr, words);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Fans one run-batched trace stream across the key's lane bank and its
/// attached sinks, preserving run granularity for both.
struct Fanout<'a> {
    bank: &'a mut MultiLane,
    sinks: &'a mut Vec<Box<dyn SessionSink>>,
}

impl AccessSink for Fanout<'_> {
    fn access(&mut self, addr: u64) {
        self.bank.access(addr);
        for s in self.sinks.iter_mut() {
            s.access_addr(addr);
        }
    }

    fn access_run(&mut self, addr: u64, words: u64) {
        self.bank.access_run(addr, words);
        for s in self.sinks.iter_mut() {
            s.access_run_addr(addr, words);
        }
    }
}

/// One interned evaluation trace: the key identity, the union of
/// requested cache configurations, attached sinks, and (after execution)
/// the per-config statistics.
struct KeyEntry {
    program: Program,
    placement: Placement,
    seed: u64,
    limits: ExecLimits,
    fingerprint: u64,
    /// Persistent 256-bit key (computed only when a store is attached).
    cid: Option<Cid>,
    /// Union of requested configurations, deduplicated, request order.
    configs: Vec<CacheConfig>,
    /// Statistics for `configs[..simulated]`.
    stats: Vec<CacheStats>,
    /// Number of leading configs already simulated.
    simulated: usize,
    /// Attached sinks (`None` once taken back by the requester).
    sinks: Vec<Option<Box<dyn SessionSink>>>,
    /// Number of leading sinks already streamed.
    streamed_sinks: usize,
    /// Trace length, once streamed at least once.
    instructions: Option<u64>,
    /// Captured run-buffer artifact of this key's trace: recorded on
    /// the first (interpreter) execution, replayed for every later
    /// demand. `None` before the first execution, or when storing it
    /// would exceed the session artifact budget.
    artifact: Option<RunBuffer>,
}

impl KeyEntry {
    fn pending(&self) -> bool {
        self.simulated < self.configs.len()
            || self.streamed_sinks < self.sinks.len()
            || self.instructions.is_none()
    }
}

/// How one [`SimRecord`]'s instructions were delivered to the sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// First execution of the key: the CFG interpreter walked the
    /// program (capturing the run-buffer artifact along the way).
    Interpreted,
    /// Later execution of the key: its stored [`RunBuffer`] artifact
    /// was replayed, no interpreter involved.
    Replayed,
    /// Every pending config result was loaded from the attached on-disk
    /// store: no interpreter, no replay, no trace stream at all.
    DiskServed,
}

impl SimMode {
    /// Stable label used in metrics documents.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SimMode::Interpreted => "interpreted",
            SimMode::Replayed => "replayed",
            SimMode::DiskServed => "disk_served",
        }
    }
}

/// One trace delivery performed by [`SimSession::execute`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimRecord {
    /// Key fingerprint (hex), stable within a process run.
    pub fingerprint: String,
    /// Evaluation input seed of the streamed trace.
    pub seed: u64,
    /// Cache configurations simulated during this stream.
    pub configs: u64,
    /// Extra sinks driven during this stream.
    pub sinks: u64,
    /// Instructions streamed.
    pub instructions: u64,
    /// Wall-clock nanoseconds spent streaming.
    pub nanos: u64,
    /// Interpreter walk or artifact replay.
    pub mode: SimMode,
}

impl SimRecord {
    /// Simulated instructions per second of this stream.
    #[must_use]
    pub fn instrs_per_sec(&self) -> f64 {
        per_sec(self.instructions, self.nanos)
    }
}

/// Per-table plan/render timing recorded by the table driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRecord {
    /// Table label (`table1` ... `minprob`).
    pub label: String,
    /// Nanoseconds spent planning (includes per-table pipeline re-runs).
    pub plan_nanos: u64,
    /// Nanoseconds spent assembling rows and rendering text/JSON.
    pub render_nanos: u64,
}

/// Observability snapshot of a [`SimSession`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimMetrics {
    /// Worker-thread cap the session executes with.
    pub jobs: u64,
    /// `request`/`request_sink` calls served.
    pub requests: u64,
    /// Distinct `(program, placement, seed, limits)` keys interned.
    pub unique_traces: u64,
    /// Interpreter trace walks actually performed.
    pub traces_streamed: u64,
    /// Interpreter re-walks of a key that had already been streamed —
    /// the artifact-budget fallback path (0 whenever artifacts are on
    /// and within budget).
    pub restreams: u64,
    /// Artifact replays: late demands served by replaying the key's
    /// stored run buffer instead of re-walking the interpreter.
    pub replays: u64,
    /// Key deliveries answered entirely from the on-disk store: every
    /// pending config result was loaded and verified, no trace stream.
    pub disk_served: u64,
    /// Run-buffer artifacts reloaded from the on-disk store (the key
    /// then replays instead of re-interpreting, even in a new process).
    pub artifacts_loaded: u64,
    /// Requests that hit an already-interned key.
    pub memo_key_hits: u64,
    /// Config results requested across all `request` calls.
    pub configs_requested: u64,
    /// Distinct configs actually simulated (union sizes summed).
    pub configs_simulated: u64,
    /// Config results served from the memo instead of a new simulation.
    pub memo_served: u64,
    /// Total instructions of unique traces (each counted once).
    pub instructions: u64,
    /// Instructions delivered by interpreter walks (first streams and
    /// budget-fallback re-streams).
    pub instructions_interpreted: u64,
    /// Instructions delivered by artifact replays.
    pub instructions_replayed: u64,
    /// Instructions whose re-simulation was avoided entirely because an
    /// already-executed config result was memo-served (trace length ×
    /// memo-served results of executed keys).
    pub instructions_memo_served: u64,
    /// Instructions whose simulation was avoided because the key was
    /// disk-served (trace length recorded with the stored results).
    pub instructions_disk_served: u64,
    /// Nanoseconds spent in interpreter walks (summed over threads).
    pub interp_nanos: u64,
    /// Nanoseconds spent in artifact replays (summed over threads).
    pub replay_nanos: u64,
    /// Nanoseconds spent loading and verifying disk-served results.
    pub disk_nanos: u64,
    /// Run-buffer artifacts currently stored.
    pub artifacts_stored: u64,
    /// Bytes held by stored artifacts (counted against the budget).
    pub artifact_bytes: u64,
    /// Total nanoseconds across streams (summed over threads).
    pub sim_nanos: u64,
    /// Wall-clock nanoseconds inside `execute`.
    pub wall_nanos: u64,
    /// One record per trace stream.
    pub simulations: Vec<SimRecord>,
    /// One record per table run through the session (filled by the
    /// `runner` driver).
    pub tables: Vec<TableRecord>,
    /// Counters of the attached on-disk store (`None` without one).
    pub store: Option<StoreCounters>,
}

impl SimMetrics {
    /// Aggregate delivered instructions per second (interpreted plus
    /// replayed, over total sim time summed across threads).
    #[must_use]
    pub fn instrs_per_sec(&self) -> f64 {
        per_sec(
            self.instructions_interpreted + self.instructions_replayed,
            self.sim_nanos,
        )
    }

    /// Interpreter-walk instructions per second (0.0 when nothing was
    /// interpreted — the division is guarded, never `NaN`/`inf`).
    #[must_use]
    pub fn interpreted_instrs_per_sec(&self) -> f64 {
        per_sec(self.instructions_interpreted, self.interp_nanos)
    }

    /// Artifact-replay instructions per second (0.0 when nothing was
    /// replayed — the division is guarded, never `NaN`/`inf`).
    #[must_use]
    pub fn replayed_instrs_per_sec(&self) -> f64 {
        per_sec(self.instructions_replayed, self.replay_nanos)
    }

    /// Multi-line human summary (the `repro` stderr report).
    #[must_use]
    pub fn render_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sim: {} unique traces, {} streamed ({} re-streams), {} replays, {} disk-served, {} memo key hits",
            self.unique_traces,
            self.traces_streamed,
            self.restreams,
            self.replays,
            self.disk_served,
            self.memo_key_hits
        );
        let _ = writeln!(
            out,
            "sim: {} config results requested, {} simulated, {} memo-served",
            self.configs_requested, self.configs_simulated, self.memo_served
        );
        // Per-mode accounting with guarded rates: a session where
        // everything replays (or is memo-served) must report honest
        // numbers, not a division by a near-zero interpreter time.
        let _ = writeln!(
            out,
            "sim: interpreted {} instrs ({}), replayed {} ({}), memo-served {} (no sim time)",
            self.instructions_interpreted,
            rate_label(self.interpreted_instrs_per_sec()),
            self.instructions_replayed,
            rate_label(self.replayed_instrs_per_sec()),
            self.instructions_memo_served,
        );
        if let Some(store) = &self.store {
            let _ = writeln!(
                out,
                "sim: disk-served {} keys / {} instrs; store {} hits, {} misses, {} puts, {} corrupt, {} KiB read, {} KiB written",
                self.disk_served,
                self.instructions_disk_served,
                store.hits,
                store.misses,
                store.puts,
                store.corrupt,
                store.bytes_read >> 10,
                store.bytes_written >> 10,
            );
        }
        let _ = write!(
            out,
            "sim: {} instructions delivered in {:.2?} sim time ({:.2}M instr/s, {} jobs, {:.2?} wall, {} artifacts / {} KiB)",
            self.instructions_interpreted + self.instructions_replayed,
            std::time::Duration::from_nanos(self.sim_nanos),
            self.instrs_per_sec() / 1e6,
            self.jobs,
            std::time::Duration::from_nanos(self.wall_nanos),
            self.artifacts_stored,
            self.artifact_bytes >> 10,
        );
        out
    }
}

/// `"230.36M instr/s"` — or `"-"` when nothing ran in that mode, so a
/// zero-work mode never renders as a bogus rate.
fn rate_label(rate: f64) -> String {
    if rate == 0.0 {
        "-".to_string()
    } else {
        format!("{:.2}M instr/s", rate / 1e6)
    }
}

fn per_sec(count: u64, nanos: u64) -> f64 {
    if nanos == 0 {
        0.0
    } else {
        count as f64 * 1e9 / nanos as f64
    }
}

impl ToJson for SimRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("fingerprint".into(), self.fingerprint.to_json()),
            ("seed".into(), self.seed.to_json()),
            ("configs".into(), self.configs.to_json()),
            ("sinks".into(), self.sinks.to_json()),
            ("instructions".into(), self.instructions.to_json()),
            ("nanos".into(), self.nanos.to_json()),
            ("instrs_per_sec".into(), self.instrs_per_sec().to_json()),
            ("mode".into(), self.mode.label().to_json()),
        ])
    }
}

impl ToJson for TableRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), self.label.to_json()),
            ("plan_nanos".into(), self.plan_nanos.to_json()),
            ("render_nanos".into(), self.render_nanos.to_json()),
        ])
    }
}

impl ToJson for SimMetrics {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("jobs".into(), self.jobs.to_json()),
            ("requests".into(), self.requests.to_json()),
            ("unique_traces".into(), self.unique_traces.to_json()),
            ("traces_streamed".into(), self.traces_streamed.to_json()),
            ("restreams".into(), self.restreams.to_json()),
            ("replays".into(), self.replays.to_json()),
            ("disk_served".into(), self.disk_served.to_json()),
            ("artifacts_loaded".into(), self.artifacts_loaded.to_json()),
            ("memo_key_hits".into(), self.memo_key_hits.to_json()),
            ("configs_requested".into(), self.configs_requested.to_json()),
            ("configs_simulated".into(), self.configs_simulated.to_json()),
            ("memo_served".into(), self.memo_served.to_json()),
            ("instructions".into(), self.instructions.to_json()),
            (
                "instructions_interpreted".into(),
                self.instructions_interpreted.to_json(),
            ),
            (
                "instructions_replayed".into(),
                self.instructions_replayed.to_json(),
            ),
            (
                "instructions_memo_served".into(),
                self.instructions_memo_served.to_json(),
            ),
            (
                "instructions_disk_served".into(),
                self.instructions_disk_served.to_json(),
            ),
            ("interp_nanos".into(), self.interp_nanos.to_json()),
            ("replay_nanos".into(), self.replay_nanos.to_json()),
            ("disk_nanos".into(), self.disk_nanos.to_json()),
            (
                "interpreted_instrs_per_sec".into(),
                self.interpreted_instrs_per_sec().to_json(),
            ),
            (
                "replayed_instrs_per_sec".into(),
                self.replayed_instrs_per_sec().to_json(),
            ),
            ("artifacts_stored".into(), self.artifacts_stored.to_json()),
            ("artifact_bytes".into(), self.artifact_bytes.to_json()),
            ("sim_nanos".into(), self.sim_nanos.to_json()),
            ("wall_nanos".into(), self.wall_nanos.to_json()),
            ("instrs_per_sec".into(), self.instrs_per_sec().to_json()),
            ("simulations".into(), self.simulations.to_json()),
            ("tables".into(), self.tables.to_json()),
        ];
        if let Some(store) = &self.store {
            // Spliced flat so dashboards can grep `store_*` directly.
            if let Json::Obj(store_fields) = store.to_json() {
                fields.extend(store_fields);
            }
        }
        Json::Obj(fields)
    }
}

/// The shared, parallel, memoizing evaluation engine. See the module
/// docs for the plan / execute / serve lifecycle.
pub struct SimSession {
    jobs: usize,
    keys: Vec<KeyEntry>,
    /// Fingerprint → candidate key indices (equality-confirmed on use).
    by_fp: HashMap<u64, Vec<usize>>,
    requests: u64,
    memo_key_hits: u64,
    configs_requested: u64,
    memo_served: u64,
    traces_streamed: u64,
    restreams: u64,
    replays: u64,
    disk_served: u64,
    artifacts_loaded: u64,
    instructions: u64,
    instructions_interpreted: u64,
    instructions_replayed: u64,
    instructions_memo_served: u64,
    instructions_disk_served: u64,
    interp_nanos: u64,
    replay_nanos: u64,
    disk_nanos: u64,
    sim_nanos: u64,
    wall_nanos: u64,
    /// Bytes currently held by stored artifacts.
    artifact_bytes: usize,
    /// Cap on artifact memory; 0 disables capture.
    artifact_budget: usize,
    /// Attached persistent store: finished results and captured
    /// artifacts are written through, pending demands are answered from
    /// it before any trace streams.
    store: Option<Arc<Store>>,
    simulations: Vec<SimRecord>,
    tables: Vec<TableRecord>,
}

impl std::fmt::Debug for SimSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSession")
            .field("jobs", &self.jobs)
            .field("keys", &self.keys.len())
            .field("requests", &self.requests)
            .field("traces_streamed", &self.traces_streamed)
            .finish_non_exhaustive()
    }
}

impl Default for SimSession {
    fn default() -> Self {
        Self::new()
    }
}

impl SimSession {
    /// A serial session (one worker thread).
    #[must_use]
    pub fn new() -> Self {
        Self::with_jobs(1)
    }

    /// A session that executes with up to `jobs` worker threads
    /// (clamped to at least 1).
    #[must_use]
    pub fn with_jobs(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            keys: Vec::new(),
            by_fp: HashMap::new(),
            requests: 0,
            memo_key_hits: 0,
            configs_requested: 0,
            memo_served: 0,
            traces_streamed: 0,
            restreams: 0,
            replays: 0,
            disk_served: 0,
            artifacts_loaded: 0,
            instructions: 0,
            instructions_interpreted: 0,
            instructions_replayed: 0,
            instructions_memo_served: 0,
            instructions_disk_served: 0,
            interp_nanos: 0,
            replay_nanos: 0,
            disk_nanos: 0,
            sim_nanos: 0,
            wall_nanos: 0,
            artifact_bytes: 0,
            artifact_budget: DEFAULT_ARTIFACT_BUDGET,
            store: None,
            simulations: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Replaces the run-buffer artifact budget (bytes). `0` disables
    /// artifact capture: every late demand re-streams the interpreter,
    /// which is the pre-artifact behavior (and the baseline arm of the
    /// replay benchmarks).
    #[must_use]
    pub fn with_artifact_budget(mut self, bytes: usize) -> Self {
        self.artifact_budget = bytes;
        self
    }

    /// Attaches a persistent content-addressed store. Pending demands
    /// are answered from it before any trace streams (counted as
    /// [`SimMetrics::disk_served`]), stored artifacts replay in place of
    /// re-interpretation even in a fresh process, and every finished
    /// result and captured artifact is written through — so a session in
    /// a new process starts warm wherever this one (or any other sharing
    /// the directory) left off.
    #[must_use]
    pub fn with_store(mut self, store: Arc<Store>) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached persistent store, if any.
    #[must_use]
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// The worker-thread cap used by [`SimSession::execute`] (and
    /// available to plan phases that parallelize their own preparation).
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Registers a demand for the statistics of `configs` over the
    /// evaluation trace of `(program, placement)` under `seed` and
    /// `limits`.
    ///
    /// Identical keys share one trace stream; identical configs within a
    /// key share one simulated cache. The returned handle redeems the
    /// statistics in the requested config order after
    /// [`SimSession::execute`].
    pub fn request(
        &mut self,
        program: &Program,
        placement: &Placement,
        seed: u64,
        limits: ExecLimits,
        configs: &[CacheConfig],
    ) -> SimHandle {
        let key = self.intern(program, placement, seed, limits);
        self.requests += 1;
        self.configs_requested += configs.len() as u64;
        let entry = &mut self.keys[key];
        let mut memo = 0u64;
        let mut memo_instrs = 0u64;
        let slots = configs
            .iter()
            .map(|c| {
                if let Some(i) = entry.configs.iter().position(|e| e == c) {
                    memo += 1;
                    if i < entry.simulated {
                        // The result already exists: an entire
                        // simulation pass over the trace was avoided.
                        // (Duplicates that are merely *planned* dedups —
                        // the key not yet executed — have no known trace
                        // length yet and count only in `memo_served`.)
                        memo_instrs += entry.instructions.unwrap_or(0);
                    }
                    i
                } else {
                    entry.configs.push(*c);
                    entry.configs.len() - 1
                }
            })
            .collect();
        self.memo_served += memo;
        self.instructions_memo_served += memo_instrs;
        SimHandle { key, slots }
    }

    /// Attaches a custom [`AccessSink`] to the key's trace stream; the
    /// sink observes every fetch address exactly once and is recovered
    /// with [`SimSession::take_sink`] after execution.
    pub fn request_sink<S: AccessSink + Send + 'static>(
        &mut self,
        program: &Program,
        placement: &Placement,
        seed: u64,
        limits: ExecLimits,
        sink: S,
    ) -> SinkHandle {
        let key = self.intern(program, placement, seed, limits);
        self.requests += 1;
        let entry = &mut self.keys[key];
        entry.sinks.push(Some(Box::new(sink)));
        SinkHandle {
            key,
            slot: entry.sinks.len() - 1,
        }
    }

    /// Interns the key, returning its index.
    fn intern(
        &mut self,
        program: &Program,
        placement: &Placement,
        seed: u64,
        limits: ExecLimits,
    ) -> usize {
        let fp = fingerprint(program, placement, seed, limits);
        if let Some(candidates) = self.by_fp.get(&fp) {
            for &i in candidates {
                let k = &self.keys[i];
                // The fingerprint is an accelerator; full equality is
                // what guarantees distinct placements get distinct keys.
                if k.seed == seed
                    && k.limits == limits
                    && k.placement == *placement
                    && k.program == *program
                {
                    self.memo_key_hits += 1;
                    return i;
                }
            }
        }
        let i = self.keys.len();
        // The persistent key costs a SHA-256 over the program structure;
        // only paid once per interned key, and only when a store exists.
        let cid = self
            .store
            .is_some()
            .then(|| persist::trace_key(program, placement, seed, limits));
        self.keys.push(KeyEntry {
            program: program.clone(),
            placement: placement.clone(),
            seed,
            limits,
            fingerprint: fp,
            cid,
            configs: Vec::new(),
            stats: Vec::new(),
            simulated: 0,
            sinks: Vec::new(),
            streamed_sinks: 0,
            instructions: None,
            artifact: None,
        });
        self.by_fp.entry(fp).or_default().push(i);
        i
    }

    /// Delivers every pending trace exactly once, fanning keys across
    /// up to [`SimSession::jobs`] scoped threads. Results land in
    /// deterministic (insertion) order regardless of thread scheduling;
    /// with one job this is a plain serial loop.
    ///
    /// A key's **first** execution walks the CFG interpreter, capturing
    /// the run stream into a [`RunBuffer`] artifact while it drives the
    /// lane bank. Keys that gained configs or sinks *after* already
    /// being executed **replay** their artifact (counted as
    /// [`SimMetrics::replays`]) — bit-identical to a re-walk, at memcpy
    /// speed. Only when the artifact budget kept a buffer from being
    /// stored does a late demand re-walk the interpreter (counted as
    /// [`SimMetrics::restreams`]).
    pub fn execute(&mut self) {
        // One pending key's mutable pieces: index, a fresh lane bank
        // over its not-yet-simulated configs, its not-yet-streamed
        // sinks, and whether a capture should be recorded.
        type PendingWork = (usize, MultiLane, Vec<Box<dyn SessionSink>>, bool);

        let wall = Instant::now();
        // Phase 1: pull the mutable pieces (fresh banks, pending sinks)
        // out of each pending key. With a store attached, each pending
        // key first tries the disk: a key whose every pending config
        // result is already stored is answered without any trace stream,
        // and a key that must stream anyway reloads its persisted
        // artifact so the stream is a replay instead of an interpreter
        // walk — even in a process that never executed the key.
        let mut taken: Vec<PendingWork> = Vec::new();
        for (i, k) in self.keys.iter_mut().enumerate() {
            if !k.pending() {
                continue;
            }
            if let Some(store) = &self.store {
                let t0 = Instant::now();
                if let Some(served) = disk_serve(store, k) {
                    let nanos = t0.elapsed().as_nanos() as u64;
                    self.disk_served += 1;
                    self.instructions_disk_served += served.instructions;
                    self.disk_nanos += nanos;
                    if served.first_delivery {
                        self.instructions += served.instructions;
                    }
                    self.simulations.push(SimRecord {
                        fingerprint: format!("{:016x}", k.fingerprint),
                        seed: k.seed,
                        configs: served.configs,
                        sinks: 0,
                        instructions: served.instructions,
                        nanos,
                        mode: SimMode::DiskServed,
                    });
                    continue;
                }
                if k.artifact.is_none() && self.artifact_bytes < self.artifact_budget {
                    if let Some(cid) = &k.cid {
                        let loaded = store
                            .get(&persist::artifact_cid(cid))
                            .and_then(|payload| persist::decode_artifact(&payload));
                        if let Some(buf) = loaded {
                            let bytes = buf.bytes();
                            if self.artifact_bytes + bytes <= self.artifact_budget {
                                self.artifact_bytes += bytes;
                                self.artifacts_loaded += 1;
                                k.artifact = Some(buf);
                            }
                        }
                    }
                }
            }
            let bank = MultiLane::new(k.configs[k.simulated..].iter().copied());
            let sinks: Vec<Box<dyn SessionSink>> = k.sinks[k.streamed_sinks..]
                .iter_mut()
                .map(|s| s.take().expect("pending sinks cannot have been taken"))
                .collect();
            // Capture unless this key already holds an artifact or the
            // budget is exhausted (the precise size check happens at
            // filing time; this avoids recording buffers that could
            // never be stored).
            let capture = k.artifact.is_none() && self.artifact_bytes < self.artifact_budget;
            taken.push((i, bank, sinks, capture));
        }
        if taken.is_empty() {
            return;
        }

        // Phase 2: deliver each pending key's trace once, in parallel —
        // replaying its stored artifact when one exists, walking the
        // interpreter (under a capture tee) otherwise. Work items carry
        // shared references to their key's program/placement/artifact so
        // the closure never touches the (non-`Sync`) sink storage.
        let work: Vec<_> = taken
            .into_iter()
            .map(|(i, bank, sinks, capture)| {
                let k = &self.keys[i];
                let gen_inputs = (&k.program, &k.placement, k.seed, k.limits);
                (i, gen_inputs, k.artifact.as_ref(), bank, sinks, capture)
            })
            .collect();
        let results = impact_support::parallel_map(
            self.jobs,
            work,
            |(i, (program, placement, seed, limits), artifact, mut bank, mut sinks, capture)| {
                let t0 = Instant::now();
                let mut fan = Fanout {
                    bank: &mut bank,
                    sinks: &mut sinks,
                };
                let (instructions, captured, mode) = match artifact {
                    Some(buf) => {
                        buf.replay(&mut fan);
                        (buf.instructions(), None, SimMode::Replayed)
                    }
                    None if capture => {
                        let gen = TraceGenerator::new(program, placement).with_limits(limits);
                        let mut buf = RunBuffer::new();
                        let summary = gen.stream(seed, &mut CaptureSink::new(&mut buf, &mut fan));
                        buf.shrink_to_fit();
                        (summary.instructions, Some(buf), SimMode::Interpreted)
                    }
                    None => {
                        let gen = TraceGenerator::new(program, placement).with_limits(limits);
                        let summary = gen.stream(seed, &mut fan);
                        (summary.instructions, None, SimMode::Interpreted)
                    }
                };
                let nanos = t0.elapsed().as_nanos() as u64;
                (i, bank, sinks, instructions, nanos, captured, mode)
            },
        );

        // Phase 3: file results back, serially, in key order.
        let store = self.store.clone();
        for (i, mut bank, sinks, instructions, nanos, captured, mode) in results {
            let k = &mut self.keys[i];
            match mode {
                SimMode::Interpreted => {
                    self.traces_streamed += 1;
                    self.instructions_interpreted += instructions;
                    self.interp_nanos += nanos;
                    if k.instructions.is_some() {
                        self.restreams += 1;
                    } else {
                        self.instructions += instructions;
                    }
                }
                SimMode::Replayed => {
                    self.replays += 1;
                    self.instructions_replayed += instructions;
                    self.replay_nanos += nanos;
                    // With a persistent store, a key's *first* delivery
                    // can be a replay (artifact reloaded from disk).
                    if k.instructions.is_none() {
                        self.instructions += instructions;
                    }
                }
                SimMode::DiskServed => unreachable!("disk-served keys never stream"),
            }
            self.sim_nanos += nanos;
            self.simulations.push(SimRecord {
                fingerprint: format!("{:016x}", k.fingerprint),
                seed: k.seed,
                configs: (k.configs.len() - k.simulated) as u64,
                sinks: sinks.len() as u64,
                instructions,
                nanos,
                mode,
            });
            if let Some(buf) = captured {
                let bytes = buf.bytes();
                if self.artifact_bytes + bytes <= self.artifact_budget {
                    self.artifact_bytes += bytes;
                    k.artifact = Some(buf);
                }
            }
            let first_new = k.simulated;
            k.stats.extend(bank.take_stats());
            k.simulated = k.configs.len();
            for (slot, sink) in k.sinks[k.streamed_sinks..].iter_mut().zip(sinks) {
                *slot = Some(sink);
            }
            k.streamed_sinks = k.sinks.len();
            k.instructions = Some(instructions);
            // Write-through: persist this round's finished results and
            // the key's artifact. Best-effort — a full or read-only
            // store disk degrades to cold behavior, never to an error.
            if let (Some(store), Some(cid)) = (&store, &k.cid) {
                for (config, stats) in k.configs[first_new..].iter().zip(&k.stats[first_new..]) {
                    let _ = store.put(
                        &persist::result_cid(cid, config),
                        &persist::encode_result(stats, instructions),
                    );
                }
                if let Some(buf) = &k.artifact {
                    let acid = persist::artifact_cid(cid);
                    if !store.contains(&acid) {
                        let _ = store.put(&acid, &persist::encode_artifact(buf));
                    }
                }
            }
        }
        self.wall_nanos += wall.elapsed().as_nanos() as u64;
    }

    /// Statistics for a request, in its requested config order.
    ///
    /// # Panics
    ///
    /// Panics if the handle's key has not been executed yet.
    #[must_use]
    pub fn stats(&self, handle: &SimHandle) -> Vec<CacheStats> {
        let k = &self.keys[handle.key];
        handle
            .slots
            .iter()
            .map(|&s| {
                assert!(s < k.simulated, "call execute() before reading stats");
                k.stats[s]
            })
            .collect()
    }

    /// Trace length (instructions streamed) of a request's key.
    ///
    /// # Panics
    ///
    /// Panics if the handle's key has not been executed yet.
    #[must_use]
    pub fn instructions(&self, handle: &SimHandle) -> u64 {
        self.keys[handle.key]
            .instructions
            .expect("call execute() before reading the trace length")
    }

    /// [`SimSession::stats`] and [`SimSession::instructions`] in one
    /// call — the session counterpart of `sim::simulate_counted`.
    #[must_use]
    pub fn counted(&self, handle: &SimHandle) -> (Vec<CacheStats>, u64) {
        (self.stats(handle), self.instructions(handle))
    }

    /// Recovers a sink attached with [`SimSession::request_sink`], after
    /// its trace has been streamed.
    ///
    /// # Panics
    ///
    /// Panics if the sink has not been streamed yet, was already taken,
    /// or `S` is not its concrete type.
    #[must_use]
    pub fn take_sink<S: AccessSink + Send + 'static>(&mut self, handle: &SinkHandle) -> S {
        let k = &mut self.keys[handle.key];
        assert!(
            handle.slot < k.streamed_sinks,
            "call execute() before taking a sink"
        );
        let sink = k.sinks[handle.slot].take().expect("sink was already taken");
        *sink
            .into_any()
            .downcast::<S>()
            .expect("take_sink called with the wrong concrete type")
    }

    /// Records one table's plan/render timing (the `runner` driver calls
    /// this; it feeds the per-table metrics).
    pub fn record_table(&mut self, label: &str, plan_nanos: u64, render_nanos: u64) {
        self.tables.push(TableRecord {
            label: label.to_owned(),
            plan_nanos,
            render_nanos,
        });
    }

    /// Snapshot of the session's observability counters.
    #[must_use]
    pub fn metrics(&self) -> SimMetrics {
        SimMetrics {
            jobs: self.jobs as u64,
            requests: self.requests,
            unique_traces: self.keys.len() as u64,
            traces_streamed: self.traces_streamed,
            restreams: self.restreams,
            replays: self.replays,
            memo_key_hits: self.memo_key_hits,
            configs_requested: self.configs_requested,
            configs_simulated: self.keys.iter().map(|k| k.simulated as u64).sum(),
            memo_served: self.memo_served,
            instructions: self.instructions,
            instructions_interpreted: self.instructions_interpreted,
            instructions_replayed: self.instructions_replayed,
            instructions_memo_served: self.instructions_memo_served,
            sim_nanos: self.sim_nanos,
            interp_nanos: self.interp_nanos,
            replay_nanos: self.replay_nanos,
            wall_nanos: self.wall_nanos,
            artifacts_stored: self.keys.iter().filter(|k| k.artifact.is_some()).count() as u64,
            artifact_bytes: self.artifact_bytes as u64,
            disk_served: self.disk_served,
            artifacts_loaded: self.artifacts_loaded,
            instructions_disk_served: self.instructions_disk_served,
            disk_nanos: self.disk_nanos,
            store: self.store.as_ref().map(|s| s.counters()),
            simulations: self.simulations.clone(),
            tables: self.tables.clone(),
        }
    }
}

/// What a successful disk serve delivered.
struct DiskServe {
    /// Config results filled from the store this round.
    configs: u64,
    /// The key's trace length, as recorded with the stored results.
    instructions: u64,
    /// Whether this was the key's first delivery (its trace length was
    /// unknown before — the "unique instructions" accounting trigger).
    first_delivery: bool,
}

/// Attempts to answer every pending demand of `k` from the store,
/// filling its stats in place. Succeeds only when *all* pending configs
/// decode from verified entries and no sink is pending (sinks observe
/// the raw stream, which the result entries do not carry). On any miss
/// the key is left untouched and streams normally.
fn disk_serve(store: &Store, k: &mut KeyEntry) -> Option<DiskServe> {
    if k.streamed_sinks < k.sinks.len() {
        return None;
    }
    let cid = k.cid.as_ref()?;
    let pending = &k.configs[k.simulated..];
    if pending.is_empty() {
        // Pending only for its trace length (an empty-config request in
        // a fresh process): the artifact-reload path handles it.
        return None;
    }
    let first_delivery = k.instructions.is_none();
    let mut instructions = k.instructions;
    let mut loaded = Vec::with_capacity(pending.len());
    for config in pending {
        let payload = store.get(&persist::result_cid(cid, config))?;
        let (stats, instrs) = persist::decode_result(&payload)?;
        // Every result of one trace must agree on the trace length; a
        // disagreement means a foreign or stale entry — don't serve it.
        if *instructions.get_or_insert(instrs) != instrs {
            return None;
        }
        loaded.push(stats);
    }
    let configs = loaded.len() as u64;
    k.stats.extend(loaded);
    k.simulated = k.configs.len();
    k.instructions = instructions;
    Some(DiskServe {
        configs,
        instructions: instructions.expect("at least one result decoded"),
        first_delivery,
    })
}

/// A [`SimSession`] behind interior locking, shareable across threads.
///
/// The table runners own their session and drive the plan / execute /
/// serve phases explicitly; a long-lived service (`impact serve`) instead
/// wants one engine that many request-handler threads hit concurrently.
/// `SharedSimSession` wraps the session in a [`Mutex`](std::sync::Mutex)
/// and exposes the one-shot [`evaluate`](SharedSimSession::evaluate)
/// cycle: request → execute → serve under a single lock hold.
///
/// Memoization carries across calls — and across threads — because every
/// evaluation is interned in the same underlying session: a repeated
/// `(program, placement, seed, limits, config)` demand is served from the
/// memo without re-streaming its trace ([`SimSession::execute`] returns
/// immediately when nothing is pending). Holding the lock for the whole
/// cycle serializes trace streaming, which is deliberate: the engine's
/// own worker fan-out ([`SimSession::with_jobs`]) parallelizes *inside*
/// an evaluation, and callers above it (HTTP workers) parallelize
/// parsing, placement, and rendering outside the lock.
pub struct SharedSimSession {
    inner: std::sync::Mutex<SimSession>,
}

impl std::fmt::Debug for SharedSimSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSimSession").finish_non_exhaustive()
    }
}

impl SharedSimSession {
    /// Wraps a fresh session that executes with up to `jobs` workers.
    #[must_use]
    pub fn with_jobs(jobs: usize) -> Self {
        Self::from_session(SimSession::with_jobs(jobs))
    }

    /// Wraps an already-configured session (artifact budget, persistent
    /// store, ...) — the constructor `impact serve` uses.
    #[must_use]
    pub fn from_session(session: SimSession) -> Self {
        Self {
            inner: std::sync::Mutex::new(session),
        }
    }

    /// Statistics for `configs` over the evaluation trace of
    /// `(program, placement)` under `seed` and `limits`, plus the trace
    /// length — the locked counterpart of `sim::simulate_counted`,
    /// memo-served whenever this session has already streamed the key.
    #[must_use]
    pub fn evaluate(
        &self,
        program: &Program,
        placement: &Placement,
        seed: u64,
        limits: ExecLimits,
        configs: &[CacheConfig],
    ) -> (Vec<CacheStats>, u64) {
        let mut s = self.lock();
        let handle = s.request(program, placement, seed, limits, configs);
        s.execute();
        s.counted(&handle)
    }

    /// Snapshot of the underlying session's observability counters.
    #[must_use]
    pub fn metrics(&self) -> SimMetrics {
        self.lock().metrics()
    }

    /// Runs `f` with the locked session (for callers that need the full
    /// plan / execute / serve API, e.g. to attach sinks).
    pub fn with_session<R>(&self, f: impl FnOnce(&mut SimSession) -> R) -> R {
        f(&mut self.lock())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SimSession> {
        // A panic while streaming poisons the lock; the session's own
        // state stays coherent (results are filed serially after the
        // parallel phase), so recover rather than wedging the service.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Structural fingerprint of an evaluation-trace key.
///
/// Covers everything the trace depends on: program shape (block sizes,
/// terminators, branch biases), the placement's byte addresses, the
/// input seed, and the execution limits. Freshly constructed placements
/// (code scaling, `MIN_PROB` sweeps, ablation ladders) therefore get
/// distinct fingerprints unless they are genuinely identical — and key
/// identity is always confirmed by full structural equality, so a hash
/// collision can never alias two different traces.
#[must_use]
pub fn fingerprint(program: &Program, placement: &Placement, seed: u64, limits: ExecLimits) -> u64 {
    // DefaultHasher::new() uses fixed keys: deterministic per process.
    let mut h = DefaultHasher::new();
    program.function_count().hash(&mut h);
    program.entry().index().hash(&mut h);
    for (fid, func) in program.functions() {
        func.name().hash(&mut h);
        func.entry().index().hash(&mut h);
        func.block_count().hash(&mut h);
        for (bid, block) in func.blocks() {
            block.instr_count().hash(&mut h);
            hash_terminator(block.terminator(), &mut h);
            placement.try_addr(fid, bid).hash(&mut h);
        }
    }
    placement.effective_bytes().hash(&mut h);
    placement.total_bytes().hash(&mut h);
    seed.hash(&mut h);
    limits.hash(&mut h);
    h.finish()
}

fn hash_terminator(t: &Terminator, h: &mut impl Hasher) {
    match t {
        Terminator::Jump { target } => {
            0u8.hash(h);
            target.index().hash(h);
        }
        Terminator::Branch {
            taken,
            not_taken,
            bias,
        } => {
            1u8.hash(h);
            taken.index().hash(h);
            not_taken.index().hash(h);
            bias.base.to_bits().hash(h);
            bias.input_spread.to_bits().hash(h);
        }
        Terminator::Switch { targets } => {
            2u8.hash(h);
            for (b, w) in targets {
                b.index().hash(h);
                w.hash(h);
            }
        }
        Terminator::Call { callee, ret_to } => {
            3u8.hash(h);
            callee.index().hash(h);
            ret_to.index().hash(h);
        }
        Terminator::Return => 4u8.hash(h),
        Terminator::Exit => 5u8.hash(h),
    }
}

#[cfg(test)]
mod tests {
    use impact_cache::Cache;
    use impact_layout::baseline;

    use crate::sim;

    use super::*;

    const LIMITS: ExecLimits = ExecLimits {
        max_instructions: 40_000,
        max_call_depth: 512,
    };

    #[test]
    fn session_matches_direct_simulation() {
        let w = impact_workloads::by_name("wc").unwrap();
        let placement = baseline::natural(&w.program);
        let configs = [
            CacheConfig::direct_mapped(512, 64),
            CacheConfig::direct_mapped(2048, 64),
        ];
        let direct = sim::simulate(&w.program, &placement, 17, LIMITS, &configs);

        let mut s = SimSession::new();
        let h = s.request(&w.program, &placement, 17, LIMITS, &configs);
        s.execute();
        assert_eq!(s.stats(&h), direct);
    }

    #[test]
    fn identical_keys_stream_once_and_union_configs() {
        let w = impact_workloads::by_name("cmp").unwrap();
        let placement = baseline::natural(&w.program);
        let a = [
            CacheConfig::direct_mapped(2048, 64),
            CacheConfig::direct_mapped(512, 64),
        ];
        let b = [
            CacheConfig::direct_mapped(512, 64), // shared with `a`
            CacheConfig::direct_mapped(1024, 64),
        ];
        let mut s = SimSession::new();
        let ha = s.request(&w.program, &placement, 3, LIMITS, &a);
        let hb = s.request(&w.program, &placement, 3, LIMITS, &b);
        s.execute();
        let m = s.metrics();
        assert_eq!(m.unique_traces, 1);
        assert_eq!(m.traces_streamed, 1);
        assert_eq!(m.restreams, 0);
        assert_eq!(m.memo_key_hits, 1);
        assert_eq!(m.configs_requested, 4);
        assert_eq!(m.configs_simulated, 3, "512B config is shared");
        assert_eq!(m.memo_served, 1);
        // Both handles see their own config order.
        assert_eq!(s.stats(&ha)[1], s.stats(&hb)[0]);
        assert_eq!(
            s.stats(&hb),
            sim::simulate(&w.program, &placement, 3, LIMITS, &b)
        );
    }

    #[test]
    fn distinct_placements_and_seeds_get_distinct_keys() {
        let w = impact_workloads::by_name("cmp").unwrap();
        let natural = baseline::natural(&w.program);
        let shuffled = baseline::random(&w.program, 0xfeed);
        let cfg = [CacheConfig::direct_mapped(2048, 64)];
        let mut s = SimSession::new();
        let h1 = s.request(&w.program, &natural, 3, LIMITS, &cfg);
        let h2 = s.request(&w.program, &shuffled, 3, LIMITS, &cfg);
        let h3 = s.request(&w.program, &natural, 4, LIMITS, &cfg);
        s.execute();
        assert_eq!(s.metrics().unique_traces, 3);
        assert_eq!(s.metrics().traces_streamed, 3);
        // Same program + seed ⇒ same trace length even across layouts.
        assert_eq!(s.instructions(&h1), s.instructions(&h2));
        let _ = s.stats(&h3);
    }

    #[test]
    fn parallel_execution_is_deterministic() {
        let w = impact_workloads::by_name("wc").unwrap();
        let cfg = [CacheConfig::direct_mapped(1024, 64)];
        let run = |jobs: usize| {
            let mut s = SimSession::with_jobs(jobs);
            let handles: Vec<SimHandle> = (0..6)
                .map(|k| {
                    let placement = baseline::random(&w.program, k);
                    s.request(&w.program, &placement, 11, LIMITS, &cfg)
                })
                .collect();
            s.execute();
            handles.iter().map(|h| s.counted(h)).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn sinks_ride_the_same_stream_and_come_back() {
        let w = impact_workloads::by_name("wc").unwrap();
        let placement = baseline::natural(&w.program);
        let cfg = CacheConfig::direct_mapped(2048, 64);
        let mut s = SimSession::new();
        let h = s.request(&w.program, &placement, 5, LIMITS, &[cfg]);
        let sink = s.request_sink(&w.program, &placement, 5, LIMITS, Cache::new(cfg));
        s.execute();
        assert_eq!(s.metrics().traces_streamed, 1, "sink shares the stream");
        let cache: Cache = s.take_sink(&sink);
        assert_eq!(cache.stats(), s.stats(&h)[0]);
    }

    #[test]
    fn empty_config_request_still_counts_instructions() {
        let w = impact_workloads::by_name("cmp").unwrap();
        let placement = baseline::natural(&w.program);
        let mut s = SimSession::new();
        let h = s.request(&w.program, &placement, 9, LIMITS, &[]);
        s.execute();
        let (_, direct_len) = sim::simulate_counted(&w.program, &placement, 9, LIMITS, &[]);
        assert_eq!(s.instructions(&h), direct_len);
        assert!(s.stats(&h).is_empty());
    }

    #[test]
    fn late_demands_replay_the_stored_artifact() {
        let w = impact_workloads::by_name("cmp").unwrap();
        let placement = baseline::natural(&w.program);
        let c1 = [CacheConfig::direct_mapped(2048, 64)];
        let c2 = [CacheConfig::direct_mapped(512, 64)];
        let mut s = SimSession::new();
        let h1 = s.request(&w.program, &placement, 2, LIMITS, &c1);
        s.execute();
        let h2 = s.request(&w.program, &placement, 2, LIMITS, &c2);
        s.execute();
        let m = s.metrics();
        // The first execute interprets (and captures); the late demand
        // replays the artifact instead of re-walking the interpreter.
        assert_eq!(m.traces_streamed, 1);
        assert_eq!(m.replays, 1);
        assert_eq!(m.restreams, 0);
        assert_eq!(m.artifacts_stored, 1);
        assert!(m.artifact_bytes > 0);
        assert_eq!(m.instructions_interpreted, m.instructions);
        assert_eq!(m.instructions_replayed, m.instructions);
        // Replayed results are bit-identical to direct simulation.
        assert_eq!(
            s.stats(&h1),
            sim::simulate(&w.program, &placement, 2, LIMITS, &c1)
        );
        assert_eq!(
            s.stats(&h2),
            sim::simulate(&w.program, &placement, 2, LIMITS, &c2)
        );
    }

    #[test]
    fn zero_artifact_budget_falls_back_to_restreaming() {
        let w = impact_workloads::by_name("cmp").unwrap();
        let placement = baseline::natural(&w.program);
        let c1 = [CacheConfig::direct_mapped(2048, 64)];
        let c2 = [CacheConfig::direct_mapped(512, 64)];
        let mut s = SimSession::new().with_artifact_budget(0);
        let h1 = s.request(&w.program, &placement, 2, LIMITS, &c1);
        s.execute();
        let h2 = s.request(&w.program, &placement, 2, LIMITS, &c2);
        s.execute();
        let m = s.metrics();
        // No capture possible, so the late demand re-walks: the pre-
        // artifact behavior, kept as the budget-exhausted fallback.
        assert_eq!(m.traces_streamed, 2);
        assert_eq!(m.restreams, 1);
        assert_eq!(m.replays, 0);
        assert_eq!(m.artifacts_stored, 0);
        assert_eq!(m.artifact_bytes, 0);
        assert_eq!(
            s.stats(&h1),
            sim::simulate(&w.program, &placement, 2, LIMITS, &c1)
        );
        assert_eq!(
            s.stats(&h2),
            sim::simulate(&w.program, &placement, 2, LIMITS, &c2)
        );
    }

    #[test]
    fn memo_served_instructions_are_accounted() {
        let w = impact_workloads::by_name("cmp").unwrap();
        let placement = baseline::natural(&w.program);
        let cfg = [CacheConfig::direct_mapped(2048, 64)];
        let mut s = SimSession::new();
        let _ = s.request(&w.program, &placement, 2, LIMITS, &cfg);
        s.execute();
        // Same key, same config: served from the memo, no simulation.
        let _ = s.request(&w.program, &placement, 2, LIMITS, &cfg);
        s.execute();
        let m = s.metrics();
        assert_eq!(m.traces_streamed, 1);
        assert_eq!(m.replays, 0, "fully memo-served demands do not replay");
        assert_eq!(m.instructions_memo_served, m.instructions);
        assert_eq!(m.instructions_replayed, 0);
    }

    #[test]
    fn fingerprints_separate_scaled_programs() {
        let w = impact_workloads::by_name("wc").unwrap();
        let scaled = impact_layout::scale::scale_code(&w.program, 0.5);
        let p1 = baseline::natural(&w.program);
        let p2 = baseline::natural(&scaled);
        assert_ne!(
            fingerprint(&w.program, &p1, 1, LIMITS),
            fingerprint(&scaled, &p2, 1, LIMITS)
        );
        assert_ne!(
            fingerprint(&w.program, &p1, 1, LIMITS),
            fingerprint(&w.program, &p1, 2, LIMITS)
        );
    }

    #[test]
    fn shared_session_memoizes_across_threads() {
        let w = impact_workloads::by_name("cmp").unwrap();
        let placement = baseline::natural(&w.program);
        let cfg = [CacheConfig::direct_mapped(2048, 64)];
        let direct = sim::simulate_counted(&w.program, &placement, 7, LIMITS, &cfg);

        let shared = SharedSimSession::with_jobs(1);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..3 {
                        let got = shared.evaluate(&w.program, &placement, 7, LIMITS, &cfg);
                        assert_eq!(got, direct);
                    }
                });
            }
        });
        let m = shared.metrics();
        assert_eq!(m.traces_streamed, 1, "11 of 12 evaluations memo-served");
        assert_eq!(m.unique_traces, 1);
        assert_eq!(m.requests, 12);
        assert_eq!(m.memo_served, 11);
    }

    /// A unique store directory removed on drop.
    struct TempStore(std::path::PathBuf);

    impl TempStore {
        fn new(tag: &str) -> TempStore {
            let dir =
                std::env::temp_dir().join(format!("impact-session-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempStore(dir)
        }

        fn open(&self) -> Arc<Store> {
            Arc::new(Store::open(&self.0).expect("open store"))
        }
    }

    impl Drop for TempStore {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// A second session over the same store directory — a fresh process,
    /// as far as the session can tell — answers repeated demands from
    /// disk without streaming, bit-identically.
    #[test]
    fn second_session_is_disk_served() {
        let w = impact_workloads::by_name("cmp").unwrap();
        let placement = baseline::natural(&w.program);
        let configs = [
            CacheConfig::direct_mapped(2048, 64),
            CacheConfig::direct_mapped(512, 64),
        ];
        let tmp = TempStore::new("warm");
        let (cold, cold_len) = {
            let mut s = SimSession::new().with_store(tmp.open());
            let h = s.request(&w.program, &placement, 21, LIMITS, &configs);
            s.execute();
            let m = s.metrics();
            assert_eq!(m.traces_streamed, 1, "cold run interprets");
            assert_eq!(m.disk_served, 0);
            let store = m.store.expect("store counters present");
            assert!(store.puts >= 3, "2 results + 1 artifact persisted");
            s.counted(&h)
        };
        let mut s = SimSession::new().with_store(tmp.open());
        let h = s.request(&w.program, &placement, 21, LIMITS, &configs);
        s.execute();
        assert_eq!(s.counted(&h), (cold.clone(), cold_len), "bit-identical");
        let m = s.metrics();
        assert_eq!(m.traces_streamed, 0, "warm run never streams");
        assert_eq!(m.disk_served, 1);
        assert_eq!(m.instructions_disk_served, cold_len);
        assert_eq!(m.instructions, cold_len, "unique instructions counted");
        assert_eq!(m.simulations[0].mode, SimMode::DiskServed);
        assert!(m.store.expect("counters").hits >= 2);
    }

    /// A new config over a known trace in a fresh session replays the
    /// *persisted* artifact instead of re-interpreting.
    #[test]
    fn fresh_session_replays_persisted_artifact() {
        let w = impact_workloads::by_name("cmp").unwrap();
        let placement = baseline::natural(&w.program);
        let tmp = TempStore::new("artifact");
        {
            let mut s = SimSession::new().with_store(tmp.open());
            let _ = s.request(
                &w.program,
                &placement,
                22,
                LIMITS,
                &[CacheConfig::direct_mapped(2048, 64)],
            );
            s.execute();
        }
        // Different config: its result is not on disk, but the trace
        // artifact is.
        let c2 = [CacheConfig::direct_mapped(1024, 64)];
        let mut s = SimSession::new().with_store(tmp.open());
        let h = s.request(&w.program, &placement, 22, LIMITS, &c2);
        s.execute();
        let m = s.metrics();
        assert_eq!(m.traces_streamed, 0, "no interpreter walk");
        assert_eq!(m.replays, 1);
        assert_eq!(m.artifacts_loaded, 1);
        assert_eq!(m.instructions, m.instructions_replayed);
        assert_eq!(
            s.stats(&h),
            sim::simulate(&w.program, &placement, 22, LIMITS, &c2)
        );
    }

    /// A corrupt stored entry is quarantined on read, the session falls
    /// back to simulation, and the next execute re-persists the entry.
    #[test]
    fn corrupt_store_entry_falls_back_and_heals() {
        let w = impact_workloads::by_name("cmp").unwrap();
        let placement = baseline::natural(&w.program);
        let cfg = [CacheConfig::direct_mapped(2048, 64)];
        let tmp = TempStore::new("heal");
        {
            let mut s = SimSession::new().with_store(tmp.open());
            let _ = s.request(&w.program, &placement, 23, LIMITS, &cfg);
            s.execute();
        }
        // Bit-flip every committed entry.
        let store = tmp.open();
        for e in store.entries() {
            let hex = e.cid.to_hex();
            let path = tmp.0.join("objects").join(&hex[..2]).join(&hex);
            let mut raw = std::fs::read(&path).expect("read entry");
            let last = raw.len() - 1;
            raw[last] ^= 0x10;
            std::fs::write(&path, raw).expect("damage entry");
        }
        drop(store);

        let store = tmp.open();
        let mut s = SimSession::new().with_store(Arc::clone(&store));
        let h = s.request(&w.program, &placement, 23, LIMITS, &cfg);
        s.execute();
        let m = s.metrics();
        assert_eq!(m.disk_served, 0, "corrupt entries are never served");
        assert_eq!(m.traces_streamed, 1, "fell back to the interpreter");
        let c = m.store.expect("counters");
        assert!(c.corrupt >= 1, "corruption detected: {c:?}");
        assert_eq!(
            s.stats(&h),
            sim::simulate(&w.program, &placement, 23, LIMITS, &cfg)
        );
        // The fallback execution re-persisted the entries: a third
        // session is disk-served again.
        let mut s2 = SimSession::new().with_store(tmp.open());
        let h2 = s2.request(&w.program, &placement, 23, LIMITS, &cfg);
        s2.execute();
        assert_eq!(s2.metrics().disk_served, 1, "store healed");
        assert_eq!(s2.stats(&h2), s.stats(&h));
    }

    /// Sinks observe the raw stream, so a key with a pending sink is
    /// never disk-served — but its persisted artifact still replaces the
    /// interpreter walk.
    #[test]
    fn pending_sinks_disable_disk_serving() {
        let w = impact_workloads::by_name("cmp").unwrap();
        let placement = baseline::natural(&w.program);
        let cfg = CacheConfig::direct_mapped(2048, 64);
        let tmp = TempStore::new("sinks");
        {
            let mut s = SimSession::new().with_store(tmp.open());
            let _ = s.request(&w.program, &placement, 24, LIMITS, &[cfg]);
            s.execute();
        }
        let mut s = SimSession::new().with_store(tmp.open());
        let h = s.request(&w.program, &placement, 24, LIMITS, &[cfg]);
        let sink = s.request_sink(&w.program, &placement, 24, LIMITS, Cache::new(cfg));
        s.execute();
        let m = s.metrics();
        assert_eq!(m.disk_served, 0, "sink demands need the stream");
        assert_eq!(m.replays, 1, "stream is the persisted artifact replay");
        assert_eq!(m.traces_streamed, 0);
        let cache: Cache = s.take_sink(&sink);
        assert_eq!(cache.stats(), s.stats(&h)[0]);
    }

    #[test]
    fn metrics_render_and_serialize() {
        let w = impact_workloads::by_name("cmp").unwrap();
        let placement = baseline::natural(&w.program);
        let mut s = SimSession::with_jobs(2);
        let _ = s.request(
            &w.program,
            &placement,
            1,
            LIMITS,
            &[CacheConfig::direct_mapped(1024, 64)],
        );
        s.execute();
        s.record_table("table6", 10, 20);
        let m = s.metrics();
        let summary = m.render_summary();
        assert!(summary.contains("1 unique traces"), "{summary}");
        let json = m.to_json().to_string_pretty();
        assert!(json.contains("\"traces_streamed\": 1"), "{json}");
        assert!(json.contains("\"label\": \"table6\""), "{json}");
    }
}

//! Plain-text table rendering shared by all table runners.

/// Renders a table: a header row plus data rows, columns padded to the
/// widest cell, separated by two spaces. The first column is
/// left-aligned, all others right-aligned (matching the paper's layout).
#[must_use]
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let emit = |out: &mut String, row: &[String]| {
        for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                out.push_str(&format!("{cell:<w$}"));
            } else {
                out.push_str(&format!("{cell:>w$}"));
            }
        }
        out.push('\n');
    };
    emit(&mut out, header);
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    emit(&mut out, &sep);
    for row in rows {
        emit(&mut out, row);
    }
    out
}

/// Formats a ratio as a percentage with two decimals, e.g. `2.70%`.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a byte count as the paper does, e.g. `31.6K` or `812`.
#[must_use]
pub fn kbytes(bytes: u64) -> String {
    if bytes >= 1000 {
        format!("{:.1}K", bytes as f64 / 1024.0)
    } else {
        format!("{bytes}")
    }
}

/// Formats a dynamic count as the paper does, e.g. `11.7M` or `0.43M`.
#[must_use]
pub fn mcount(n: u64) -> String {
    format!("{:.2}M", n as f64 / 1.0e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let header = vec!["name".to_owned(), "miss".to_owned()];
        let rows = vec![
            vec!["cccp".to_owned(), "2.70%".to_owned()],
            vec!["wc".to_owned(), "0.00%".to_owned()],
        ];
        let t = render_table(&header, &rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width));
    }

    #[test]
    fn formats() {
        assert_eq!(pct(0.027), "2.70%");
        assert_eq!(kbytes(32358), "31.6K");
        assert_eq!(kbytes(812), "812");
        assert_eq!(mcount(11_700_000), "11.70M");
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a".to_owned(), "b".to_owned()], &[vec!["x".to_owned()]]);
    }
}

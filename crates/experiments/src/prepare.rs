//! Shared pipeline preparation: run the placement optimizer once per
//! benchmark and keep everything the table runners need.

use impact_ir::Program;
use impact_layout::pipeline::{Pipeline, PipelineConfig, PipelineResult};
use impact_layout::{baseline, Placement};
use impact_profile::ExecLimits;
use impact_workloads::Workload;

/// Execution budgets for preparation and evaluation.
///
/// The default budget runs each benchmark at its spec'd dynamic length.
/// [`Budget::fast`] caps walks for quick smoke runs (CI, debug builds) —
/// ratios converge long before the full trace lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Cap on dynamic instructions per profiling run (`None` = use the
    /// workload's own cap).
    pub profile_instrs: Option<u64>,
    /// Cap on dynamic instructions for the evaluation trace (`None` = use
    /// the workload's own cap).
    pub eval_instrs: Option<u64>,
}

impl Budget {
    /// A reduced budget for smoke tests and debug builds.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            profile_instrs: Some(150_000),
            eval_instrs: Some(300_000),
        }
    }

    /// Profiling limits for `workload` under this budget.
    #[must_use]
    pub fn profile_limits(&self, workload: &Workload) -> ExecLimits {
        ExecLimits {
            max_instructions: self
                .profile_instrs
                .unwrap_or(workload.spec.max_dynamic_instrs),
            max_call_depth: 512,
        }
    }

    /// Evaluation-trace limits for `workload` under this budget.
    #[must_use]
    pub fn eval_limits(&self, workload: &Workload) -> ExecLimits {
        ExecLimits {
            max_instructions: self.eval_instrs.unwrap_or(workload.spec.max_dynamic_instrs),
            max_call_depth: 512,
        }
    }
}

/// One benchmark, fully prepared: optimized placement plus the
/// conventional-compiler baseline.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The benchmark model.
    pub workload: Workload,
    /// Full output of the optimized placement pipeline.
    pub result: PipelineResult,
    /// Natural (declaration-order) placement of the *original*,
    /// un-inlined program — the conventional baseline.
    pub baseline_program: Program,
    /// The baseline placement itself.
    pub baseline: Placement,
    /// The budget used, so table runners evaluate consistently.
    pub budget: Budget,
}

impl Prepared {
    /// The held-out evaluation seed for this benchmark.
    #[must_use]
    pub fn eval_seed(&self) -> u64 {
        self.workload.eval_seed()
    }
}

/// The pipeline configuration used for a workload under a budget.
#[must_use]
pub fn pipeline_config(workload: &Workload, budget: &Budget) -> PipelineConfig {
    PipelineConfig {
        profile_runs: workload.spec.profile_runs,
        profile_base_seed: 0,
        limits: budget.profile_limits(workload),
        ..PipelineConfig::default()
    }
}

/// Prepares one benchmark: runs the optimizer and builds the baseline.
#[must_use]
pub fn prepare(workload: &Workload, budget: &Budget) -> Prepared {
    let config = pipeline_config(workload, budget);
    let result = Pipeline::new(config).run(&workload.program);
    let baseline = baseline::natural(&workload.program);
    Prepared {
        workload: workload.clone(),
        result,
        baseline_program: workload.program.clone(),
        baseline,
        budget: *budget,
    }
}

/// Prepares a set of workloads in parallel (one thread each — the
/// pipeline is single-threaded and benchmarks are independent).
#[must_use]
pub fn prepare_many(workloads: &[Workload], budget: &Budget) -> Vec<Prepared> {
    prepare_many_jobs(workloads, budget, workloads.len())
}

/// Like [`prepare_many`], but bounded to `jobs` worker threads (the
/// `repro --jobs N` path; results stay in input order).
#[must_use]
pub fn prepare_many_jobs(workloads: &[Workload], budget: &Budget, jobs: usize) -> Vec<Prepared> {
    impact_support::parallel_map(jobs, workloads.iter().collect(), |w| prepare(w, budget))
}

/// Prepares all ten benchmarks.
#[must_use]
pub fn prepare_all(budget: &Budget) -> Vec<Prepared> {
    prepare_many(&impact_workloads::all(), budget)
}

/// Prepares the ten paper benchmarks plus the extended set (the paper's
/// §5 benchmark expansion).
#[must_use]
pub fn prepare_all_extended(budget: &Budget) -> Vec<Prepared> {
    let mut workloads = impact_workloads::all();
    workloads.extend(impact_workloads::extended());
    prepare_many(&workloads, budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_wc_produces_consistent_artifacts() {
        let w = impact_workloads::by_name("wc").unwrap();
        let p = prepare(&w, &Budget::fast());
        let opt = impact_analyze::verify_placement(&p.result.program, &p.result.placement);
        assert!(opt.is_clean(), "{}", opt.render());
        let base = impact_analyze::verify_placement(&p.baseline_program, &p.baseline);
        assert!(base.is_clean(), "{}", base.render());
        assert!(p.result.effective_static_bytes() <= p.result.total_static_bytes());
    }

    #[test]
    fn prepare_many_jobs_matches_serial() {
        let workloads: Vec<_> = ["wc", "cmp"]
            .iter()
            .map(|n| impact_workloads::by_name(n).unwrap())
            .collect();
        let serial = prepare_many_jobs(&workloads, &Budget::fast(), 1);
        let parallel = prepare_many_jobs(&workloads, &Budget::fast(), 4);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.workload.spec.name, p.workload.spec.name);
            assert_eq!(s.result.placement, p.result.placement);
            assert_eq!(s.result.program, p.result.program);
        }
    }

    #[test]
    fn fast_budget_caps_walks() {
        let w = impact_workloads::by_name("grep").unwrap();
        let b = Budget::fast();
        assert_eq!(b.profile_limits(&w).max_instructions, 150_000);
        assert_eq!(b.eval_limits(&w).max_instructions, 300_000);
        let d = Budget::default();
        assert_eq!(
            d.eval_limits(&w).max_instructions,
            w.spec.max_dynamic_instrs
        );
    }
}

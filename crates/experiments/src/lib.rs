//! Reproduction harness for every table of the ISCA 1989 IMPACT-I paper.
//!
//! The paper's evaluation is nine tables (it has no numbered figures);
//! each has a runner in [`tables`]:
//!
//! | module | paper table | content |
//! |--------|-------------|---------|
//! | [`tables::t1`] | Table 1 | Smith's fully-associative design targets vs. our unoptimized fully-associative baseline |
//! | [`tables::t2`] | Table 2 | benchmark profile characteristics |
//! | [`tables::t3`] | Table 3 | inline expansion results |
//! | [`tables::t4`] | Table 4 | trace selection results |
//! | [`tables::t5`] | Table 5 | static and dynamic code sizes |
//! | [`tables::t6`] | Table 6 | miss/traffic vs. cache size (64 B blocks) |
//! | [`tables::t7`] | Table 7 | miss/traffic vs. block size (2 KB cache) |
//! | [`tables::t8`] | Table 8 | sectoring and partial loading |
//! | [`tables::t9`] | Table 9 | code scaling × partial loading |
//!
//! [`prepare`] runs the full placement pipeline once per benchmark and is
//! shared by all cache-simulation tables; [`sim`] streams evaluation
//! traces into banks of cache configurations. The `repro` binary renders
//! any table (or all) as text and optionally as JSON.
//!
//! # Example: regenerate the headline result
//!
//! ```no_run
//! use impact_experiments::{prepare, tables};
//!
//! let prepared = prepare::prepare_all(&prepare::Budget::default());
//! let rows = tables::t6::run(&prepared);
//! println!("{}", tables::t6::render(&rows));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimate;
pub mod fmt;
pub mod persist;
pub mod prepare;
pub mod runner;
pub mod session;
pub mod sim;
pub mod tables;
pub mod viz;

//! SimSession must be observationally identical to the raw
//! [`impact_experiments::sim`] path for every table-relevant
//! `(placement, config)` pair, and the `repro` binary must emit
//! byte-identical tables at any `--jobs` count.

use impact_cache::{Associativity, CacheConfig, FillPolicy};
use impact_experiments::prepare::{prepare, Budget, Prepared};
use impact_experiments::session::SimSession;
use impact_experiments::sim;
use impact_ir::Program;
use impact_layout::{baseline, Placement};

/// Every cache-config family the tables sweep: Smith's fully-associative
/// design points (t1), cache sizes (t6), block sizes (t7), fill policies
/// (t8), and associativity (assoc).
fn table_configs() -> Vec<CacheConfig> {
    let mut configs = vec![
        CacheConfig::fully_associative(512, 64),
        CacheConfig::fully_associative(2048, 32),
    ];
    for size in [8192, 4096, 2048, 1024, 512] {
        configs.push(CacheConfig::direct_mapped(size, 64));
    }
    for block in [128, 64, 32, 16] {
        configs.push(CacheConfig::direct_mapped(2048, block));
    }
    configs.push(
        CacheConfig::direct_mapped(2048, 64).with_fill(FillPolicy::Sectored { sector_bytes: 8 }),
    );
    configs.push(CacheConfig::direct_mapped(2048, 64).with_fill(FillPolicy::Partial));
    for ways in [2, 4] {
        configs.push(
            CacheConfig::direct_mapped(2048, 64).with_associativity(Associativity::Ways(ways)),
        );
    }
    configs
}

/// The placements the tables evaluate for one prepared benchmark:
/// optimized (t5–t9 and friends), the conventional baseline (t1), and
/// the ablation ladder's natural and random layouts.
fn table_placements(p: &Prepared) -> Vec<(&'static str, &Program, Placement)> {
    vec![
        ("optimized", &p.result.program, p.result.placement.clone()),
        ("baseline", &p.baseline_program, p.baseline.clone()),
        (
            "natural",
            &p.result.program,
            baseline::natural(&p.result.program),
        ),
        (
            "random",
            &p.result.program,
            baseline::random(&p.result.program, 1),
        ),
    ]
}

#[test]
fn session_matches_sim_for_every_table_pair_on_two_workloads() {
    let budget = Budget::fast();
    let prepared: Vec<Prepared> = ["wc", "grep"]
        .iter()
        .map(|n| prepare(&impact_workloads::by_name(n).unwrap(), &budget))
        .collect();
    let configs = table_configs();

    // One shared session across everything, as the runner uses it: the
    // memoization layer must not leak between keys or configs.
    let mut session = SimSession::with_jobs(2);
    let mut requests = Vec::new();
    for p in &prepared {
        for (what, program, placement) in table_placements(p) {
            let limits = p.budget.eval_limits(&p.workload);
            // Register per-config (maximal key sharing) AND as one batch.
            let singles: Vec<_> = configs
                .iter()
                .map(|&c| session.request(program, &placement, p.eval_seed(), limits, &[c]))
                .collect();
            let batch = session.request(program, &placement, p.eval_seed(), limits, &configs);
            requests.push((p, what, program, placement, limits, singles, batch));
        }
    }
    session.execute();

    for (p, what, program, placement, limits, singles, batch) in &requests {
        let (expect, expect_len) =
            sim::simulate_counted(program, placement, p.eval_seed(), *limits, &configs);
        let name = &p.workload.name;
        assert_eq!(
            session.counted(batch),
            (expect.clone(), expect_len),
            "{name}/{what}: batched request diverged from sim::simulate"
        );
        for (handle, want) in singles.iter().zip(&expect) {
            assert_eq!(
                session.stats(handle),
                vec![*want],
                "{name}/{what}: single-config request diverged from sim::simulate"
            );
        }
    }

    // Up to 8 placement keys (structurally identical placements may
    // legitimately coalesce), each streamed exactly once despite 14
    // single requests + 1 batch request per key.
    let m = session.metrics();
    assert!(m.unique_traces >= 6 && m.unique_traces <= 8, "{m:?}");
    assert_eq!(m.traces_streamed, m.unique_traces);
    assert_eq!(m.restreams, 0);
    assert!(m.memo_served > 0, "batch configs must be memo-served");
}

#[test]
fn repro_binary_output_is_identical_for_any_job_count() {
    let run = |jobs: &str| {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["table1", "--fast", "--jobs", jobs])
            .output()
            .expect("repro runs");
        assert!(out.status.success(), "repro --jobs {jobs} failed");
        out.stdout
    };
    assert_eq!(run("1"), run("4"), "table bytes must not depend on --jobs");
}

#[test]
fn repro_rejects_zero_jobs_with_a_specific_message() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["table1", "--fast", "--jobs", "0"])
        .output()
        .expect("repro runs");
    assert!(!out.status.success(), "--jobs 0 must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--jobs must be at least 1"),
        "error must name the flag and the constraint, got: {stderr}"
    );
    assert!(
        !stderr.contains("usage:"),
        "a specific error, not the generic usage text: {stderr}"
    );
}

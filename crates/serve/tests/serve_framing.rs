//! Wire-level framing tests: raw sockets against a real server, probing
//! exactly the cases the reactor's incremental parser must get right —
//! pipelining, byte-by-byte arrival, oversized heads, slowloris
//! eviction — plus byte-identical equivalence between the socket
//! surface and direct `route()` calls.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use impact_asm::print_program;
use impact_serve::api::{route, AppState};
use impact_serve::client::Client;
use impact_serve::http::Request;
use impact_serve::{ServeConfig, Server};
use impact_support::json::Json;

fn start(config: ServeConfig) -> Server {
    Server::start(config).expect("bind ephemeral port")
}

fn default_server() -> Server {
    start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
}

/// Reads one `Content-Length`-framed response off a raw stream.
fn read_response(reader: &mut BufReader<TcpStream>) -> Option<(u16, Vec<u8>)> {
    let mut line = String::new();
    if reader.read_line(&mut line).ok()? == 0 {
        return None;
    }
    let status: u16 = line.split_whitespace().nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).ok()?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some((status, body))
}

#[test]
fn two_pipelined_requests_in_one_segment_answer_in_order() {
    let server = default_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    // Both requests in a single write: one TCP segment carries two
    // complete frames, and the responses must come back in order.
    let frame = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
                 GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n";
    stream.write_all(frame.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let (status, body) = read_response(&mut reader).unwrap();
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("\"ok\""));
    let (status, body) = read_response(&mut reader).unwrap();
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("requests_total"));
    server.stop();
}

#[test]
fn request_split_byte_by_byte_parses_when_the_last_byte_lands() {
    let server = default_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let frame = b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    for &byte in frame {
        stream.write_all(&[byte]).unwrap();
        stream.flush().unwrap();
        // A beat between bytes so each arrives as its own segment.
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let (status, body) = read_response(&mut reader).unwrap();
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("\"ok\""));
    server.stop();
}

#[test]
fn oversized_request_head_is_rejected_with_431() {
    let server = default_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // A header block that never ends: 32 KiB of header bytes blows the
    // 16 KiB head limit long before any terminator.
    stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    let filler = format!("X-Padding: {}\r\n", "y".repeat(4096));
    for _ in 0..8 {
        stream.write_all(filler.as_bytes()).unwrap();
    }
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let (status, _) = read_response(&mut reader).unwrap();
    assert_eq!(status, 431);
    // The server closes after the rejection.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    server.stop();
}

#[test]
fn slowloris_connection_is_evicted_at_the_read_deadline() {
    let server = start(ServeConfig {
        workers: 1,
        read_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // Send a partial request head, then stall forever.
    stream.write_all(b"GET /healthz HT").unwrap();
    stream.flush().unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    let mut sink = Vec::new();
    // The reactor must close the socket (EOF) without ever answering.
    let n = stream.read_to_end(&mut sink).unwrap();
    assert_eq!(n, 0, "no response bytes for an unfinished request");
    let waited = started.elapsed();
    assert!(
        waited >= Duration::from_millis(250),
        "evicted too early: {waited:?}"
    );
    assert!(
        waited < Duration::from_secs(5),
        "eviction must come from the deadline, not the test timeout"
    );
    server.stop();
}

#[test]
fn socket_responses_are_byte_identical_to_direct_route_calls() {
    let program = Json::Str(print_program(
        &impact_workloads::by_name("cmp").unwrap().program,
    ));
    let requests = [
        (
            "/v1/lint",
            format!(r#"{{"program": {program}, "runs": 2, "max_instrs": 40000}}"#),
        ),
        (
            "/v1/layout",
            format!(r#"{{"program": {program}, "runs": 2, "max_instrs": 40000}}"#),
        ),
        (
            "/v1/simulate",
            format!(
                r#"{{"program": {program}, "seed": 9, "max_instrs": 40000,
                   "configs": [{{"size": 1024}}]}}"#
            ),
        ),
        (
            "/v1/analyze",
            format!(r#"{{"program": {program}, "cache": 2048, "block": 64}}"#),
        ),
    ];

    // Expected bytes come from route() against a fresh state — the
    // handlers are deterministic, so a separate engine instance must
    // produce the same documents the served instance does.
    let reference = AppState::new(1);
    let server = default_server();
    let mut client = Client::connect(server.addr()).unwrap();
    for (path, body) in &requests {
        let expected = route(
            &reference,
            &Request {
                method: "POST".to_string(),
                target: (*path).to_string(),
                http11: true,
                headers: Vec::new(),
                body: body.as_bytes().to_vec(),
            },
        )
        .1;
        let over_socket = client.post_json(path, body).unwrap();
        assert_eq!(over_socket.status, expected.status, "{path}");
        assert_eq!(
            over_socket.body, expected.body,
            "{path} must be byte-identical"
        );
        // Second round trip: the response-memo path must return the
        // same bytes as the routed path.
        let repeat = client.post_json(path, body).unwrap();
        assert_eq!(repeat.status, expected.status, "{path} (memo)");
        assert_eq!(
            repeat.body, expected.body,
            "{path} (memo) must be byte-identical"
        );
    }
    assert!(
        server.state().rcache.hit_count() >= requests.len() as u64,
        "repeats must be served by the response memo"
    );
    server.stop();
}

//! End-to-end tests: a real `Server` on an ephemeral port, driven by
//! parallel TCP clients through the full mixed workload.

use std::thread;

use impact_asm::{parse_program, print_program};
use impact_cache::CacheConfig;
use impact_experiments::session::SimSession;
use impact_layout::baseline;
use impact_profile::ExecLimits;
use impact_serve::client::Client;
use impact_serve::http::Response;
use impact_serve::{simulate_response_json, ServeConfig, Server};
use impact_support::json::{parse as parse_json, Json};

fn start() -> Server {
    Server::start(ServeConfig {
        workers: 4,
        queue_cap: 64,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

fn program_text() -> String {
    print_program(&impact_workloads::by_name("cmp").unwrap().program)
}

fn simulate_body(program: &Json, seed: u64) -> String {
    format!(
        r#"{{"program": {program}, "seed": {seed}, "max_instrs": 40000,
           "configs": [{{"size": 2048}}, {{"size": 512}}]}}"#
    )
}

#[test]
fn parallel_mixed_workload_end_to_end() {
    let server = start();
    let addr = server.addr();
    let program = Json::Str(program_text());

    // Four clients, each driving every endpoint over one keep-alive
    // connection, all at once.
    thread::scope(|scope| {
        for seed in 1..=4u64 {
            let program = &program;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let lint = format!(r#"{{"program": {program}, "runs": 2, "max_instrs": 40000}}"#);
                let resp = client.post_json("/v1/lint", &lint).unwrap();
                assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                let resp = client.post_json("/v1/layout", &lint).unwrap();
                assert_eq!(resp.status, 200);
                let resp = client
                    .post_json("/v1/simulate", &simulate_body(program, seed))
                    .unwrap();
                assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                let (status, body) = client.get("/metrics").unwrap();
                assert_eq!(status, 200);
                assert!(!body.is_empty());
            });
        }
    });

    // Every request must be accounted for in the metrics document.
    let mut client = Client::connect(addr).unwrap();
    let (_, body) = client.get("/metrics").unwrap();
    let doc = parse_json(std::str::from_utf8(&body).unwrap()).unwrap();
    assert!(doc.get("requests_total").and_then(Json::as_u64).unwrap() >= 16);
    let by = doc.get("requests_by_endpoint").unwrap();
    assert_eq!(by.get("simulate").and_then(Json::as_u64), Some(4));
    assert_eq!(by.get("lint").and_then(Json::as_u64), Some(4));
    // Connection gauges: this scrape's own connection is open now, and
    // the four parallel clients pushed the peak to at least 4.
    assert!(doc.get("connections_open").and_then(Json::as_u64).unwrap() >= 1);
    assert!(doc.get("connections_peak").and_then(Json::as_u64).unwrap() >= 4);
    // Per-endpoint latency histograms: the simulate histogram must hold
    // exactly the simulate requests.
    let sim_latency = doc
        .get("latency_by_endpoint")
        .unwrap()
        .get("simulate")
        .unwrap();
    assert_eq!(sim_latency.get("count").and_then(Json::as_u64), Some(4));
    let buckets = sim_latency.get("buckets").and_then(Json::as_arr).unwrap();
    let total: u64 = buckets
        .iter()
        .map(|b| b.get("count").and_then(Json::as_u64).unwrap())
        .sum();
    assert_eq!(total, 4);
    // The response memo appears in the document with its hit counters.
    let rc = doc.get("response_cache").unwrap();
    assert!(rc.get("insertions").and_then(Json::as_u64).unwrap() >= 1);
    server.stop();
}

#[test]
fn simulate_is_bit_identical_to_direct_session_and_memoized() {
    let server = start();
    let text = program_text();
    let program = Json::Str(text.clone());
    let body = simulate_body(&program, 7);

    let mut client = Client::connect(server.addr()).unwrap();
    let resp = client.post_json("/v1/simulate", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));

    // Rebuild the expected body from a direct SimSession evaluation.
    let parsed = parse_program(&text).unwrap();
    let placement = baseline::natural(&parsed);
    let configs = [
        CacheConfig::direct_mapped(2048, 64),
        CacheConfig::direct_mapped(512, 64),
    ];
    let limits = ExecLimits {
        max_instructions: 40_000,
        max_call_depth: 512,
    };
    let mut session = SimSession::new();
    let handle = session.request(&parsed, &placement, 7, limits, &configs);
    session.execute();
    let (stats, instructions) = session.counted(&handle);
    let expected = Response::json(
        200,
        &simulate_response_json("natural", 7, &configs, &stats, instructions),
    );
    assert_eq!(resp.body, expected.body, "service must be bit-identical");

    // Re-evaluating the same exact body from several parallel clients
    // must not touch the evaluation engine again: the reactor answers
    // repeats from the byte-exact response memo (and every repeat body
    // must match the first response bit for bit).
    let streamed_before = server.state().session.metrics().traces_streamed;
    assert_eq!(streamed_before, 1);
    let first_body = resp.body.clone();
    thread::scope(|scope| {
        for _ in 0..4 {
            let body = &body;
            let first_body = &first_body;
            let addr = server.addr();
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..3 {
                    let resp = client.post_json("/v1/simulate", body).unwrap();
                    assert_eq!(resp.status, 200);
                    assert_eq!(&resp.body, first_body, "memo hits must be byte-identical");
                }
            });
        }
    });
    let metrics = server.state().session.metrics();
    assert_eq!(
        metrics.traces_streamed, streamed_before,
        "repeat placements must not re-stream"
    );
    assert!(
        server.state().rcache.hit_count() >= 12,
        "repeats are served by the response memo, not the workers"
    );
    server.stop();
}

#[test]
fn cold_repeat_config_demand_replays_the_stored_artifact() {
    let server = start();
    let program = Json::Str(program_text());
    let mut client = Client::connect(server.addr()).unwrap();

    // First demand walks the interpreter (and captures the artifact).
    let first = format!(
        r#"{{"program": {program}, "seed": 5, "max_instrs": 40000,
           "configs": [{{"size": 2048}}]}}"#
    );
    let resp = client.post_json("/v1/simulate", &first).unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));

    // Same trace key, a config the memo has never seen: served by
    // replaying the artifact, not by re-walking the interpreter.
    let cold = format!(
        r#"{{"program": {program}, "seed": 5, "max_instrs": 40000,
           "configs": [{{"size": 1024}}]}}"#
    );
    let resp = client.post_json("/v1/simulate", &cold).unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));

    let (_, body) = client.get("/metrics").unwrap();
    let doc = parse_json(std::str::from_utf8(&body).unwrap()).unwrap();
    let sim = doc.get("sim").unwrap();
    assert_eq!(sim.get("traces_streamed").and_then(Json::as_u64), Some(1));
    assert!(sim.get("replays").and_then(Json::as_u64).unwrap() >= 1);
    assert_eq!(sim.get("restreams").and_then(Json::as_u64), Some(0));
    assert!(sim.get("artifacts_stored").and_then(Json::as_u64).unwrap() >= 1);
    assert!(sim.get("artifact_bytes").and_then(Json::as_u64).unwrap() > 0);
    assert!(
        sim.get("instructions_replayed")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    server.stop();
}

#[test]
fn bad_json_reports_the_position_over_http() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();
    let resp = client
        .post_json("/v1/simulate", "{\n  \"program\": oops}")
        .unwrap();
    assert_eq!(resp.status, 400);
    let doc = parse_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    let msg = doc.get("error").and_then(Json::as_str).unwrap();
    assert!(msg.contains("line 2"), "{msg}");
    server.stop();
}

#[test]
fn overload_sheds_and_recovery_serves_again() {
    // queue_cap = 0: the reactor sheds every dispatched request.
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_cap: 0,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let resp = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 503);
    assert_eq!(resp.header("retry-after"), Some("1"));
    assert!(server.state().metrics.total_shed() >= 1);
    server.stop();

    // A normally-provisioned server accepts the same traffic.
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(client.get("/healthz").unwrap().0, 200);
    server.stop();
}

#[test]
fn graceful_shutdown_finishes_inflight_then_refuses() {
    let server = start();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.get("/healthz").unwrap().0, 200);

    let flag = server.shutdown_flag();
    let waiter = thread::spawn(move || server.wait());
    flag.store(true, std::sync::atomic::Ordering::SeqCst);
    waiter.join().unwrap();

    let refused = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut c) => c.get("/healthz").is_err(),
    };
    assert!(refused, "listener must be closed after shutdown");
}

//! The event-driven HTTP server: a readiness-polling reactor thread, a
//! bounded *request* dispatch queue, and a fixed worker pool for the
//! CPU-bound routing work.
//!
//! Threading model (see DESIGN.md §"Event-driven serve core"):
//!
//! - One reactor thread owns the listener and every connection socket,
//!   multiplexed over `poll(2)` ([`crate::poll`]). Connections are
//!   nonblocking state machines ([`crate::conn`]): the reactor reads
//!   available bytes, frames as many complete requests as arrived
//!   (pipelining), and flushes buffered responses. An idle keep-alive
//!   connection costs one pollfd entry — not a thread, not a worker.
//! - Parsed requests go into a bounded dispatch queue; when it is full
//!   the reactor answers `503` + `Retry-After` itself — workers never
//!   see shed load. Requests whose exact `(target, body)` bytes were
//!   answered before are served from the response memo
//!   ([`crate::rcache`]) without touching the queue at all.
//! - `workers` threads block on a condvar over the queue. Each pops a
//!   *request* (not a connection), routes it under `catch_unwind`,
//!   serializes the response, and hands the frame back to the reactor
//!   through a completion list plus a wake byte on a loopback TCP pair.
//!   A connection therefore occupies a worker only while one of its
//!   requests is actually being routed or simulated.
//! - Shutdown sets an atomic flag: the reactor closes the listener and
//!   stops reading, workers drain the queue and exit, in-flight
//!   responses still flush, and [`Server::stop`] joins everyone.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use crate::api::{route, AppState};
use crate::conn::DoneResponse;
use crate::http::{Request, Response};
use crate::rcache::{ResponseCache, DEFAULT_CACHE_BYTES};
use crate::reactor::Reactor;

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads routing requests.
    pub workers: usize,
    /// Parsed requests allowed to wait for a worker; beyond this the
    /// reactor sheds with `503`. Zero sheds every dispatched request
    /// (useful for deterministic overload tests).
    pub queue_cap: usize,
    /// Read deadline: how long a connection may sit idle mid-request
    /// (or between keep-alive requests) before the reactor evicts it.
    pub read_timeout: Duration,
    /// Write deadline: how long a client may refuse to drain a pending
    /// response before the reactor evicts the connection.
    pub write_timeout: Duration,
    /// Streaming threads inside each simulation evaluation.
    pub sim_jobs: usize,
    /// Byte budget for the serving-layer response memo; `0` disables it.
    pub response_cache_bytes: usize,
    /// Root directory of the persistent content-addressed store; when
    /// set, finished results and trace artifacts are written through and
    /// a restarted server answers previously-seen simulate requests from
    /// disk without re-streaming.
    pub store_dir: Option<String>,
    /// In-memory run-buffer artifact byte budget for the session
    /// (`None`: the session default; `0` disables capture).
    pub artifact_budget: Option<usize>,
    /// Shard membership (`host:port` entries, this node included).
    /// Empty disables shard mode.
    pub peers: Vec<String>,
    /// This node's own entry in `peers`; required when `peers` is set.
    pub advertise: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            // The queue now holds requests, not connections, and a
            // pipelining client can legitimately burst dozens at once.
            queue_cap: 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            sim_jobs: 1,
            response_cache_bytes: DEFAULT_CACHE_BYTES,
            store_dir: None,
            artifact_budget: None,
            peers: Vec::new(),
            advertise: None,
        }
    }
}

/// One parsed request travelling reactor → worker. `slot`/`gen` name
/// the connection; `seq` orders the response within it.
#[derive(Debug)]
pub(crate) struct Job {
    pub slot: usize,
    pub gen: u64,
    pub seq: u64,
    pub req: Request,
}

/// One serialized response travelling worker → reactor.
#[derive(Debug)]
pub(crate) struct Completion {
    pub slot: usize,
    pub gen: u64,
    pub seq: u64,
    pub frame: Vec<u8>,
    pub close: bool,
}

/// The bounded request queue between reactor and workers.
#[derive(Debug)]
pub(crate) struct Dispatch {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    cap: usize,
}

impl Dispatch {
    pub fn new(cap: usize) -> Self {
        Self {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            cap,
        }
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<Job>> {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues unless full. Returns the depth after the push, or
    /// `None` when the request must be shed.
    pub fn try_push(&self, job: Job) -> Option<usize> {
        let mut q = self.lock();
        if q.len() >= self.cap {
            return None;
        }
        q.push_back(job);
        let depth = q.len();
        drop(q);
        self.ready.notify_one();
        Some(depth)
    }

    /// Blocks for the next job. Returns `None` once shutdown is
    /// requested *and* the queue is dry — queued requests are always
    /// answered.
    pub fn pop(&self, shutdown: &AtomicBool) -> Option<(Job, usize)> {
        let mut q = self.lock();
        loop {
            if let Some(job) = q.pop_front() {
                let depth = q.len();
                return Some((job, depth));
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }
}

/// Completed responses waiting for the reactor to collect them.
#[derive(Debug, Default)]
pub(crate) struct Completions {
    list: Mutex<Vec<Completion>>,
}

impl Completions {
    pub fn push(&self, done: Completion) {
        self.list
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(done);
    }

    pub fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.list.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// A loopback TCP pair used as the worker → reactor wake pipe, so the
/// reactor's `poll(2)` returns the moment a completion lands. (A real
/// pipe would need another syscall wrapper; a loopback socket pair is
/// dependency-free and identical for this purpose.)
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    rx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((tx, rx))
}

/// A running service; dropping it without [`Server::stop`] detaches the
/// threads (they keep serving until the process exits).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<AppState>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the reactor thread and worker pool, and returns
    /// immediately. The service is ready as soon as this returns.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (wake_tx, wake_rx) = wake_pair()?;
        let state = Arc::new(AppState::from_config(&config)?);
        let shutdown = Arc::new(AtomicBool::new(false));
        let dispatch = Arc::new(Dispatch::new(config.queue_cap));
        let completions = Arc::new(Completions::default());
        let mut threads = Vec::with_capacity(config.workers + 1);

        for i in 0..config.workers.max(1) {
            let dispatch = Arc::clone(&dispatch);
            let completions = Arc::clone(&completions);
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            let mut wake = wake_tx.try_clone()?;
            threads.push(
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&dispatch, &completions, &mut wake, &state, &shutdown)
                    })
                    .expect("spawn worker"),
            );
        }
        {
            let dispatch = Arc::clone(&dispatch);
            let completions = Arc::clone(&completions);
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            let config = config.clone();
            threads.push(
                thread::Builder::new()
                    .name("serve-reactor".to_string())
                    .spawn(move || {
                        // Keep one wake-pipe sender alive on this side so
                        // worker exit never turns the pipe into EOF spam.
                        let _wake_keep = wake_tx;
                        Reactor::new(config).run(
                            listener,
                            wake_rx,
                            &dispatch,
                            &completions,
                            &state,
                            &shutdown,
                        );
                    })
                    .expect("spawn reactor"),
            );
        }
        Ok(Server {
            addr,
            state,
            shutdown,
            threads,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state (session + metrics + memo).
    #[must_use]
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// A clonable flag that stops the server when set (e.g. from a
    /// signal handler or stdin watcher).
    #[must_use]
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// True once shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and joins every thread. In-flight requests are
    /// answered and their responses flushed; idle connections close.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until `self.shutdown` becomes true (set externally via
    /// [`Server::shutdown_flag`]), then stops cleanly.
    pub fn wait(self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(25));
        }
        self.stop();
    }
}

/// Routes requests until shutdown is requested and the queue is dry.
fn worker_loop(
    dispatch: &Dispatch,
    completions: &Completions,
    wake: &mut TcpStream,
    state: &AppState,
    shutdown: &AtomicBool,
) {
    while let Some((job, depth)) = dispatch.pop(shutdown) {
        state.metrics.set_queue_depth(depth);
        let started = Instant::now();
        let (endpoint, response) = match catch_unwind(AssertUnwindSafe(|| route(state, &job.req))) {
            Ok(routed) => routed,
            Err(_) => (
                crate::metrics::Endpoint::Other,
                Response::error(500, "internal error while handling the request"),
            ),
        };
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        state.metrics.record(endpoint, response.status, micros);
        if ResponseCache::cacheable(&job.req.method, job.req.body.len()) {
            state
                .rcache
                .put(&job.req.target, &job.req.body, endpoint, &response);
        }
        // Stop offering keep-alive once shutdown begins, but always
        // finish answering the request we took.
        let keep = job.req.keep_alive() && !shutdown.load(Ordering::SeqCst);
        let done = DoneResponse::serialize(&response, keep);
        completions.push(Completion {
            slot: job.slot,
            gen: job.gen,
            seq: job.seq,
            frame: done.frame,
            close: done.close,
        });
        let _ = wake.write(&[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_cap: 16,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serves_health_and_404_over_tcp() {
        let server = Server::start(tiny_config()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let (status, body) = client.get("/healthz").unwrap();
        assert_eq!(status, 200);
        assert!(String::from_utf8_lossy(&body).contains("\"ok\""));
        // Keep-alive: a second request on the same connection.
        let (status, _) = client.get("/missing").unwrap();
        assert_eq!(status, 404);
        server.stop();
    }

    #[test]
    fn zero_capacity_queue_sheds_with_retry_after() {
        let server = Server::start(ServeConfig {
            queue_cap: 0,
            ..tiny_config()
        })
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let resp = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(resp.status, 503);
        assert!(resp
            .headers
            .iter()
            .any(|(n, v)| n == "retry-after" && v == "1"));
        assert!(server.state().metrics.total_shed() >= 1);
        server.stop();
    }

    #[test]
    fn stop_refuses_new_connections() {
        let server = Server::start(tiny_config()).unwrap();
        let addr = server.addr();
        assert!(!server.is_shutting_down());
        server.stop();
        // The listener is gone; a fresh connect must fail (or be reset
        // on first use).
        let refused = match Client::connect(addr) {
            Err(_) => true,
            Ok(mut c) => c.get("/healthz").is_err(),
        };
        assert!(refused);
    }

    /// A unique scratch directory removed on drop.
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "impact-serve-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }

        fn path(&self) -> String {
            self.0.to_string_lossy().into_owned()
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn simulate_body() -> String {
        let program = impact_asm::print_program(&impact_workloads::by_name("cmp").unwrap().program);
        format!(
            r#"{{"program": {}, "seed": 11, "max_instrs": 40000,
               "configs": [{{"size": 2048}}, {{"size": 512, "assoc": 2}}]}}"#,
            impact_support::json::Json::Str(program),
        )
    }

    #[test]
    fn restarted_server_disk_serves_previous_simulations() {
        let tmp = TempDir::new("restart");
        let config = ServeConfig {
            store_dir: Some(tmp.path()),
            ..tiny_config()
        };
        let body = simulate_body();

        // Cold process: the first simulate streams a trace and writes
        // results through to the store.
        let server = Server::start(config.clone()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let first = client.post_json("/v1/simulate", &body).unwrap();
        assert_eq!(
            first.status,
            200,
            "{}",
            String::from_utf8_lossy(&first.body)
        );
        let cold = server.state().session.metrics();
        assert_eq!(cold.traces_streamed, 1);
        assert_eq!(cold.disk_served, 0);
        server.stop();

        // Restarted process, same store: the repeat must be answered
        // from disk — byte-identically and without streaming a trace.
        let server = Server::start(config).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let again = client.post_json("/v1/simulate", &body).unwrap();
        assert_eq!(again.status, 200);
        assert_eq!(again.body, first.body, "restart must not change bytes");
        let warm = server.state().session.metrics();
        assert_eq!(warm.traces_streamed, 0, "no re-streaming after restart");
        assert_eq!(warm.disk_served, 1);
        let store = warm.store.expect("store counters present");
        assert!(store.hits >= 2, "both config results read from disk");
        server.stop();
    }

    #[test]
    fn shard_mode_routes_each_body_to_one_owner() {
        // Reserve two ports, then start both members on them. (The
        // listeners are dropped just before the servers bind; the window
        // is tiny and the test is not run in parallel with port squatters.)
        let reserve = || {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let (addr_a, addr_b) = (reserve(), reserve());
        let peers = vec![addr_a.clone(), addr_b.clone()];
        let start = |addr: &String| {
            Server::start(ServeConfig {
                addr: addr.clone(),
                peers: peers.clone(),
                advertise: Some(addr.clone()),
                ..tiny_config()
            })
            .unwrap()
        };
        let server_a = start(&addr_a);
        let server_b = start(&addr_b);

        let body = simulate_body();
        let mut ca = Client::connect(server_a.addr()).unwrap();
        let mut cb = Client::connect(server_b.addr()).unwrap();
        let ra = ca.post_json("/v1/simulate", &body).unwrap();
        let rb = cb.post_json("/v1/simulate", &body).unwrap();
        assert_eq!(ra.status, 200, "{}", String::from_utf8_lossy(&ra.body));
        assert_eq!(rb.status, 200);
        assert_eq!(ra.body, rb.body, "owner and proxy must agree byte-for-byte");

        // Exactly one node simulated; the other proxied its request.
        let (ma, mb) = (
            server_a.state().session.metrics(),
            server_b.state().session.metrics(),
        );
        assert_eq!(ma.traces_streamed + mb.traces_streamed, 1);
        let shard_doc = |srv: &Server| srv.state().shard.as_ref().unwrap().to_json();
        let count = |doc: &impact_support::json::Json, key: &str| {
            doc.get(key)
                .and_then(impact_support::json::Json::as_u64)
                .unwrap()
        };
        let (da, db) = (shard_doc(&server_a), shard_doc(&server_b));
        assert_eq!(
            count(&da, "shard_forwarded") + count(&db, "shard_forwarded"),
            1
        );
        // The owner routed exactly one simulate itself: whichever body
        // arrived second was answered by its response memo before
        // routing (reactor-level), so it never reaches the counter.
        assert_eq!(count(&da, "shard_local") + count(&db, "shard_local"), 1);
        assert_eq!(count(&da, "shard_errors") + count(&db, "shard_errors"), 0);

        // /metrics carries the shard section.
        let (status, metrics) = ca.get("/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(String::from_utf8_lossy(&metrics).contains("shard_forwarded"));

        server_a.stop();
        server_b.stop();
    }

    #[test]
    fn misconfigured_shard_membership_fails_to_start() {
        let err = Server::start(ServeConfig {
            peers: vec!["127.0.0.1:7001".to_string()],
            ..tiny_config()
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = Server::start(ServeConfig {
            peers: vec!["127.0.0.1:7001".to_string()],
            advertise: Some("127.0.0.1:9".to_string()),
            ..tiny_config()
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn many_idle_connections_cost_no_workers() {
        // With 1 worker and 64 open connections, requests on any of
        // them must still be answered: idle connections no longer pin
        // a worker each.
        let server = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let mut clients: Vec<Client> = (0..64)
            .map(|_| Client::connect(server.addr()).unwrap())
            .collect();
        for client in clients.iter_mut().rev() {
            let (status, _) = client.get("/healthz").unwrap();
            assert_eq!(status, 200);
        }
        assert!(server.state().metrics.connections_peak() >= 64);
        server.stop();
    }
}

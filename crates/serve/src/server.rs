//! The concurrent HTTP server: accept loop, bounded dispatch queue,
//! fixed worker pool, load shedding, and graceful shutdown.
//!
//! Threading model (see DESIGN.md §"impact-serve"):
//!
//! - One accept thread polls a nonblocking listener so it can observe
//!   the shutdown flag between accepts. Accepted connections go into a
//!   bounded queue; when the queue is full the accept thread writes a
//!   `503` + `Retry-After` itself and closes the socket — workers never
//!   see shed load.
//! - `workers` threads block on a condvar over the queue. Each pops a
//!   connection and serves its keep-alive request loop to completion, so
//!   a connection occupies exactly one worker at a time.
//! - Shutdown sets an atomic flag: the accept thread stops accepting,
//!   workers drain the queue and exit, and [`Server::stop`] joins them.

use std::collections::VecDeque;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use crate::api::{route, AppState};
use crate::http::{read_request, HttpError, Response};

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker; beyond this
    /// the accept loop sheds with `503`. Zero sheds everything (useful
    /// for deterministic overload tests).
    pub queue_cap: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Streaming threads inside each simulation evaluation.
    pub sim_jobs: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            sim_jobs: 1,
        }
    }
}

/// Connections waiting for a worker.
#[derive(Debug, Default)]
struct Queue {
    deque: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

impl Queue {
    fn lock(&self) -> MutexGuard<'_, VecDeque<TcpStream>> {
        self.deque.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running service; dropping it without [`Server::stop`] detaches the
/// threads (they keep serving until the process exits).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<AppState>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept thread and worker pool, and returns
    /// immediately. The service is ready as soon as this returns.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(AppState::new(config.sim_jobs));
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(Queue::default());
        let mut threads = Vec::with_capacity(config.workers + 1);

        for i in 0..config.workers.max(1) {
            let queue = Arc::clone(&queue);
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            threads.push(
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &state, &shutdown))
                    .expect("spawn worker"),
            );
        }
        {
            let queue = Arc::clone(&queue);
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            threads.push(
                thread::Builder::new()
                    .name("serve-accept".to_string())
                    .spawn(move || accept_loop(&listener, &config, &queue, &state, &shutdown))
                    .expect("spawn accept loop"),
            );
        }
        Ok(Server {
            addr,
            state,
            shutdown,
            threads,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state (session + metrics).
    #[must_use]
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// A clonable flag that stops the server when set (e.g. from a
    /// signal handler or stdin watcher).
    #[must_use]
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// True once shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and joins every thread. In-flight connections
    /// finish their current request loop; queued connections are served
    /// before workers exit.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until `self.shutdown` becomes true (set externally via
    /// [`Server::shutdown_flag`]), then stops cleanly.
    pub fn wait(self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(25));
        }
        self.stop();
    }
}

/// Polls the nonblocking listener, shedding or enqueueing connections.
fn accept_loop(
    listener: &TcpListener,
    config: &ServeConfig,
    queue: &Queue,
    state: &AppState,
    shutdown: &AtomicBool,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_read_timeout(Some(config.read_timeout));
                let _ = stream.set_write_timeout(Some(config.write_timeout));
                // Responses are written as one frame; don't let Nagle
                // hold them back waiting for an ACK.
                let _ = stream.set_nodelay(true);
                let mut q = queue.lock();
                if q.len() >= config.queue_cap {
                    drop(q);
                    shed(stream, state);
                } else {
                    q.push_back(stream);
                    state.metrics.set_queue_depth(q.len());
                    drop(q);
                    state.metrics.record_connection();
                    queue.ready.notify_one();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
    // Wake every worker so they observe the flag and drain the queue.
    queue.ready.notify_all();
}

/// Writes the load-shedding response directly from the accept thread.
fn shed(mut stream: TcpStream, state: &AppState) {
    state.metrics.record_shed();
    let resp =
        Response::error(503, "server overloaded; retry shortly").with_header("Retry-After", "1");
    let _ = resp.write(&mut stream, false);
    let _ = stream.flush();
}

/// Pops connections until shutdown is requested and the queue is dry.
fn worker_loop(queue: &Queue, state: &AppState, shutdown: &AtomicBool) {
    loop {
        let stream = {
            let mut q = queue.lock();
            loop {
                if let Some(s) = q.pop_front() {
                    state.metrics.set_queue_depth(q.len());
                    break s;
                }
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _) = queue
                    .ready
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        };
        handle_connection(stream, state, shutdown);
    }
}

/// Serves one connection's keep-alive request loop.
fn handle_connection(stream: TcpStream, state: &AppState, shutdown: &AtomicBool) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean close between requests
            Err(HttpError::Io(_)) => {
                state.metrics.record_read_error();
                return;
            }
            Err(HttpError::Malformed(msg)) => {
                state.metrics.record_read_error();
                let _ = Response::error(400, msg).write(&mut writer, false);
                return;
            }
            Err(HttpError::TooLarge(what)) => {
                state.metrics.record_read_error();
                let _ = Response::error(413, format!("{what} too large")).write(&mut writer, false);
                return;
            }
        };
        let started = Instant::now();
        let (endpoint, response) = match catch_unwind(AssertUnwindSafe(|| route(state, &req))) {
            Ok(routed) => routed,
            Err(_) => (
                crate::metrics::Endpoint::Other,
                Response::error(500, "internal error while handling the request"),
            ),
        };
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        state.metrics.record(endpoint, response.status, micros);
        // Stop taking new requests on this connection once shutdown
        // begins, but always finish answering the one we read.
        let keep = req.keep_alive() && !shutdown.load(Ordering::SeqCst);
        if response.write(&mut writer, keep).is_err() || !keep {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_cap: 16,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serves_health_and_404_over_tcp() {
        let server = Server::start(tiny_config()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let (status, body) = client.get("/healthz").unwrap();
        assert_eq!(status, 200);
        assert!(String::from_utf8_lossy(&body).contains("\"ok\""));
        // Keep-alive: a second request on the same connection.
        let (status, _) = client.get("/missing").unwrap();
        assert_eq!(status, 404);
        server.stop();
    }

    #[test]
    fn zero_capacity_queue_sheds_with_retry_after() {
        let server = Server::start(ServeConfig {
            queue_cap: 0,
            ..tiny_config()
        })
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let resp = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(resp.status, 503);
        assert!(resp
            .headers
            .iter()
            .any(|(n, v)| n == "retry-after" && v == "1"));
        assert!(server.state().metrics.total_shed() >= 1);
        server.stop();
    }

    #[test]
    fn stop_refuses_new_connections() {
        let server = Server::start(tiny_config()).unwrap();
        let addr = server.addr();
        assert!(!server.is_shutting_down());
        server.stop();
        // The listener is gone; a fresh connect must fail (or be reset
        // on first use).
        let refused = match Client::connect(addr) {
            Err(_) => true,
            Ok(mut c) => c.get("/healthz").is_err(),
        };
        assert!(refused);
    }
}

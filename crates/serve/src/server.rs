//! The event-driven HTTP server: a readiness-polling reactor thread, a
//! bounded *request* dispatch queue, and a fixed worker pool for the
//! CPU-bound routing work.
//!
//! Threading model (see DESIGN.md §"Event-driven serve core"):
//!
//! - One reactor thread owns the listener and every connection socket,
//!   multiplexed over `poll(2)` ([`crate::poll`]). Connections are
//!   nonblocking state machines ([`crate::conn`]): the reactor reads
//!   available bytes, frames as many complete requests as arrived
//!   (pipelining), and flushes buffered responses. An idle keep-alive
//!   connection costs one pollfd entry — not a thread, not a worker.
//! - Parsed requests go into a bounded dispatch queue; when it is full
//!   the reactor answers `503` + `Retry-After` itself — workers never
//!   see shed load. Requests whose exact `(target, body)` bytes were
//!   answered before are served from the response memo
//!   ([`crate::rcache`]) without touching the queue at all.
//! - `workers` threads block on a condvar over the queue. Each pops a
//!   *request* (not a connection), routes it under `catch_unwind`,
//!   serializes the response, and hands the frame back to the reactor
//!   through a completion list plus a wake byte on a loopback TCP pair.
//!   A connection therefore occupies a worker only while one of its
//!   requests is actually being routed or simulated.
//! - Shutdown sets an atomic flag: the reactor closes the listener and
//!   stops reading, workers drain the queue and exit, in-flight
//!   responses still flush, and [`Server::stop`] joins everyone.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use crate::api::{route, AppState};
use crate::conn::DoneResponse;
use crate::http::{Request, Response};
use crate::rcache::{ResponseCache, DEFAULT_CACHE_BYTES};
use crate::reactor::Reactor;

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads routing requests.
    pub workers: usize,
    /// Parsed requests allowed to wait for a worker; beyond this the
    /// reactor sheds with `503`. Zero sheds every dispatched request
    /// (useful for deterministic overload tests).
    pub queue_cap: usize,
    /// Read deadline: how long a connection may sit idle mid-request
    /// (or between keep-alive requests) before the reactor evicts it.
    pub read_timeout: Duration,
    /// Write deadline: how long a client may refuse to drain a pending
    /// response before the reactor evicts the connection.
    pub write_timeout: Duration,
    /// Streaming threads inside each simulation evaluation.
    pub sim_jobs: usize,
    /// Byte budget for the serving-layer response memo; `0` disables it.
    pub response_cache_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            // The queue now holds requests, not connections, and a
            // pipelining client can legitimately burst dozens at once.
            queue_cap: 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            sim_jobs: 1,
            response_cache_bytes: DEFAULT_CACHE_BYTES,
        }
    }
}

/// One parsed request travelling reactor → worker. `slot`/`gen` name
/// the connection; `seq` orders the response within it.
#[derive(Debug)]
pub(crate) struct Job {
    pub slot: usize,
    pub gen: u64,
    pub seq: u64,
    pub req: Request,
}

/// One serialized response travelling worker → reactor.
#[derive(Debug)]
pub(crate) struct Completion {
    pub slot: usize,
    pub gen: u64,
    pub seq: u64,
    pub frame: Vec<u8>,
    pub close: bool,
}

/// The bounded request queue between reactor and workers.
#[derive(Debug)]
pub(crate) struct Dispatch {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    cap: usize,
}

impl Dispatch {
    pub fn new(cap: usize) -> Self {
        Self {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            cap,
        }
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<Job>> {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues unless full. Returns the depth after the push, or
    /// `None` when the request must be shed.
    pub fn try_push(&self, job: Job) -> Option<usize> {
        let mut q = self.lock();
        if q.len() >= self.cap {
            return None;
        }
        q.push_back(job);
        let depth = q.len();
        drop(q);
        self.ready.notify_one();
        Some(depth)
    }

    /// Blocks for the next job. Returns `None` once shutdown is
    /// requested *and* the queue is dry — queued requests are always
    /// answered.
    pub fn pop(&self, shutdown: &AtomicBool) -> Option<(Job, usize)> {
        let mut q = self.lock();
        loop {
            if let Some(job) = q.pop_front() {
                let depth = q.len();
                return Some((job, depth));
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }
}

/// Completed responses waiting for the reactor to collect them.
#[derive(Debug, Default)]
pub(crate) struct Completions {
    list: Mutex<Vec<Completion>>,
}

impl Completions {
    pub fn push(&self, done: Completion) {
        self.list
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(done);
    }

    pub fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.list.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// A loopback TCP pair used as the worker → reactor wake pipe, so the
/// reactor's `poll(2)` returns the moment a completion lands. (A real
/// pipe would need another syscall wrapper; a loopback socket pair is
/// dependency-free and identical for this purpose.)
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    rx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((tx, rx))
}

/// A running service; dropping it without [`Server::stop`] detaches the
/// threads (they keep serving until the process exits).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<AppState>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the reactor thread and worker pool, and returns
    /// immediately. The service is ready as soon as this returns.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (wake_tx, wake_rx) = wake_pair()?;
        let state = Arc::new(AppState::with_cache(
            config.sim_jobs,
            config.response_cache_bytes,
        ));
        let shutdown = Arc::new(AtomicBool::new(false));
        let dispatch = Arc::new(Dispatch::new(config.queue_cap));
        let completions = Arc::new(Completions::default());
        let mut threads = Vec::with_capacity(config.workers + 1);

        for i in 0..config.workers.max(1) {
            let dispatch = Arc::clone(&dispatch);
            let completions = Arc::clone(&completions);
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            let mut wake = wake_tx.try_clone()?;
            threads.push(
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&dispatch, &completions, &mut wake, &state, &shutdown)
                    })
                    .expect("spawn worker"),
            );
        }
        {
            let dispatch = Arc::clone(&dispatch);
            let completions = Arc::clone(&completions);
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            let config = config.clone();
            threads.push(
                thread::Builder::new()
                    .name("serve-reactor".to_string())
                    .spawn(move || {
                        // Keep one wake-pipe sender alive on this side so
                        // worker exit never turns the pipe into EOF spam.
                        let _wake_keep = wake_tx;
                        Reactor::new(config).run(
                            listener,
                            wake_rx,
                            &dispatch,
                            &completions,
                            &state,
                            &shutdown,
                        );
                    })
                    .expect("spawn reactor"),
            );
        }
        Ok(Server {
            addr,
            state,
            shutdown,
            threads,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state (session + metrics + memo).
    #[must_use]
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// A clonable flag that stops the server when set (e.g. from a
    /// signal handler or stdin watcher).
    #[must_use]
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// True once shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and joins every thread. In-flight requests are
    /// answered and their responses flushed; idle connections close.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until `self.shutdown` becomes true (set externally via
    /// [`Server::shutdown_flag`]), then stops cleanly.
    pub fn wait(self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(25));
        }
        self.stop();
    }
}

/// Routes requests until shutdown is requested and the queue is dry.
fn worker_loop(
    dispatch: &Dispatch,
    completions: &Completions,
    wake: &mut TcpStream,
    state: &AppState,
    shutdown: &AtomicBool,
) {
    while let Some((job, depth)) = dispatch.pop(shutdown) {
        state.metrics.set_queue_depth(depth);
        let started = Instant::now();
        let (endpoint, response) = match catch_unwind(AssertUnwindSafe(|| route(state, &job.req))) {
            Ok(routed) => routed,
            Err(_) => (
                crate::metrics::Endpoint::Other,
                Response::error(500, "internal error while handling the request"),
            ),
        };
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        state.metrics.record(endpoint, response.status, micros);
        if ResponseCache::cacheable(&job.req.method, job.req.body.len()) {
            state
                .rcache
                .put(&job.req.target, &job.req.body, endpoint, &response);
        }
        // Stop offering keep-alive once shutdown begins, but always
        // finish answering the request we took.
        let keep = job.req.keep_alive() && !shutdown.load(Ordering::SeqCst);
        let done = DoneResponse::serialize(&response, keep);
        completions.push(Completion {
            slot: job.slot,
            gen: job.gen,
            seq: job.seq,
            frame: done.frame,
            close: done.close,
        });
        let _ = wake.write(&[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_cap: 16,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serves_health_and_404_over_tcp() {
        let server = Server::start(tiny_config()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let (status, body) = client.get("/healthz").unwrap();
        assert_eq!(status, 200);
        assert!(String::from_utf8_lossy(&body).contains("\"ok\""));
        // Keep-alive: a second request on the same connection.
        let (status, _) = client.get("/missing").unwrap();
        assert_eq!(status, 404);
        server.stop();
    }

    #[test]
    fn zero_capacity_queue_sheds_with_retry_after() {
        let server = Server::start(ServeConfig {
            queue_cap: 0,
            ..tiny_config()
        })
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let resp = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(resp.status, 503);
        assert!(resp
            .headers
            .iter()
            .any(|(n, v)| n == "retry-after" && v == "1"));
        assert!(server.state().metrics.total_shed() >= 1);
        server.stop();
    }

    #[test]
    fn stop_refuses_new_connections() {
        let server = Server::start(tiny_config()).unwrap();
        let addr = server.addr();
        assert!(!server.is_shutting_down());
        server.stop();
        // The listener is gone; a fresh connect must fail (or be reset
        // on first use).
        let refused = match Client::connect(addr) {
            Err(_) => true,
            Ok(mut c) => c.get("/healthz").is_err(),
        };
        assert!(refused);
    }

    #[test]
    fn many_idle_connections_cost_no_workers() {
        // With 1 worker and 64 open connections, requests on any of
        // them must still be answered: idle connections no longer pin
        // a worker each.
        let server = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let mut clients: Vec<Client> = (0..64)
            .map(|_| Client::connect(server.addr()).unwrap())
            .collect();
        for client in clients.iter_mut().rev() {
            let (status, _) = client.get("/healthz").unwrap();
            assert_eq!(status, 200);
        }
        assert!(server.state().metrics.connections_peak() >= 64);
        server.stop();
    }
}

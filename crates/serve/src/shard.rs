//! Thin shard mode: rendezvous routing of `/v1/simulate` requests
//! across a static membership list.
//!
//! Every node is started with the same `--peers host:port,...` list and
//! names its own entry with `--advertise`. Each simulate request body is
//! hashed with the store's rendezvous function
//! ([`impact_store::shard::owner_index`]); the winning peer owns the
//! key. A node that receives a request it does not own proxies it to
//! the owner over the plain blocking [`Client`] and relays the answer
//! verbatim — so all results (and store entries, when the owner runs
//! with `--store`) for one body concentrate on one node, whichever peer
//! the client happened to hit.
//!
//! Proxied requests carry [`FORWARDED_HEADER`]; a node that sees the
//! marker always answers locally. Membership disagreement between peers
//! can therefore cost at most one extra hop, never a forwarding cycle.
//! A dead or unreachable owner maps to `502` rather than a hang: the
//! proxy connect uses bounded I/O timeouts.

use std::io;
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

use impact_store::shard::owner_index;
use impact_support::json::{Json, ToJson};

use crate::client::Client;
use crate::http::{Request, Response};

/// Marker header carried by proxied requests. Receivers answer locally
/// instead of re-routing, which bounds any forwarding chain to one hop.
pub const FORWARDED_HEADER: &str = "x-impact-forwarded";

/// Rendezvous router + shard counters for one serve process.
#[derive(Debug)]
pub struct ShardRouter {
    /// Full membership, including this node.
    peers: Vec<String>,
    /// Index of this node's own entry in `peers`.
    self_index: usize,
    /// Simulate requests answered by this node (owned or marked).
    local: AtomicU64,
    /// Simulate requests proxied to their owner.
    forwarded: AtomicU64,
    /// Proxy attempts that failed (mapped to `502`).
    errors: AtomicU64,
}

impl ShardRouter {
    /// Builds a router over `peers`, identifying this node by its
    /// `advertise` entry.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when `advertise` is not one of `peers` (the
    /// membership list must include every node, this one included).
    pub fn new(peers: Vec<String>, advertise: &str) -> io::Result<ShardRouter> {
        let self_index = peers.iter().position(|p| p == advertise).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("advertised address {advertise} is not in the peer list"),
            )
        })?;
        Ok(ShardRouter {
            peers,
            self_index,
            local: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        })
    }

    /// The peer that owns `key`, or `None` when this node does.
    #[must_use]
    pub fn owner_of(&self, key: &[u8]) -> Option<&str> {
        let idx = owner_index(&self.peers, key).unwrap_or(self.self_index);
        (idx != self.self_index).then(|| self.peers[idx].as_str())
    }

    /// Counts one simulate request answered on this node.
    pub fn note_local(&self) {
        self.local.fetch_add(1, Relaxed);
    }

    /// Proxies `req` to `peer` (adding the forwarded marker) and relays
    /// the owner's response. Peer failure becomes a `502`.
    #[must_use]
    pub fn forward(&self, peer: &str, req: &Request) -> Response {
        match self.try_forward(peer, req) {
            Ok(resp) => {
                self.forwarded.fetch_add(1, Relaxed);
                resp
            }
            Err(e) => {
                self.errors.fetch_add(1, Relaxed);
                Response::error(502, format!("shard owner {peer} is unreachable: {e}"))
            }
        }
    }

    fn try_forward(&self, peer: &str, req: &Request) -> io::Result<Response> {
        let addr = peer.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "peer resolves to no address",
            )
        })?;
        let mut client =
            Client::connect_with_timeouts(addr, Duration::from_secs(10), Duration::from_secs(10))?;
        let resp = client.request_with_headers(
            &req.method,
            req.path(),
            &[(FORWARDED_HEADER, "1")],
            &req.body,
        )?;
        Ok(Response {
            status: resp.status,
            headers: vec![("Content-Type".to_string(), "application/json".to_string())],
            body: resp.body,
        })
    }

    /// The `shard` section of `GET /metrics`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "peers".to_string(),
                Json::Arr(self.peers.iter().map(|p| p.to_json()).collect()),
            ),
            ("self".to_string(), self.peers[self.self_index].to_json()),
            (
                "shard_local".to_string(),
                self.local.load(Relaxed).to_json(),
            ),
            (
                "shard_forwarded".to_string(),
                self.forwarded.load(Relaxed).to_json(),
            ),
            (
                "shard_errors".to_string(),
                self.errors.load(Relaxed).to_json(),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peers() -> Vec<String> {
        vec![
            "127.0.0.1:7001".to_string(),
            "127.0.0.1:7002".to_string(),
            "127.0.0.1:7003".to_string(),
        ]
    }

    #[test]
    fn advertise_must_be_a_peer() {
        assert!(ShardRouter::new(peers(), "127.0.0.1:7002").is_ok());
        let err = ShardRouter::new(peers(), "127.0.0.1:9999").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn every_key_has_exactly_one_owner() {
        let routers: Vec<ShardRouter> = peers()
            .iter()
            .map(|p| ShardRouter::new(peers(), p).unwrap())
            .collect();
        for key in [&b"alpha"[..], b"beta", b"gamma", b"{\"program\": \"x\"}"] {
            let locals = routers.iter().filter(|r| r.owner_of(key).is_none()).count();
            assert_eq!(locals, 1, "key {key:?} must have exactly one local owner");
            // Non-owners all agree on who the owner is.
            let owners: Vec<&str> = routers.iter().filter_map(|r| r.owner_of(key)).collect();
            assert_eq!(owners.len(), 2);
            assert_eq!(owners[0], owners[1]);
        }
    }

    #[test]
    fn unreachable_owner_maps_to_502() {
        let router = ShardRouter::new(peers(), "127.0.0.1:7001").unwrap();
        let req = Request {
            method: "POST".to_string(),
            target: "/v1/simulate".to_string(),
            http11: true,
            headers: Vec::new(),
            body: b"{}".to_vec(),
        };
        // Port 1 on localhost: connection refused immediately.
        let resp = router.forward("127.0.0.1:1", &req);
        assert_eq!(resp.status, 502);
        assert!(String::from_utf8_lossy(&resp.body).contains("unreachable"));
        let doc = router.to_json();
        assert_eq!(doc.get("shard_errors").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("shard_forwarded").and_then(Json::as_u64), Some(0));
    }
}

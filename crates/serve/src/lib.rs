//! `impact-serve` — an event-driven placement-and-simulation HTTP
//! service over the IMPACT-I evaluation engine.
//!
//! The service turns the repo's batch tooling into a long-lived daemon:
//! a dependency-free HTTP/1.1 server (plain `std::net` plus one
//! `poll(2)` wrapper) built as a readiness-polling reactor. One thread
//! multiplexes every connection over [`poll`]: nonblocking sockets feed
//! per-connection state machines ([`conn`]) that frame requests
//! incrementally — so HTTP/1.1 pipelining works — and buffer response
//! writes. Parsed requests go to a fixed worker pool through a bounded
//! dispatch queue that sheds overload with `503` + `Retry-After`; a
//! connection occupies a worker only while a request is actually being
//! routed or simulated, so 10k idle keep-alive connections cost 10k
//! pollfd entries, not 10k threads. The reactor enforces read/write
//! deadlines (slowloris eviction) and graceful shutdown on SIGTERM or
//! stdin EOF. Repeated POST bodies are answered from a byte-exact
//! response memo ([`rcache`]) without touching the worker pool at all.
//!
//! Its endpoints mirror the CLI surfaces:
//!
//! - `POST /v1/lint` — the `impact-analyze` registry over a submitted
//!   program (same JSON document as `impact lint --json`, rendered by
//!   the same [`impact_analyze::reports_to_json`] call).
//! - `POST /v1/layout` — the five-step IMPACT-I pipeline, returning the
//!   placement and its quality metrics.
//! - `POST /v1/simulate` — cache evaluation through one long-lived,
//!   fingerprint-keyed
//!   [`SimSession`](impact_experiments::session::SimSession), so a
//!   placement evaluated twice is memo-served rather than re-streamed.
//! - `GET /metrics` — request counters, global and per-endpoint latency
//!   histograms, queue depth, connection gauges, response-memo and
//!   session memo hit rates.
//!
//! The [`client`] module is a matching minimal HTTP client used by the
//! integration tests, the CI smoke check, and the `loadgen` benchmark
//! binary (which writes `BENCH_serve.json`, including the
//! connection-count sweep).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub(crate) mod conn;
pub mod http;
pub mod metrics;
pub mod poll;
pub mod rcache;
pub(crate) mod reactor;
pub mod server;
pub mod shard;
pub mod signal;

pub use api::{simulate_response_json, AppState};
pub use client::{Client, ClientResponse};
pub use http::{Request, Response};
pub use metrics::{Endpoint, Metrics, LATENCY_BUCKETS_US};
pub use rcache::ResponseCache;
pub use server::{ServeConfig, Server};
pub use shard::{ShardRouter, FORWARDED_HEADER};

//! `impact-serve` — a concurrent placement-and-simulation HTTP service
//! over the IMPACT-I evaluation engine.
//!
//! The service turns the repo's batch tooling into a long-lived daemon:
//! a dependency-free HTTP/1.1 server (plain `std::net`) with a fixed
//! worker pool, a bounded accept queue that sheds overload with `503 ` +
//! `Retry-After`, per-request timeouts, and graceful shutdown on
//! SIGTERM or stdin EOF. Its endpoints mirror the CLI surfaces:
//!
//! - `POST /v1/lint` — the `impact-analyze` registry over a submitted
//!   program (same JSON document as `impact lint --json`, rendered by
//!   the same [`impact_analyze::reports_to_json`] call).
//! - `POST /v1/layout` — the five-step IMPACT-I pipeline, returning the
//!   placement and its quality metrics.
//! - `POST /v1/simulate` — cache evaluation through one long-lived,
//!   fingerprint-keyed
//!   [`SimSession`](impact_experiments::session::SimSession), so a
//!   placement evaluated twice is memo-served rather than re-streamed.
//! - `GET /metrics` — request counters, a latency histogram, queue
//!   depth, and the session's memo hit rate.
//!
//! The [`client`] module is a matching minimal HTTP client used by the
//! integration tests, the CI smoke check, and the `loadgen` benchmark
//! binary (which writes `BENCH_serve.json`).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod metrics;
pub mod server;
pub mod signal;

pub use api::{simulate_response_json, AppState};
pub use client::{Client, ClientResponse};
pub use http::{Request, Response};
pub use metrics::{Endpoint, Metrics, LATENCY_BUCKETS_US};
pub use server::{ServeConfig, Server};

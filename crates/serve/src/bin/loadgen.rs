//! `loadgen` — workload replay and latency benchmark for `impact serve`.
//!
//! Two modes:
//!
//! - `loadgen --smoke --addr HOST:PORT` drives one request per endpoint
//!   and exits nonzero unless every response is healthy (used by CI).
//! - `loadgen --addr HOST:PORT [--connections N] [--requests N] [--out
//!   PATH]` replays three phases over `N` parallel connections and
//!   writes throughput + p50/p90/p99 latency to `BENCH_serve.json`:
//!
//!   1. **cold** — every simulate request carries a fresh seed, so each
//!      one streams a new trace through the session;
//!   2. **warm** — every request is identical, so the session serves
//!      memoized statistics without re-streaming;
//!   3. **mixed** — lint, layout, simulate, and metrics interleaved.
//!
//!   The warm/cold throughput ratio is the memoization payoff the
//!   service exists to provide.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::thread;
use std::time::Instant;

use impact_serve::client::Client;
use impact_support::json::{parse as parse_json, Json, ToJson};

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--smoke] [--connections N] \
         [--requests N] [--out PATH] [--seed N]"
    );
    ExitCode::FAILURE
}

struct Options {
    addr: SocketAddr,
    smoke: bool,
    connections: usize,
    requests: usize,
    out: String,
    seed: u64,
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut addr = None;
    let mut smoke = false;
    let mut connections = 4usize;
    let mut requests = 200usize;
    let mut out = "BENCH_serve.json".to_string();
    let mut seed = 1_000_003u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                let raw = args.next().ok_or_else(usage)?;
                addr = raw.to_socket_addrs().ok().and_then(|mut a| a.next());
                if addr.is_none() {
                    eprintln!("loadgen: cannot resolve --addr {raw}");
                    return Err(ExitCode::FAILURE);
                }
            }
            "--smoke" => smoke = true,
            "--connections" => {
                connections = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(usage)?;
            }
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(usage)?;
            }
            "--out" => out = args.next().ok_or_else(usage)?,
            "--seed" => seed = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?,
            _ => return Err(usage()),
        }
    }
    let Some(addr) = addr else {
        return Err(usage());
    };
    Ok(Options {
        addr,
        smoke,
        connections,
        requests,
        out,
        seed,
    })
}

/// The benchmark program, shipped as impact-asm text in every request.
fn program_text() -> String {
    let workload = impact_workloads::by_name("cmp").expect("cmp workload exists");
    impact_asm::print_program(&workload.program)
}

fn simulate_body(program: &Json, seed: u64) -> String {
    // Enough dynamic instructions that trace streaming dominates a cold
    // request — the memoized path skips exactly this work.
    format!(
        r#"{{"program": {program}, "seed": {seed}, "max_instrs": 2000000,
           "configs": [{{"size": 2048}}, {{"size": 512, "assoc": 2}}]}}"#
    )
}

fn lint_body(program: &Json) -> String {
    format!(r#"{{"program": {program}, "name": "loadgen", "runs": 2, "max_instrs": 40000}}"#)
}

fn layout_body(program: &Json) -> String {
    format!(r#"{{"program": {program}, "runs": 2, "max_instrs": 40000}}"#)
}

fn smoke(opts: &Options) -> ExitCode {
    let program = Json::Str(program_text());
    let mut client = match Client::connect(opts.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: cannot connect to {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    let checks: [(&str, &str, Option<String>); 5] = [
        ("GET", "/healthz", None),
        ("POST", "/v1/lint", Some(lint_body(&program))),
        ("POST", "/v1/layout", Some(layout_body(&program))),
        (
            "POST",
            "/v1/simulate",
            Some(simulate_body(&program, opts.seed)),
        ),
        ("GET", "/metrics", None),
    ];
    for (method, path, body) in checks {
        match client.request(method, path, body.as_deref()) {
            Ok(resp) if resp.status == 200 && !resp.body.is_empty() => {
                println!("smoke {method} {path}: 200 ({} bytes)", resp.body.len());
            }
            Ok(resp) => {
                eprintln!(
                    "smoke {method} {path}: status {} body {}",
                    resp.status,
                    String::from_utf8_lossy(&resp.body)
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("smoke {method} {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("smoke: all endpoints healthy");
    ExitCode::SUCCESS
}

/// Latencies (µs) from one phase, plus its wall-clock seconds.
struct Phase {
    latencies_us: Vec<u64>,
    wall_secs: f64,
}

impl Phase {
    fn rps(&self) -> f64 {
        if self.wall_secs == 0.0 {
            0.0
        } else {
            self.latencies_us.len() as f64 / self.wall_secs
        }
    }

    /// Nearest-rank percentile: the ⌈p/100 × n⌉-th smallest sample
    /// (1-based). Always an observed latency — never interpolated — and
    /// p100 is exactly the maximum.
    fn percentile(&self, p: f64) -> u64 {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "requests".to_string(),
                (self.latencies_us.len() as u64).to_json(),
            ),
            ("wall_secs".to_string(), self.wall_secs.to_json()),
            ("rps".to_string(), self.rps().to_json()),
            ("p50_us".to_string(), self.percentile(50.0).to_json()),
            ("p90_us".to_string(), self.percentile(90.0).to_json()),
            ("p99_us".to_string(), self.percentile(99.0).to_json()),
        ])
    }
}

/// Runs `total` requests across `connections` threads; `body(i)` builds
/// the i-th request body (None means `GET /metrics`).
fn run_phase(
    addr: SocketAddr,
    connections: usize,
    total: usize,
    body: impl Fn(usize) -> (String, Option<String>) + Send + Sync,
) -> Result<Phase, String> {
    let started = Instant::now();
    let latencies = thread::scope(|scope| {
        let body = &body;
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                scope.spawn(move || -> Result<Vec<u64>, String> {
                    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
                    let mut lat = Vec::new();
                    let mut i = c;
                    while i < total {
                        let (path, payload) = body(i);
                        let t = Instant::now();
                        let resp = match payload {
                            Some(ref json) => client.post_json(&path, json),
                            None => client.request("GET", &path, None),
                        };
                        match resp {
                            Ok(r) if r.status == 200 => {
                                lat.push(
                                    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX),
                                );
                            }
                            Ok(r) if r.status == 503 => {
                                // Shed: honor Retry-After and reconnect
                                // (the server closes shed connections).
                                thread::sleep(std::time::Duration::from_millis(50));
                                client =
                                    Client::connect(addr).map_err(|e| format!("reconnect: {e}"))?;
                                continue;
                            }
                            Ok(r) => {
                                return Err(format!(
                                    "{path}: status {} body {}",
                                    r.status,
                                    String::from_utf8_lossy(&r.body)
                                ))
                            }
                            Err(e) => return Err(format!("{path}: {e}")),
                        }
                        i += connections;
                    }
                    Ok(lat)
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            match h.join() {
                Ok(Ok(lat)) => all.extend(lat),
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err("phase worker panicked".to_string()),
            }
        }
        Ok(all)
    })?;
    Ok(Phase {
        latencies_us: latencies,
        wall_secs: started.elapsed().as_secs_f64(),
    })
}

fn bench(opts: &Options) -> ExitCode {
    let program = Json::Str(program_text());
    println!(
        "loadgen: {} requests/phase over {} connections against {}",
        opts.requests, opts.connections, opts.addr
    );

    // Phase 1 — cold: a fresh seed per request forces a new trace each
    // time; this is the price of evaluation without memoization.
    let seed = opts.seed;
    let cold = match run_phase(opts.addr, opts.connections, opts.requests, |i| {
        (
            "/v1/simulate".to_string(),
            Some(simulate_body(&program, seed + 1 + i as u64)),
        )
    }) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("loadgen: cold phase failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "cold:  {:>8.1} req/s  p99 {:>8} us",
        cold.rps(),
        cold.percentile(99.0)
    );

    // Phase 2 — warm: every request identical, so after the first the
    // session serves memoized statistics without re-streaming.
    let warm = match run_phase(opts.addr, opts.connections, opts.requests, |_| {
        (
            "/v1/simulate".to_string(),
            Some(simulate_body(&program, seed)),
        )
    }) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("loadgen: warm phase failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "warm:  {:>8.1} req/s  p99 {:>8} us",
        warm.rps(),
        warm.percentile(99.0)
    );

    // Phase 3 — mixed: the workload shape a real client produces.
    let mixed = match run_phase(opts.addr, opts.connections, opts.requests, |i| {
        match i % 8 {
            0 => ("/v1/lint".to_string(), Some(lint_body(&program))),
            1 => ("/v1/layout".to_string(), Some(layout_body(&program))),
            7 => ("/metrics".to_string(), None),
            _ => (
                "/v1/simulate".to_string(),
                Some(simulate_body(&program, seed)),
            ),
        }
    }) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("loadgen: mixed phase failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "mixed: {:>8.1} req/s  p99 {:>8} us",
        mixed.rps(),
        mixed.percentile(99.0)
    );

    let metrics_after = Client::connect(opts.addr)
        .and_then(|mut c| c.get("/metrics"))
        .ok()
        .and_then(|(status, body)| {
            if status != 200 {
                return None;
            }
            parse_json(std::str::from_utf8(&body).ok()?).ok()
        })
        .unwrap_or(Json::Null);

    let speedup = if cold.rps() == 0.0 {
        0.0
    } else {
        warm.rps() / cold.rps()
    };
    println!("warm/cold speedup: {speedup:.1}x");

    let doc = Json::Obj(vec![
        ("bench".to_string(), "impact-serve loadgen".to_json()),
        ("addr".to_string(), opts.addr.to_string().to_json()),
        (
            "connections".to_string(),
            (opts.connections as u64).to_json(),
        ),
        (
            "requests_per_phase".to_string(),
            (opts.requests as u64).to_json(),
        ),
        ("cold".to_string(), cold.to_json()),
        ("warm".to_string(), warm.to_json()),
        ("mixed".to_string(), mixed.to_json()),
        ("warm_over_cold_speedup".to_string(), speedup.to_json()),
        ("server_metrics".to_string(), metrics_after),
    ]);
    if let Err(e) = std::fs::write(&opts.out, doc.to_string_pretty() + "\n") {
        eprintln!("loadgen: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", opts.out);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    if opts.smoke {
        smoke(&opts)
    } else {
        bench(&opts)
    }
}

#[cfg(test)]
mod tests {
    use super::Phase;

    fn phase(latencies_us: Vec<u64>) -> Phase {
        Phase {
            latencies_us,
            wall_secs: 1.0,
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        // Canonical nearest-rank example: 5 samples. p30 → rank
        // ⌈0.3×5⌉ = 2 → second smallest.
        let p = phase(vec![15, 20, 35, 40, 50]);
        assert_eq!(p.percentile(30.0), 20);
        assert_eq!(p.percentile(40.0), 20);
        assert_eq!(p.percentile(50.0), 35);
        assert_eq!(p.percentile(100.0), 50);
        // p99 of 5 samples is the max (rank ⌈4.95⌉ = 5), not an
        // interpolated near-max value.
        assert_eq!(p.percentile(99.0), 50);
    }

    #[test]
    fn percentile_handles_degenerate_inputs() {
        assert_eq!(phase(vec![]).percentile(50.0), 0);
        let one = phase(vec![7]);
        assert_eq!(one.percentile(1.0), 7);
        assert_eq!(one.percentile(50.0), 7);
        assert_eq!(one.percentile(100.0), 7);
        // p0 clamps to the minimum rather than indexing below the data.
        assert_eq!(phase(vec![3, 9]).percentile(0.0), 3);
    }

    #[test]
    fn percentile_is_always_an_observed_sample() {
        let samples = vec![100, 200, 300, 400, 500, 600, 700, 800, 900, 1000];
        let p = phase(samples.clone());
        for q in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
            assert!(samples.contains(&p.percentile(q)), "p{q} not a sample");
        }
        // With n = 10, p90 is the 9th smallest — the old midpoint-round
        // definition returned the 9th too, but p50 differed: nearest
        // rank gives the 5th (500), not the 6th.
        assert_eq!(p.percentile(50.0), 500);
        assert_eq!(p.percentile(90.0), 900);
    }
}

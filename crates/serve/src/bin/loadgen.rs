//! `loadgen` — workload replay and latency benchmark for `impact serve`.
//!
//! Two modes:
//!
//! - `loadgen --smoke --addr HOST:PORT` drives one request per endpoint
//!   and exits nonzero unless every response is healthy (used by CI).
//! - `loadgen --addr HOST:PORT [--connections N] [--requests N] [--out
//!   PATH] [--sweep LIST] [--min-warm-rps N]` replays four phases over
//!   `N` parallel keep-alive connections (one pool, reused across every
//!   phase) and writes throughput + p50/p90/p99 latency to
//!   `BENCH_serve.json`:
//!
//!   1. **cold** — every simulate request carries a fresh seed, so each
//!      one streams a new trace through the session;
//!   2. **warm** — every request is identical, so the serving layer
//!      answers from its memos without re-streaming;
//!   3. **warm_pipelined** — the same identical request, sent in
//!      pipelined batches so the reactor frames and answers many
//!      requests per readable event;
//!   4. **mixed** — lint, layout, simulate, and metrics interleaved.
//!
//!   `--sweep 4,16,64,...` additionally reruns the warm pipelined phase
//!   at each listed connection count, producing a closed-loop
//!   latency-under-load curve (the `sweep` section of the output).
//!   `--min-warm-rps N` turns the run into a regression gate: exit
//!   nonzero unless the warm pipelined phase is *strictly* faster than
//!   `N` req/s (CI passes the recorded thread-per-connection baseline).
//!
//! A third mode, `loadgen --warm-restart --addr HOST:PORT`, targets a
//! *restarted* server whose `--store` directory already holds the
//! results of an earlier bench run: it replays only the identical-seed
//! warm phase (which the fresh process must answer from disk, having
//! streamed nothing) and merges a `warm_restart` section — plus the
//! restart-over-cold speedup and the post-run `/metrics` snapshot —
//! into the existing `--out` document from the cold run.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::thread;
use std::time::Instant;

use impact_serve::client::Client;
use impact_support::json::{parse as parse_json, Json, ToJson};

/// Requests sent back-to-back per pipelined batch.
const PIPELINE_DEPTH: usize = 16;

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--smoke] [--warm-restart] \
         [--connections N] [--requests N] [--out PATH] [--seed N] \
         [--sweep N,N,...] [--min-warm-rps N]"
    );
    ExitCode::FAILURE
}

struct Options {
    addr: SocketAddr,
    smoke: bool,
    /// Replay only the warm phase against a restarted server and merge
    /// the results into an existing `--out` document.
    warm_restart: bool,
    connections: usize,
    requests: usize,
    out: String,
    seed: u64,
    /// Connection counts for the warm pipelined sweep (empty: no sweep).
    sweep: Vec<usize>,
    /// Gate: fail unless warm pipelined req/s strictly exceeds this.
    min_warm_rps: Option<f64>,
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut addr = None;
    let mut smoke = false;
    let mut warm_restart = false;
    let mut connections = 4usize;
    let mut requests = 200usize;
    let mut out = "BENCH_serve.json".to_string();
    let mut seed = 1_000_003u64;
    let mut sweep = Vec::new();
    let mut min_warm_rps = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                let raw = args.next().ok_or_else(usage)?;
                addr = raw.to_socket_addrs().ok().and_then(|mut a| a.next());
                if addr.is_none() {
                    eprintln!("loadgen: cannot resolve --addr {raw}");
                    return Err(ExitCode::FAILURE);
                }
            }
            "--smoke" => smoke = true,
            "--warm-restart" => warm_restart = true,
            "--connections" => {
                connections = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(usage)?;
            }
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(usage)?;
            }
            "--out" => out = args.next().ok_or_else(usage)?,
            "--seed" => seed = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?,
            "--sweep" => {
                let raw = args.next().ok_or_else(usage)?;
                sweep = raw
                    .split(',')
                    .map(|n| n.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .ok()
                    .filter(|v| !v.is_empty() && v.iter().all(|&n| n >= 1))
                    .ok_or_else(usage)?;
            }
            "--min-warm-rps" => {
                min_warm_rps = Some(
                    args.next()
                        .and_then(|n| n.parse::<f64>().ok())
                        .filter(|&n| n >= 0.0)
                        .ok_or_else(usage)?,
                );
            }
            _ => return Err(usage()),
        }
    }
    let Some(addr) = addr else {
        return Err(usage());
    };
    Ok(Options {
        addr,
        smoke,
        warm_restart,
        connections,
        requests,
        out,
        seed,
        sweep,
        min_warm_rps,
    })
}

/// The benchmark program, shipped as impact-asm text in every request.
fn program_text() -> String {
    let workload = impact_workloads::by_name("cmp").expect("cmp workload exists");
    impact_asm::print_program(&workload.program)
}

fn simulate_body(program: &Json, seed: u64) -> String {
    // Enough dynamic instructions that trace streaming dominates a cold
    // request — the memoized path skips exactly this work.
    format!(
        r#"{{"program": {program}, "seed": {seed}, "max_instrs": 2000000,
           "configs": [{{"size": 2048}}, {{"size": 512, "assoc": 2}}]}}"#
    )
}

fn lint_body(program: &Json) -> String {
    format!(r#"{{"program": {program}, "name": "loadgen", "runs": 2, "max_instrs": 40000}}"#)
}

fn layout_body(program: &Json) -> String {
    format!(r#"{{"program": {program}, "runs": 2, "max_instrs": 40000}}"#)
}

fn smoke(opts: &Options) -> ExitCode {
    let program = Json::Str(program_text());
    let mut client = match Client::connect(opts.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: cannot connect to {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    let checks: [(&str, &str, Option<String>); 5] = [
        ("GET", "/healthz", None),
        ("POST", "/v1/lint", Some(lint_body(&program))),
        ("POST", "/v1/layout", Some(layout_body(&program))),
        (
            "POST",
            "/v1/simulate",
            Some(simulate_body(&program, opts.seed)),
        ),
        ("GET", "/metrics", None),
    ];
    for (method, path, body) in checks {
        match client.request(method, path, body.as_deref()) {
            Ok(resp) if resp.status == 200 && !resp.body.is_empty() => {
                println!("smoke {method} {path}: 200 ({} bytes)", resp.body.len());
            }
            Ok(resp) => {
                eprintln!(
                    "smoke {method} {path}: status {} body {}",
                    resp.status,
                    String::from_utf8_lossy(&resp.body)
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("smoke {method} {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("smoke: all endpoints healthy");
    ExitCode::SUCCESS
}

/// Latencies (µs) from one phase, plus its wall-clock seconds.
struct Phase {
    latencies_us: Vec<u64>,
    wall_secs: f64,
}

impl Phase {
    fn rps(&self) -> f64 {
        if self.wall_secs == 0.0 {
            0.0
        } else {
            self.latencies_us.len() as f64 / self.wall_secs
        }
    }

    /// Nearest-rank percentile: the ⌈p/100 × n⌉-th smallest sample
    /// (1-based). Always an observed latency — never interpolated — and
    /// p100 is exactly the maximum.
    fn percentile(&self, p: f64) -> u64 {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "requests".to_string(),
                (self.latencies_us.len() as u64).to_json(),
            ),
            ("wall_secs".to_string(), self.wall_secs.to_json()),
            ("rps".to_string(), self.rps().to_json()),
            ("p50_us".to_string(), self.percentile(50.0).to_json()),
            ("p90_us".to_string(), self.percentile(90.0).to_json()),
            ("p99_us".to_string(), self.percentile(99.0).to_json()),
        ])
    }
}

/// Grows the persistent client pool to at least `n` connections.
fn ensure_pool(clients: &mut Vec<Client>, addr: SocketAddr, n: usize) -> Result<(), String> {
    while clients.len() < n {
        clients
            .push(Client::connect(addr).map_err(|e| {
                format!("connect ({} of {n} connections open): {e}", clients.len())
            })?);
    }
    Ok(())
}

/// Runs `total` requests across the first `connections` clients of the
/// pool (one thread per client); `body(i)` builds the i-th request
/// (None means a `GET`). Clients stay connected for the next phase.
fn run_phase(
    clients: &mut [Client],
    addr: SocketAddr,
    total: usize,
    body: impl Fn(usize) -> (String, Option<String>) + Send + Sync,
) -> Result<Phase, String> {
    let connections = clients.len();
    let started = Instant::now();
    let latencies = thread::scope(|scope| {
        let body = &body;
        let handles: Vec<_> = clients
            .iter_mut()
            .enumerate()
            .map(|(c, client)| {
                scope.spawn(move || -> Result<Vec<u64>, String> {
                    let mut lat = Vec::new();
                    let mut i = c;
                    let mut failures = 0u32;
                    while i < total {
                        let (path, payload) = body(i);
                        let t = Instant::now();
                        let resp = match payload {
                            Some(ref json) => client.post_json(&path, json),
                            None => client.request("GET", &path, None),
                        };
                        match resp {
                            Ok(r) if r.status == 200 => {
                                failures = 0;
                                lat.push(
                                    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX),
                                );
                            }
                            Ok(r) if r.status == 503 => {
                                // Shed: honor Retry-After and reconnect
                                // (the server closes shed connections).
                                thread::sleep(std::time::Duration::from_millis(50));
                                *client =
                                    Client::connect(addr).map_err(|e| format!("reconnect: {e}"))?;
                                continue;
                            }
                            Ok(r) => {
                                return Err(format!(
                                    "{path}: status {} body {}",
                                    r.status,
                                    String::from_utf8_lossy(&r.body)
                                ))
                            }
                            Err(e) => {
                                // An idle pool connection may have been
                                // deadline-evicted between phases;
                                // reconnect and retry a bounded number
                                // of times.
                                failures += 1;
                                if failures > 3 {
                                    return Err(format!("{path}: {e}"));
                                }
                                *client =
                                    Client::connect(addr).map_err(|e| format!("reconnect: {e}"))?;
                                continue;
                            }
                        }
                        i += connections;
                    }
                    Ok(lat)
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            match h.join() {
                Ok(Ok(lat)) => all.extend(lat),
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err("phase worker panicked".to_string()),
            }
        }
        Ok(all)
    })?;
    Ok(Phase {
        latencies_us: latencies,
        wall_secs: started.elapsed().as_secs_f64(),
    })
}

/// Runs `total` identical requests in pipelined batches of
/// [`PIPELINE_DEPTH`] across the pool. Each batch is one write carrying
/// the whole burst; per-request latency is measured from the batch send
/// to that response's arrival, so queueing behind earlier pipelined
/// responses is charged honestly.
fn run_phase_pipelined(
    clients: &mut [Client],
    addr: SocketAddr,
    total: usize,
    path: &str,
    body: &str,
) -> Result<Phase, String> {
    let connections = clients.len();
    let per_client = total.div_ceil(connections);
    let started = Instant::now();
    let latencies = thread::scope(|scope| {
        let handles: Vec<_> = clients
            .iter_mut()
            .map(|client| {
                scope.spawn(move || -> Result<Vec<u64>, String> {
                    let mut lat = Vec::with_capacity(per_client);
                    let mut failures = 0u32;
                    while lat.len() < per_client {
                        let batch = PIPELINE_DEPTH.min(per_client - lat.len());
                        let t = Instant::now();
                        let outcome =
                            client
                                .send_batch("POST", path, Some(body), batch)
                                .and_then(|()| {
                                    let mut batch_lat = Vec::with_capacity(batch);
                                    for _ in 0..batch {
                                        let resp = client.read_response()?;
                                        if resp.status != 200 {
                                            return Err(std::io::Error::other(format!(
                                                "status {}",
                                                resp.status
                                            )));
                                        }
                                        batch_lat.push(
                                            u64::try_from(t.elapsed().as_micros())
                                                .unwrap_or(u64::MAX),
                                        );
                                    }
                                    Ok(batch_lat)
                                });
                        match outcome {
                            Ok(batch_lat) => {
                                failures = 0;
                                lat.extend(batch_lat);
                            }
                            Err(e) => {
                                failures += 1;
                                if failures > 3 {
                                    return Err(format!("{path} (pipelined): {e}"));
                                }
                                thread::sleep(std::time::Duration::from_millis(50));
                                *client =
                                    Client::connect(addr).map_err(|e| format!("reconnect: {e}"))?;
                            }
                        }
                    }
                    Ok(lat)
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            match h.join() {
                Ok(Ok(lat)) => all.extend(lat),
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err("phase worker panicked".to_string()),
            }
        }
        Ok(all)
    })?;
    Ok(Phase {
        latencies_us: latencies,
        wall_secs: started.elapsed().as_secs_f64(),
    })
}

fn bench(opts: &Options) -> ExitCode {
    let program = Json::Str(program_text());
    println!(
        "loadgen: {} requests/phase over {} connections against {}",
        opts.requests, opts.connections, opts.addr
    );

    // One pool of keep-alive connections, reused across every phase
    // (and grown, never reopened, for the sweep).
    let mut clients: Vec<Client> = Vec::new();
    if let Err(e) = ensure_pool(&mut clients, opts.addr, opts.connections) {
        eprintln!("loadgen: {e}");
        return ExitCode::FAILURE;
    }

    // Phase 1 — cold: a fresh seed per request forces a new trace each
    // time; this is the price of evaluation without memoization.
    let seed = opts.seed;
    let cold = match run_phase(
        &mut clients[..opts.connections],
        opts.addr,
        opts.requests,
        |i| {
            (
                "/v1/simulate".to_string(),
                Some(simulate_body(&program, seed + 1 + i as u64)),
            )
        },
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("loadgen: cold phase failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "cold:           {:>8.1} req/s  p99 {:>8} us",
        cold.rps(),
        cold.percentile(99.0)
    );

    // Phase 2 — warm: every request identical, so after the first the
    // serving layer answers from its memos without re-streaming.
    let warm_json = simulate_body(&program, seed);
    let warm = match run_phase(
        &mut clients[..opts.connections],
        opts.addr,
        opts.requests,
        |_| ("/v1/simulate".to_string(), Some(warm_json.clone())),
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("loadgen: warm phase failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "warm:           {:>8.1} req/s  p99 {:>8} us",
        warm.rps(),
        warm.percentile(99.0)
    );

    // Phase 3 — warm pipelined: the same identical request in batches
    // of PIPELINE_DEPTH, so the reactor parses and answers many
    // requests per readable event.
    let warm_pipelined = match run_phase_pipelined(
        &mut clients[..opts.connections],
        opts.addr,
        opts.requests.max(opts.connections * PIPELINE_DEPTH),
        "/v1/simulate",
        &warm_json,
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("loadgen: warm pipelined phase failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "warm_pipelined: {:>8.1} req/s  p99 {:>8} us",
        warm_pipelined.rps(),
        warm_pipelined.percentile(99.0)
    );

    // Phase 4 — mixed: the workload shape a real client produces.
    let mixed = match run_phase(
        &mut clients[..opts.connections],
        opts.addr,
        opts.requests,
        |i| match i % 8 {
            0 => ("/v1/lint".to_string(), Some(lint_body(&program))),
            1 => ("/v1/layout".to_string(), Some(layout_body(&program))),
            7 => ("/metrics".to_string(), None),
            _ => ("/v1/simulate".to_string(), Some(warm_json.clone())),
        },
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("loadgen: mixed phase failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "mixed:          {:>8.1} req/s  p99 {:>8} us",
        mixed.rps(),
        mixed.percentile(99.0)
    );

    // Sweep — closed-loop latency under load: the warm pipelined phase
    // again at each requested connection count, over the same pool.
    let mut sweep_entries: Vec<Json> = Vec::new();
    for &n in &opts.sweep {
        if let Err(e) = ensure_pool(&mut clients, opts.addr, n) {
            eprintln!("loadgen: sweep at {n} connections: {e}");
            return ExitCode::FAILURE;
        }
        let total = opts.requests.max(n * PIPELINE_DEPTH);
        let phase = match run_phase_pipelined(
            &mut clients[..n],
            opts.addr,
            total,
            "/v1/simulate",
            &warm_json,
        ) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("loadgen: sweep at {n} connections failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "sweep {n:>5} conns: {:>8.1} req/s  p50 {:>7} us  p99 {:>8} us",
            phase.rps(),
            phase.percentile(50.0),
            phase.percentile(99.0)
        );
        let mut entry = vec![
            ("connections".to_string(), (n as u64).to_json()),
            (
                "pipeline_depth".to_string(),
                (PIPELINE_DEPTH as u64).to_json(),
            ),
        ];
        if let Json::Obj(fields) = phase.to_json() {
            entry.extend(fields);
        }
        sweep_entries.push(Json::Obj(entry));
    }

    let metrics_after = fetch_metrics(opts.addr);

    let speedup = if cold.rps() == 0.0 {
        0.0
    } else {
        warm.rps() / cold.rps()
    };
    println!("warm/cold speedup: {speedup:.1}x");

    let gate_rps = warm_pipelined.rps();
    let doc = Json::Obj(vec![
        ("bench".to_string(), "impact-serve loadgen".to_json()),
        ("addr".to_string(), opts.addr.to_string().to_json()),
        (
            "connections".to_string(),
            (opts.connections as u64).to_json(),
        ),
        (
            "requests_per_phase".to_string(),
            (opts.requests as u64).to_json(),
        ),
        (
            "pipeline_depth".to_string(),
            (PIPELINE_DEPTH as u64).to_json(),
        ),
        ("cold".to_string(), cold.to_json()),
        ("warm".to_string(), warm.to_json()),
        ("warm_pipelined".to_string(), warm_pipelined.to_json()),
        ("mixed".to_string(), mixed.to_json()),
        ("warm_over_cold_speedup".to_string(), speedup.to_json()),
        ("sweep".to_string(), Json::Arr(sweep_entries)),
        ("server_metrics".to_string(), metrics_after),
    ]);
    if let Err(e) = std::fs::write(&opts.out, doc.to_string_pretty() + "\n") {
        eprintln!("loadgen: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", opts.out);

    if let Some(min) = opts.min_warm_rps {
        if gate_rps <= min {
            eprintln!(
                "loadgen: REGRESSION: warm pipelined {gate_rps:.1} req/s is not \
                 strictly faster than the {min:.1} req/s baseline"
            );
            return ExitCode::FAILURE;
        }
        println!("gate: warm pipelined {gate_rps:.1} req/s > baseline {min:.1} req/s");
    }
    ExitCode::SUCCESS
}

/// Fetches and parses the server's `/metrics` document (Null on error).
fn fetch_metrics(addr: SocketAddr) -> Json {
    Client::connect(addr)
        .and_then(|mut c| c.get("/metrics"))
        .ok()
        .and_then(|(status, body)| {
            if status != 200 {
                return None;
            }
            parse_json(std::str::from_utf8(&body).ok()?).ok()
        })
        .unwrap_or(Json::Null)
}

/// The `--warm-restart` mode: the server was stopped and relaunched on
/// the same `--store` directory, so the identical request every warm
/// iteration sends must be answered from disk — the process has
/// streamed no trace. Results merge into the `--out` document the cold
/// run wrote, so one file carries cold, warm, and warm-restart numbers.
fn warm_restart_bench(opts: &Options) -> ExitCode {
    let program = Json::Str(program_text());
    println!(
        "loadgen: warm-restart phase, {} requests over {} connections against {}",
        opts.requests, opts.connections, opts.addr
    );

    let mut clients: Vec<Client> = Vec::new();
    if let Err(e) = ensure_pool(&mut clients, opts.addr, opts.connections) {
        eprintln!("loadgen: {e}");
        return ExitCode::FAILURE;
    }
    let warm_json = simulate_body(&program, opts.seed);
    let phase = match run_phase(
        &mut clients[..opts.connections],
        opts.addr,
        opts.requests,
        |_| ("/v1/simulate".to_string(), Some(warm_json.clone())),
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("loadgen: warm restart phase failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "warm_restart:   {:>8.1} req/s  p99 {:>8} us",
        phase.rps(),
        phase.percentile(99.0)
    );
    let metrics_after = fetch_metrics(opts.addr);

    // Merge into the cold run's document rather than clobbering it.
    let mut fields = match std::fs::read_to_string(&opts.out)
        .ok()
        .and_then(|text| parse_json(&text).ok())
    {
        Some(Json::Obj(fields)) => fields,
        _ => vec![("bench".to_string(), "impact-serve loadgen".to_json())],
    };
    fields.retain(|(k, _)| !k.starts_with("warm_restart"));
    let cold_rps = fields
        .iter()
        .find(|(k, _)| k == "cold")
        .and_then(|(_, v)| v.get("rps"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if cold_rps > 0.0 {
        let speedup = phase.rps() / cold_rps;
        println!("warm-restart/cold speedup: {speedup:.1}x");
        fields.push((
            "warm_restart_over_cold_speedup".to_string(),
            speedup.to_json(),
        ));
    }
    fields.push(("warm_restart".to_string(), phase.to_json()));
    fields.push(("warm_restart_server_metrics".to_string(), metrics_after));
    let doc = Json::Obj(fields);
    if let Err(e) = std::fs::write(&opts.out, doc.to_string_pretty() + "\n") {
        eprintln!("loadgen: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("merged warm_restart into {}", opts.out);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    if opts.smoke {
        smoke(&opts)
    } else if opts.warm_restart {
        warm_restart_bench(&opts)
    } else {
        bench(&opts)
    }
}

#[cfg(test)]
mod tests {
    use super::Phase;

    fn phase(latencies_us: Vec<u64>) -> Phase {
        Phase {
            latencies_us,
            wall_secs: 1.0,
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        // Canonical nearest-rank example: 5 samples. p30 → rank
        // ⌈0.3×5⌉ = 2 → second smallest.
        let p = phase(vec![15, 20, 35, 40, 50]);
        assert_eq!(p.percentile(30.0), 20);
        assert_eq!(p.percentile(40.0), 20);
        assert_eq!(p.percentile(50.0), 35);
        assert_eq!(p.percentile(100.0), 50);
        // p99 of 5 samples is the max (rank ⌈4.95⌉ = 5), not an
        // interpolated near-max value.
        assert_eq!(p.percentile(99.0), 50);
    }

    #[test]
    fn percentile_handles_degenerate_inputs() {
        assert_eq!(phase(vec![]).percentile(50.0), 0);
        let one = phase(vec![7]);
        assert_eq!(one.percentile(1.0), 7);
        assert_eq!(one.percentile(50.0), 7);
        assert_eq!(one.percentile(100.0), 7);
        // p0 clamps to the minimum rather than indexing below the data.
        assert_eq!(phase(vec![3, 9]).percentile(0.0), 3);
    }

    #[test]
    fn percentile_is_always_an_observed_sample() {
        let samples = vec![100, 200, 300, 400, 500, 600, 700, 800, 900, 1000];
        let p = phase(samples.clone());
        for q in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
            assert!(samples.contains(&p.percentile(q)), "p{q} not a sample");
        }
        // With n = 10, p90 is the 9th smallest — the old midpoint-round
        // definition returned the 9th too, but p50 differed: nearest
        // rank gives the 5th (500), not the 6th.
        assert_eq!(p.percentile(50.0), 500);
        assert_eq!(p.percentile(90.0), 900);
    }
}

//! The event loop: one thread multiplexing every connection over
//! `poll(2)`.
//!
//! The reactor owns the listener and all connection sockets
//! (nonblocking, wrapped in [`Conn`] state machines) and loops over:
//!
//! 1. `poll(2)` on the listener, the worker wake pipe, and every
//!    connection that wants readability or writability;
//! 2. applying worker completions (responses come back over a shared
//!    vector; the wake pipe makes the poll return immediately);
//! 3. accepting new connections — each costs one slab slot and one
//!    pollfd entry, not a thread;
//! 4. per-connection reads → incremental framing → dispatch, and
//!    buffered writes;
//! 5. deadline enforcement and connection reaping.
//!
//! A connection only touches the worker pool while a request is being
//! routed: parsed requests are pushed onto the bounded dispatch queue
//! (full queue ⇒ `503` + `Retry-After`, written by the reactor), and
//! responses the serving layer already knows — the response memo — are
//! completed inline without waking anyone. Stale completions (their
//! connection died while the worker was busy) are dropped by generation
//! check.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::api::AppState;
use crate::conn::{Conn, DoneResponse, ReadOutcome};
use crate::http::{parse_request_bytes, HttpError, Request, Response};
use crate::poll::{poll, PollFd, POLLIN, POLLOUT};
use crate::rcache::ResponseCache;
use crate::server::{Completions, Dispatch, Job, ServeConfig};

/// Poll timeout: the upper bound on shutdown-flag observation latency.
const TICK_MS: i32 = 25;

/// How long a shutting-down reactor waits for in-flight requests to
/// finish and flush before force-closing the remaining connections.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(30);

/// One slab entry. The generation distinguishes a recycled slot from
/// the connection a stale in-flight job belonged to.
struct Slot {
    gen: u64,
    conn: Option<Conn>,
}

/// What a pollfd entry refers back to.
#[derive(Clone, Copy)]
enum Owner {
    Listener,
    Wake,
    Slot(usize),
}

pub(crate) struct Reactor {
    config: ServeConfig,
    slab: Vec<Slot>,
    free: Vec<usize>,
}

impl Reactor {
    pub fn new(config: ServeConfig) -> Self {
        Self {
            config,
            slab: Vec::new(),
            free: Vec::new(),
        }
    }

    fn alloc(&mut self, conn: Conn) -> usize {
        if let Some(slot) = self.free.pop() {
            self.slab[slot].conn = Some(conn);
            slot
        } else {
            self.slab.push(Slot {
                gen: 0,
                conn: Some(conn),
            });
            self.slab.len() - 1
        }
    }

    fn close(&mut self, slot: usize, state: &AppState) {
        if self.slab[slot].conn.take().is_some() {
            self.slab[slot].gen += 1;
            self.free.push(slot);
            state.metrics.connection_closed();
        }
    }

    /// The reactor thread body. Returns when shutdown is requested and
    /// every connection has drained (or the grace period expired).
    pub fn run(
        mut self,
        listener: TcpListener,
        wake_rx: TcpStream,
        dispatch: &Dispatch,
        completions: &Completions,
        state: &AppState,
        shutdown: &AtomicBool,
    ) {
        let mut listener = Some(listener);
        let mut shutdown_started: Option<Instant> = None;
        let mut pollfds: Vec<PollFd> = Vec::new();
        let mut owners: Vec<Owner> = Vec::new();
        let mut scratch: Vec<usize> = Vec::new();

        loop {
            let now = Instant::now();
            if shutdown.load(Ordering::SeqCst) && shutdown_started.is_none() {
                shutdown_started = Some(now);
                // Refuse new connections immediately and stop reading
                // new requests; in-flight ones still get answered.
                listener = None;
                for slot in &mut self.slab {
                    if let Some(conn) = slot.conn.as_mut() {
                        conn.no_more_input = true;
                    }
                }
            }
            if let Some(started) = shutdown_started {
                let live = self.slab.iter().filter(|s| s.conn.is_some()).count();
                if live == 0 || now.duration_since(started) > SHUTDOWN_GRACE {
                    break;
                }
            }

            pollfds.clear();
            owners.clear();
            if let Some(l) = &listener {
                pollfds.push(PollFd::new(l.as_raw_fd(), POLLIN));
                owners.push(Owner::Listener);
            }
            pollfds.push(PollFd::new(wake_rx.as_raw_fd(), POLLIN));
            owners.push(Owner::Wake);
            for (i, slot) in self.slab.iter().enumerate() {
                let Some(conn) = &slot.conn else { continue };
                let wants = conn.wants();
                let mut events = 0i16;
                if wants.read {
                    events |= POLLIN;
                }
                if wants.write {
                    events |= POLLOUT;
                }
                if events != 0 {
                    pollfds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                    owners.push(Owner::Slot(i));
                }
            }

            if poll(&mut pollfds, TICK_MS).is_err() {
                // EINVAL/ENOMEM: nothing sensible to do but retry after
                // a beat rather than spin.
                std::thread::sleep(Duration::from_millis(5));
            }
            let now = Instant::now();

            // 1. Worker completions (drained every turn whether or not
            // the wake pipe fired — the byte is only a poll interrupt).
            for pf in pollfds.iter().zip(&owners) {
                if let (fd, Owner::Wake) = pf {
                    if fd.readable() {
                        drain_wake(&wake_rx);
                    }
                }
            }
            for done in completions.drain() {
                let slot = &mut self.slab[done.slot];
                if slot.gen != done.gen {
                    continue; // the connection died while the worker ran
                }
                if let Some(conn) = slot.conn.as_mut() {
                    conn.inflight -= 1;
                    conn.complete(
                        done.seq,
                        DoneResponse {
                            frame: done.frame,
                            close: done.close,
                        },
                    );
                    if !conn.flush(now) {
                        let i = done.slot;
                        self.close(i, state);
                    }
                }
            }

            // 2. Socket events.
            scratch.clear();
            for (pf, owner) in pollfds.iter().zip(&owners) {
                match owner {
                    Owner::Listener if pf.readable() => {
                        self.accept_burst(listener.as_ref(), state, now);
                    }
                    Owner::Slot(i) if pf.readable() || pf.writable() => scratch.push(*i),
                    _ => {}
                }
            }
            for &i in &scratch {
                let gen = self.slab[i].gen;
                let Some(conn) = self.slab[i].conn.as_mut() else {
                    continue;
                };
                let healthy = Self::service(conn, i, gen, dispatch, state, shutdown, now);
                if !healthy {
                    self.close(i, state);
                }
            }

            // 3. Reap finished connections and blown deadlines.
            for i in 0..self.slab.len() {
                let Some(conn) = self.slab[i].conn.as_ref() else {
                    continue;
                };
                if conn.finished() {
                    self.close(i, state);
                } else if conn.deadline_expired(
                    now,
                    self.config.read_timeout,
                    self.config.write_timeout,
                ) {
                    // Slowloris eviction / unread responses: the old
                    // blocking server surfaced both as read/write
                    // timeouts on the worker thread.
                    state.metrics.record_read_error();
                    self.close(i, state);
                }
            }
        }
    }

    /// Accepts until the listener would block.
    fn accept_burst(&mut self, listener: Option<&TcpListener>, state: &AppState, now: Instant) {
        let Some(listener) = listener else { return };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Responses are written as few large frames; don't
                    // let Nagle hold them back waiting for an ACK.
                    let _ = stream.set_nodelay(true);
                    let conn = Conn::new(stream, now);
                    self.alloc(conn);
                    state.metrics.record_connection();
                    state.metrics.connection_opened();
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return, // transient (EMFILE, aborted handshake)
            }
        }
    }

    /// Reads, frames, dispatches, and flushes one connection. Returns
    /// `false` when the connection must be closed immediately.
    #[allow(clippy::too_many_arguments)]
    fn service(
        conn: &mut Conn,
        slot: usize,
        gen: u64,
        dispatch: &Dispatch,
        state: &AppState,
        shutdown: &AtomicBool,
        now: Instant,
    ) -> bool {
        let outcome = if conn.wants().read {
            conn.fill_from_socket(now)
        } else {
            ReadOutcome::Open
        };
        if outcome == ReadOutcome::Broken {
            state.metrics.record_read_error();
            return false;
        }

        // Frame as many complete requests as the buffer holds: this is
        // where HTTP/1.1 pipelining falls out of the state machine.
        while !conn.no_more_input {
            match parse_request_bytes(&conn.buf) {
                Ok(Some((req, consumed))) => {
                    conn.buf.drain(..consumed);
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    Self::handle_request(conn, slot, gen, seq, req, dispatch, state, shutdown);
                }
                Ok(None) => break,
                Err(err) => {
                    state.metrics.record_read_error();
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    let response = match err {
                        HttpError::Malformed(msg) => Response::error(400, msg),
                        HttpError::TooLarge("request head") => {
                            Response::error(431, "request head too large")
                        }
                        HttpError::TooLarge(what) => {
                            Response::error(413, format!("{what} too large"))
                        }
                        // parse_request_bytes never does I/O.
                        HttpError::Io(e) => Response::error(400, e.to_string()),
                    };
                    conn.complete(seq, DoneResponse::serialize(&response, false));
                    conn.no_more_input = true;
                    conn.buf.clear();
                    break;
                }
            }
        }

        if outcome == ReadOutcome::Eof {
            if !conn.no_more_input && !conn.buf.is_empty() {
                // Peer closed mid-request: same diagnosis the blocking
                // reader gave ("connection closed inside the header
                // block"), answered on the half-open socket.
                state.metrics.record_read_error();
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let response =
                    Response::error(400, "connection closed inside the request".to_string());
                conn.complete(seq, DoneResponse::serialize(&response, false));
            }
            conn.no_more_input = true;
            conn.buf.clear();
        }

        conn.flush(now)
    }

    /// Completes one parsed request: response-memo hit inline, dispatch
    /// to the worker pool, or shed with `503` when the queue is full.
    #[allow(clippy::too_many_arguments)]
    fn handle_request(
        conn: &mut Conn,
        slot: usize,
        gen: u64,
        seq: u64,
        req: Request,
        dispatch: &Dispatch,
        state: &AppState,
        shutdown: &AtomicBool,
    ) {
        let keep = req.keep_alive() && !shutdown.load(Ordering::SeqCst);
        if !req.keep_alive() {
            // The client promised no more requests on this connection;
            // anything further in the buffer is undefined — drop it.
            conn.no_more_input = true;
        }

        if ResponseCache::cacheable(&req.method, req.body.len()) {
            let started = Instant::now();
            if let Some((endpoint, response)) = state.rcache.get(&req.target, &req.body) {
                let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                state.metrics.record(endpoint, response.status, micros);
                conn.complete(seq, DoneResponse::serialize(&response, keep));
                return;
            }
        }

        let depth = dispatch.try_push(Job {
            slot,
            gen,
            seq,
            req,
        });
        match depth {
            Some(depth) => {
                state.metrics.set_queue_depth(depth);
                conn.inflight += 1;
            }
            None => {
                // Same shed semantics the accept loop used to apply:
                // 503 + Retry-After, then close, so the client backs
                // off and reconnects.
                state.metrics.record_shed();
                let resp = Response::error(503, "server overloaded; retry shortly")
                    .with_header("Retry-After", "1");
                conn.complete(seq, DoneResponse::serialize(&resp, false));
            }
        }
    }
}

/// Empties the wake pipe (each worker writes one byte per completion;
/// the content is meaningless).
fn drain_wake(mut wake_rx: &TcpStream) {
    use std::io::Read;
    let mut sink = [0u8; 256];
    loop {
        match wake_rx.read(&mut sink) {
            Ok(0) => return, // workers are gone; poll keeps ticking
            Ok(_) => {}
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

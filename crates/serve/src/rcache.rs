//! The serving-layer response memo: completed responses keyed by the
//! exact request bytes.
//!
//! The evaluation engine already memoizes *simulation* (SimSession) and
//! *trace* work (RunBuffer replay), so by PR 6 a warm `/v1/simulate`
//! request spends nearly all of its time in the serving layer itself:
//! decoding the JSON body, parsing the embedded program, fingerprinting
//! it, and re-rendering the response document (~80 µs of CPU on the
//! benchmark box). All of that is a pure function of `(target, body)`
//! for the POST endpoints — `/v1/lint`, `/v1/layout`, `/v1/simulate`,
//! and `/v1/analyze` read nothing but the body, and their handlers are
//! deterministic (the session memo guarantees bit-identical simulate
//! results regardless of interpret/replay/memo path). So the reactor
//! consults this cache *before* dispatching to a worker: a hit is
//! serialized straight into the connection's write buffer, and the
//! worker pool only ever sees novel bodies.
//!
//! Entries are compared by full byte equality (the hash only picks the
//! bucket), so a hit returns exactly the bytes the handler produced the
//! first time — byte-identical responses by construction, not by luck.
//! The cache is bounded by total byte budget and entry count with FIFO
//! eviction; `GET` endpoints (`/metrics` changes between calls) and
//! oversized bodies are never cached.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, MutexGuard, PoisonError};

use impact_support::json::{Json, ToJson};

use crate::http::Response;
use crate::metrics::Endpoint;

/// Default byte budget for cached responses (keys + bodies).
pub const DEFAULT_CACHE_BYTES: usize = 64 * 1024 * 1024;

/// Bodies above this size are never cached: hashing multi-megabyte
/// programs on the reactor thread would cost more than a worker parse.
pub const MAX_CACHEABLE_BODY: usize = 256 * 1024;

/// Hard cap on entries regardless of byte budget.
const MAX_ENTRIES: usize = 4096;

/// One memoized response.
#[derive(Debug, Clone)]
struct Entry {
    target: String,
    body: Vec<u8>,
    endpoint: Endpoint,
    response: Response,
    cost: usize,
}

#[derive(Debug, Default)]
struct Store {
    /// Digest → entries whose key hashed there (collisions chain).
    buckets: HashMap<u64, Vec<Entry>>,
    /// Insertion order of digests for FIFO eviction.
    order: std::collections::VecDeque<u64>,
    bytes: usize,
}

/// Bounded, byte-budgeted response memo shared by reactor and workers.
#[derive(Debug)]
pub struct ResponseCache {
    store: Mutex<Store>,
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ResponseCache {
    /// A cache bounded to `budget` bytes; `0` disables caching entirely.
    #[must_use]
    pub fn new(budget: usize) -> Self {
        Self {
            store: Mutex::new(Store::default()),
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Store> {
        self.store.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn digest(target: &str, body: &[u8]) -> u64 {
        let mut h = DefaultHasher::new();
        target.hash(&mut h);
        body.hash(&mut h);
        h.finish()
    }

    /// Whether a request with this shape is eligible for the memo.
    #[must_use]
    pub fn cacheable(method: &str, body_len: usize) -> bool {
        method == "POST" && body_len <= MAX_CACHEABLE_BODY
    }

    /// Looks up the memoized response for `(target, body)`. Counts a
    /// hit or miss; only cacheable requests should be passed in.
    #[must_use]
    pub fn get(&self, target: &str, body: &[u8]) -> Option<(Endpoint, Response)> {
        if self.budget == 0 {
            return None;
        }
        let digest = Self::digest(target, body);
        let store = self.lock();
        let found = store.buckets.get(&digest).and_then(|chain| {
            chain
                .iter()
                .find(|e| e.target == target && e.body == body)
                .map(|e| (e.endpoint, e.response.clone()))
        });
        drop(store);
        match found {
            Some(hit) => {
                self.hits.fetch_add(1, Relaxed);
                Some(hit)
            }
            None => {
                self.misses.fetch_add(1, Relaxed);
                None
            }
        }
    }

    /// Memoizes a completed response. Statuses outside `200`/`422` are
    /// skipped: they are deterministic too, but error storms would only
    /// churn the budget. Duplicate keys (two workers racing the same
    /// novel body) keep the first entry.
    pub fn put(&self, target: &str, body: &[u8], endpoint: Endpoint, response: &Response) {
        if self.budget == 0
            || body.len() > MAX_CACHEABLE_BODY
            || !matches!(response.status, 200 | 422)
        {
            return;
        }
        let cost = target.len() + body.len() + response.body.len() + 128;
        if cost > self.budget {
            return;
        }
        let digest = Self::digest(target, body);
        let mut store = self.lock();
        let chain = store.buckets.entry(digest).or_default();
        if chain.iter().any(|e| e.target == target && e.body == body) {
            return;
        }
        chain.push(Entry {
            target: target.to_string(),
            body: body.to_vec(),
            endpoint,
            response: response.clone(),
            cost,
        });
        store.order.push_back(digest);
        store.bytes += cost;
        self.insertions.fetch_add(1, Relaxed);
        while store.bytes > self.budget || store.order.len() > MAX_ENTRIES {
            let Some(old) = store.order.pop_front() else {
                break;
            };
            let mut evicted_cost = None;
            if let Some(chain) = store.buckets.get_mut(&old) {
                if !chain.is_empty() {
                    evicted_cost = Some(chain.remove(0).cost);
                }
                if chain.is_empty() {
                    store.buckets.remove(&old);
                }
            }
            if let Some(cost) = evicted_cost {
                store.bytes -= cost;
                self.evictions.fetch_add(1, Relaxed);
            }
        }
    }

    /// Memo hits served without touching a worker.
    #[must_use]
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Relaxed)
    }

    /// The `response_cache` object in the `/metrics` document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let store = self.lock();
        let (entries, bytes) = (
            store.order.len() as u64,
            u64::try_from(store.bytes).unwrap_or(u64::MAX),
        );
        drop(store);
        Json::Obj(vec![
            ("hits".to_string(), self.hits.load(Relaxed).to_json()),
            ("misses".to_string(), self.misses.load(Relaxed).to_json()),
            (
                "insertions".to_string(),
                self.insertions.load(Relaxed).to_json(),
            ),
            (
                "evictions".to_string(),
                self.evictions.load(Relaxed).to_json(),
            ),
            ("entries".to_string(), entries.to_json()),
            ("bytes".to_string(), bytes.to_json()),
            (
                "budget_bytes".to_string(),
                u64::try_from(self.budget).unwrap_or(u64::MAX).to_json(),
            ),
        ])
    }
}

impl Default for ResponseCache {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(bytes: &[u8]) -> Response {
        Response {
            status: 200,
            headers: Vec::new(),
            body: bytes.to_vec(),
        }
    }

    #[test]
    fn hit_returns_the_exact_first_response() {
        let cache = ResponseCache::new(1 << 20);
        assert!(cache.get("/v1/lint", b"{}").is_none());
        cache.put("/v1/lint", b"{}", Endpoint::Lint, &resp(b"doc-1"));
        // A later put for the same key must not replace the entry.
        cache.put("/v1/lint", b"{}", Endpoint::Lint, &resp(b"doc-2"));
        let (ep, r) = cache.get("/v1/lint", b"{}").unwrap();
        assert_eq!(ep, Endpoint::Lint);
        assert_eq!(r.body, b"doc-1");
        assert_eq!(cache.hit_count(), 1);
        // Different body, same target: distinct key.
        assert!(cache.get("/v1/lint", b"{ }").is_none());
    }

    #[test]
    fn byte_budget_evicts_fifo() {
        let cache = ResponseCache::new(600);
        for i in 0..4u8 {
            let body = vec![i; 64];
            cache.put("/v1/simulate", &body, Endpoint::Simulate, &resp(&[i; 64]));
        }
        // 4 × (~267 bytes) over a 600-byte budget: the oldest went.
        assert!(cache.get("/v1/simulate", &[0u8; 64]).is_none());
        assert!(cache.get("/v1/simulate", &[3u8; 64]).is_some());
        assert!(cache.evictions.load(Relaxed) >= 1);
    }

    #[test]
    fn disabled_and_uncacheable_shapes_are_skipped() {
        let cache = ResponseCache::new(0);
        cache.put("/v1/lint", b"x", Endpoint::Lint, &resp(b"y"));
        assert!(cache.get("/v1/lint", b"x").is_none());
        assert!(!ResponseCache::cacheable("GET", 2));
        assert!(!ResponseCache::cacheable("POST", MAX_CACHEABLE_BODY + 1));
        assert!(ResponseCache::cacheable("POST", 2));
        let cache = ResponseCache::new(1 << 20);
        cache.put(
            "/v1/lint",
            b"x",
            Endpoint::Lint,
            &Response::error(400, "nope"),
        );
        assert!(cache.get("/v1/lint", b"x").is_none(), "4xx is not cached");
    }
}

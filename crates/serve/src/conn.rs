//! Per-connection state for the reactor: incremental request framing in,
//! ordered buffered responses out.
//!
//! A connection is a passive state machine — the reactor feeds it bytes
//! when `poll(2)` reports its socket readable, hands parsed requests to
//! the dispatcher, and flushes its write buffer when the socket is
//! writable. The machine itself never blocks and never touches a
//! worker thread:
//!
//! - **Framing.** Incoming bytes accumulate in `buf`;
//!   [`parse_request_bytes`](crate::http::parse_request_bytes) is run
//!   repeatedly so one readable event can yield *many* pipelined
//!   requests (and a request split byte-by-byte across reads parses
//!   exactly when its last byte lands).
//! - **Ordering.** Each parsed request gets a per-connection sequence
//!   number. Responses complete in any order (workers race; memo hits
//!   complete instantly) but are released into the write buffer strictly
//!   in sequence, which is what HTTP/1.1 pipelining requires.
//! - **Deadlines.** The reactor evicts connections that sit idle past
//!   the read deadline (slowloris: a header drip-fed forever holds one
//!   buffer, not a worker thread) or that stop draining their responses
//!   past the write deadline.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::http::Response;

/// How much to read per `read(2)` call while draining a readable socket.
const READ_CHUNK: usize = 16 * 1024;

/// What the state machine wants from `poll(2)` this turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Wants {
    /// Watch for readability (more request bytes are welcome).
    pub read: bool,
    /// Watch for writability (buffered response bytes are pending).
    pub write: bool,
}

/// Result of draining a readable socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadOutcome {
    /// Some bytes may have arrived; the connection stays open.
    Open,
    /// The peer closed its half cleanly (EOF).
    Eof,
    /// The transport failed; the connection is unusable.
    Broken,
}

/// One connection owned by the reactor.
#[derive(Debug)]
pub(crate) struct Conn {
    pub stream: TcpStream,
    /// Received-but-unparsed request bytes.
    pub buf: Vec<u8>,
    /// Serialized responses waiting for the socket to accept them.
    out: Vec<u8>,
    /// How much of `out` has been written so far.
    out_pos: usize,
    /// Sequence number the next parsed request will get.
    pub next_seq: u64,
    /// Sequence number whose response is released next.
    next_write: u64,
    /// Completed responses that arrived ahead of their turn.
    ready: BTreeMap<u64, DoneResponse>,
    /// Requests dispatched to the worker pool, not yet completed.
    pub inflight: usize,
    /// No further request bytes will be parsed (close requested,
    /// framing error, peer EOF, or shutdown).
    pub no_more_input: bool,
    /// Close the socket once `out` drains.
    pub close_after_flush: bool,
    /// Instant of the last byte read (read-deadline base).
    pub last_read: Instant,
    /// Set while `out` is nonempty: instant of the last write progress.
    write_stalled_since: Option<Instant>,
}

/// A completed response ready to serialize in sequence order.
#[derive(Debug)]
pub(crate) struct DoneResponse {
    /// The full serialized frame (status line through body).
    pub frame: Vec<u8>,
    /// Close the connection after this frame flushes.
    pub close: bool,
}

impl DoneResponse {
    /// Serializes `response` into a frame with the right `Connection:`
    /// header. Writing into a `Vec` cannot fail.
    pub fn serialize(response: &Response, keep_alive: bool) -> Self {
        let mut frame = Vec::with_capacity(response.body.len() + 256);
        response
            .write(&mut frame, keep_alive)
            .expect("serializing into a Vec cannot fail");
        Self {
            frame,
            close: !keep_alive,
        }
    }
}

impl Conn {
    /// Wraps an accepted, already-nonblocking socket.
    pub fn new(stream: TcpStream, now: Instant) -> Self {
        Self {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            next_write: 0,
            ready: BTreeMap::new(),
            inflight: 0,
            no_more_input: false,
            close_after_flush: false,
            last_read: now,
            write_stalled_since: None,
        }
    }

    /// The poll interests for the current state.
    pub fn wants(&self) -> Wants {
        Wants {
            read: !self.no_more_input,
            write: self.has_pending_writes(),
        }
    }

    /// True while serialized response bytes are waiting on the socket.
    pub fn has_pending_writes(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Drains the readable socket into `buf` until `WouldBlock`.
    pub fn fill_from_socket(&mut self, now: Instant) -> ReadOutcome {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Eof,
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    self.last_read = now;
                    // Keep draining: level-triggered poll would re-report
                    // it, but finishing now saves a syscall round.
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Open,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Broken,
            }
        }
    }

    /// Records a completed response for `seq`, then releases every
    /// response that is now next in line into the write buffer.
    pub fn complete(&mut self, seq: u64, done: DoneResponse) {
        self.ready.insert(seq, done);
        while let Some(done) = self.ready.remove(&self.next_write) {
            self.next_write += 1;
            if self.close_after_flush {
                // A close-marked response already sealed the stream;
                // later pipelined responses have nowhere to go.
                continue;
            }
            self.out.extend_from_slice(&done.frame);
            if done.close {
                self.close_after_flush = true;
                self.no_more_input = true;
            }
        }
    }

    /// Writes as much buffered response data as the socket accepts.
    /// Returns `false` when the transport failed.
    pub fn flush(&mut self, now: Instant) -> bool {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.out_pos += n;
                    self.write_stalled_since = Some(now);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if self.write_stalled_since.is_none() {
                        self.write_stalled_since = Some(now);
                    }
                    return true;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        // Fully drained: reclaim the buffer and clear the write clock.
        self.out.clear();
        self.out_pos = 0;
        self.write_stalled_since = None;
        true
    }

    /// True once every accepted request has been answered and flushed
    /// and no further input will arrive — the clean-close condition.
    pub fn finished(&self) -> bool {
        self.no_more_input
            && self.inflight == 0
            && self.ready.is_empty()
            && !self.has_pending_writes()
    }

    /// Whether the connection blew a deadline at `now`: the read
    /// deadline applies while we are waiting on the *client* (nothing
    /// in flight, nothing to write), the write deadline while the
    /// client refuses to drain responses. A connection waiting on a
    /// long-running handler is charged to neither.
    pub fn deadline_expired(&self, now: Instant, read: Duration, write: Duration) -> bool {
        if self.has_pending_writes() {
            return self
                .write_stalled_since
                .is_some_and(|since| now.duration_since(since) > write);
        }
        if self.inflight == 0 && !self.no_more_input {
            return now.duration_since(self.last_read) > read;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    fn frame(tag: &[u8], close: bool) -> DoneResponse {
        DoneResponse {
            frame: tag.to_vec(),
            close,
        }
    }

    #[test]
    fn responses_are_released_in_sequence_order() {
        let (_peer, sock) = pair();
        let mut conn = Conn::new(sock, Instant::now());
        conn.next_seq = 3; // three requests parsed
        conn.complete(2, frame(b"C", false));
        assert!(!conn.has_pending_writes(), "seq 0 not done yet");
        conn.complete(0, frame(b"A", false));
        assert_eq!(&conn.out, b"A", "seq 1 still missing");
        conn.complete(1, frame(b"B", false));
        assert_eq!(&conn.out, b"ABC");
    }

    #[test]
    fn close_marked_response_seals_the_stream() {
        let (_peer, sock) = pair();
        let mut conn = Conn::new(sock, Instant::now());
        conn.next_seq = 3;
        conn.complete(0, frame(b"A", true));
        conn.complete(1, frame(b"B", false));
        conn.complete(2, frame(b"C", false));
        assert_eq!(&conn.out, b"A", "responses after a close are dropped");
        assert!(conn.close_after_flush);
        assert!(conn.no_more_input);
    }

    #[test]
    fn deadlines_only_charge_the_waiting_party() {
        let (_peer, sock) = pair();
        let mut conn = Conn::new(sock, Instant::now() - Duration::from_secs(60));
        conn.last_read = Instant::now() - Duration::from_secs(60);
        let (read, write) = (Duration::from_secs(1), Duration::from_secs(1));
        // Idle and owing us bytes: read deadline applies.
        assert!(conn.deadline_expired(Instant::now(), read, write));
        // Waiting on a worker: neither deadline applies.
        conn.inflight = 1;
        assert!(!conn.deadline_expired(Instant::now(), read, write));
        conn.inflight = 0;
        // Waiting on the peer to drain writes: write deadline applies,
        // measured from the last write progress.
        conn.out = b"pending".to_vec();
        conn.write_stalled_since = Some(Instant::now() - Duration::from_secs(30));
        assert!(conn.deadline_expired(Instant::now(), read, write));
        conn.write_stalled_since = Some(Instant::now());
        assert!(!conn.deadline_expired(Instant::now(), read, write));
    }

    #[test]
    fn finished_requires_flushed_and_quiet() {
        let (_peer, sock) = pair();
        let mut conn = Conn::new(sock, Instant::now());
        assert!(!conn.finished(), "input side still open");
        conn.no_more_input = true;
        assert!(conn.finished());
        conn.inflight = 1;
        assert!(!conn.finished());
    }
}

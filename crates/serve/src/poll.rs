//! Readiness polling over raw file descriptors: a thin safe wrapper
//! around `poll(2)`.
//!
//! This is the second (and last) `unsafe` corner of the service, scoped
//! exactly like [`crate::signal`]: one raw libc call behind a safe
//! function. The wrapper owns nothing — callers keep their sockets in
//! ordinary [`std::net`] types and copy descriptors into the entry
//! slice for the duration of one call, so the only invariant (each fd
//! stays open across the call) is upheld by the reactor, which builds
//! the set from sockets it owns and consumes it within one loop turn.
//!
//! Everything is level-triggered: a descriptor reported readable stays
//! readable until drained, so a reactor that processes a bounded amount
//! per turn never loses events.

use std::io;

/// The descriptor is readable (or a peer closed; reading reveals which).
pub const POLLIN: i16 = 0x001;
/// The descriptor accepts writes without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always reported, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always reported, never requested).
pub const POLLHUP: i16 = 0x010;
/// The descriptor is not open (always reported, never requested).
pub const POLLNVAL: i16 = 0x020;

/// One entry in the poll set, ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: i32,
    /// Requested events ([`POLLIN`] / [`POLLOUT`]).
    pub events: i16,
    /// Returned events (filled in by [`poll`]).
    pub revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events`.
    #[must_use]
    pub fn new(fd: i32, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }

    /// True if the kernel reported the descriptor readable, errored, or
    /// hung up — all of which a reader must observe by reading.
    #[must_use]
    pub fn readable(self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// True if the kernel reported the descriptor writable or errored
    /// (a failed write reveals the error).
    #[must_use]
    pub fn writable(self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use super::PollFd;
    use std::io;

    extern "C" {
        // From libc, which is always linked. `nfds_t` is `unsigned
        // long`, i.e. pointer-width on every Unix Rust targets.
        fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    }

    pub fn poll_impl(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout entries; the kernel writes only
        // `revents` within its bounds.
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::PollFd;
    use std::io;

    /// Degraded fallback: sleep out (a slice of) the timeout and report
    /// every descriptor ready. With nonblocking sockets this is correct
    /// (reads/writes return `WouldBlock` when not actually ready) but
    /// busy-polls; real readiness polling needs the Unix implementation.
    pub fn poll_impl(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        std::thread::sleep(std::time::Duration::from_millis(u64::from(
            timeout_ms.clamp(0, 1) as u32,
        )));
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        Ok(fds.len())
    }
}

/// Blocks until at least one watched descriptor is ready or `timeout_ms`
/// elapses (`0` returns immediately, negative waits forever). Returns
/// the number of entries with nonzero `revents`.
///
/// `EINTR` (a signal landed mid-wait — SIGTERM does exactly this) is
/// reported as zero ready descriptors rather than an error, so callers
/// fall through to their shutdown-flag check.
///
/// # Errors
///
/// Any other `poll(2)` failure (`EINVAL` for an oversized set, `ENOMEM`).
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    match sys::poll_impl(fds, timeout_ms) {
        Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    #[cfg(unix)]
    use std::os::fd::AsRawFd;

    #[cfg(unix)]
    #[test]
    fn reports_readable_only_when_data_is_pending() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 0).unwrap(), 0, "no data yet");
        assert!(!fds[0].readable());

        tx.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        // Allow generous time for loopback delivery.
        assert_eq!(poll(&mut fds, 5_000).unwrap(), 1);
        assert!(fds[0].readable());

        let mut byte = [0u8; 8];
        let mut rx = rx;
        assert_eq!(rx.read(&mut byte).unwrap(), 1);
    }

    #[cfg(unix)]
    #[test]
    fn writable_socket_and_hangup_are_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();

        let mut fds = [PollFd::new(tx.as_raw_fd(), POLLOUT)];
        assert_eq!(poll(&mut fds, 5_000).unwrap(), 1);
        assert!(fds[0].writable());

        drop(tx);
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 5_000).unwrap(), 1);
        assert!(fds[0].readable(), "peer close must wake the reader");
    }
}

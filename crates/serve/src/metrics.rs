//! Service observability: request counters, latency histogram, queue
//! depth, and the evaluation engine's memo counters, rendered as the
//! `GET /metrics` JSON document.
//!
//! Everything is lock-free atomics so the hot path (one `record` per
//! request) never contends with scrapes.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use impact_experiments::session::SimMetrics;
use impact_support::json::{Json, ToJson};

/// Upper bounds (inclusive, microseconds) of the latency histogram
/// buckets; an implicit overflow bucket catches the rest.
pub const LATENCY_BUCKETS_US: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// The endpoints the router distinguishes (for per-endpoint counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/lint`
    Lint,
    /// `POST /v1/layout`
    Layout,
    /// `POST /v1/simulate`
    Simulate,
    /// `POST /v1/analyze`
    Analyze,
    /// `POST /v1/advise`
    Advise,
    /// `GET /metrics`
    Metrics,
    /// Anything else (404/405/400 paths).
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 7] = [
        Endpoint::Lint,
        Endpoint::Layout,
        Endpoint::Simulate,
        Endpoint::Analyze,
        Endpoint::Advise,
        Endpoint::Metrics,
        Endpoint::Other,
    ];

    fn index(self) -> usize {
        match self {
            Endpoint::Lint => 0,
            Endpoint::Layout => 1,
            Endpoint::Simulate => 2,
            Endpoint::Analyze => 3,
            Endpoint::Advise => 4,
            Endpoint::Metrics => 5,
            Endpoint::Other => 6,
        }
    }

    /// Stable label used in the metrics document.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Lint => "lint",
            Endpoint::Layout => "layout",
            Endpoint::Simulate => "simulate",
            Endpoint::Analyze => "analyze",
            Endpoint::Advise => "advise",
            Endpoint::Metrics => "metrics",
            Endpoint::Other => "other",
        }
    }
}

/// Atomic counter block for the whole service.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: [AtomicU64; 7],
    status_2xx: AtomicU64,
    status_4xx: AtomicU64,
    status_5xx: AtomicU64,
    /// 503s written by the accept loop without dispatching a worker.
    shed: AtomicU64,
    /// Connections accepted into the worker pool.
    connections: AtomicU64,
    /// Requests dropped because the bytes never parsed as HTTP.
    read_errors: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    latency_sum_us: AtomicU64,
    latency_count: AtomicU64,
    /// Per-endpoint latency histograms (same bucket bounds).
    endpoint_latency: [[AtomicU64; LATENCY_BUCKETS_US.len() + 1]; 7],
    endpoint_latency_sum_us: [AtomicU64; 7],
    queue_depth: AtomicU64,
    queue_peak: AtomicU64,
    /// Connections currently open in the reactor (gauge).
    connections_open: AtomicU64,
    /// High-water mark of `connections_open`.
    connections_peak: AtomicU64,
}

impl Metrics {
    /// A zeroed counter block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one routed request: endpoint, response status, and
    /// handler latency in microseconds.
    pub fn record(&self, endpoint: Endpoint, status: u16, micros: u64) {
        self.requests[endpoint.index()].fetch_add(1, Relaxed);
        match status {
            200..=299 => &self.status_2xx,
            400..=499 => &self.status_4xx,
            _ => &self.status_5xx,
        }
        .fetch_add(1, Relaxed);
        let bucket = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| micros <= b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.latency[bucket].fetch_add(1, Relaxed);
        self.latency_sum_us.fetch_add(micros, Relaxed);
        self.latency_count.fetch_add(1, Relaxed);
        self.endpoint_latency[endpoint.index()][bucket].fetch_add(1, Relaxed);
        self.endpoint_latency_sum_us[endpoint.index()].fetch_add(micros, Relaxed);
    }

    /// Records a load-shedding 503 written from the reactor.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Relaxed);
    }

    /// Records an accepted connection (cumulative).
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Relaxed);
    }

    /// Raises the open-connections gauge (and its high-water mark).
    pub fn connection_opened(&self) {
        let now = self.connections_open.fetch_add(1, Relaxed) + 1;
        self.connections_peak.fetch_max(now, Relaxed);
    }

    /// Lowers the open-connections gauge.
    pub fn connection_closed(&self) {
        self.connections_open.fetch_sub(1, Relaxed);
    }

    /// High-water mark of concurrently open connections.
    #[must_use]
    pub fn connections_peak(&self) -> u64 {
        self.connections_peak.load(Relaxed)
    }

    /// Records a connection whose bytes never parsed as a request.
    pub fn record_read_error(&self) {
        self.read_errors.fetch_add(1, Relaxed);
    }

    /// Updates the queue-depth gauge (and its high-water mark).
    pub fn set_queue_depth(&self, depth: usize) {
        let depth = depth as u64;
        self.queue_depth.store(depth, Relaxed);
        self.queue_peak.fetch_max(depth, Relaxed);
    }

    /// Requests routed so far (all endpoints).
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        Endpoint::ALL
            .iter()
            .map(|e| self.requests[e.index()].load(Relaxed))
            .sum()
    }

    /// 503s shed so far.
    #[must_use]
    pub fn total_shed(&self) -> u64 {
        self.shed.load(Relaxed)
    }

    /// The `GET /metrics` document. `session` supplies the evaluation
    /// engine's memo counters (summarized here — the per-stream records
    /// grow without bound in a long-lived service, so they stay out).
    #[must_use]
    pub fn to_json(&self, session: &SimMetrics) -> Json {
        let by_endpoint = Json::Obj(
            Endpoint::ALL
                .iter()
                .map(|e| {
                    (
                        e.label().to_string(),
                        self.requests[e.index()].load(Relaxed).to_json(),
                    )
                })
                .collect(),
        );
        let buckets = render_buckets(&self.latency);
        let by_endpoint_latency = Json::Obj(
            Endpoint::ALL
                .iter()
                .map(|e| {
                    let count = self.requests[e.index()].load(Relaxed);
                    let sum = self.endpoint_latency_sum_us[e.index()].load(Relaxed);
                    (
                        e.label().to_string(),
                        Json::Obj(vec![
                            (
                                "buckets".to_string(),
                                render_buckets(&self.endpoint_latency[e.index()]),
                            ),
                            ("sum_us".to_string(), sum.to_json()),
                            ("count".to_string(), count.to_json()),
                            (
                                "mean_us".to_string(),
                                if count == 0 {
                                    0.0
                                } else {
                                    sum as f64 / count as f64
                                }
                                .to_json(),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        let count = self.latency_count.load(Relaxed);
        let sum = self.latency_sum_us.load(Relaxed);
        let memo_hit_rate = if session.configs_requested == 0 {
            0.0
        } else {
            session.memo_served as f64 / session.configs_requested as f64
        };
        let mut sim_fields = vec![
            ("unique_traces".to_string(), session.unique_traces.to_json()),
            (
                "traces_streamed".to_string(),
                session.traces_streamed.to_json(),
            ),
            ("restreams".to_string(), session.restreams.to_json()),
            ("replays".to_string(), session.replays.to_json()),
            ("memo_key_hits".to_string(), session.memo_key_hits.to_json()),
            (
                "configs_requested".to_string(),
                session.configs_requested.to_json(),
            ),
            (
                "configs_simulated".to_string(),
                session.configs_simulated.to_json(),
            ),
            ("memo_served".to_string(), session.memo_served.to_json()),
            ("memo_hit_rate".to_string(), memo_hit_rate.to_json()),
            ("disk_served".to_string(), session.disk_served.to_json()),
            (
                "artifacts_loaded".to_string(),
                session.artifacts_loaded.to_json(),
            ),
            ("instructions".to_string(), session.instructions.to_json()),
            (
                "instructions_interpreted".to_string(),
                session.instructions_interpreted.to_json(),
            ),
            (
                "instructions_replayed".to_string(),
                session.instructions_replayed.to_json(),
            ),
            (
                "instructions_memo_served".to_string(),
                session.instructions_memo_served.to_json(),
            ),
            (
                "instructions_disk_served".to_string(),
                session.instructions_disk_served.to_json(),
            ),
            (
                "instrs_per_sec".to_string(),
                session.instrs_per_sec().to_json(),
            ),
            (
                "interpreted_instrs_per_sec".to_string(),
                session.interpreted_instrs_per_sec().to_json(),
            ),
            (
                "replayed_instrs_per_sec".to_string(),
                session.replayed_instrs_per_sec().to_json(),
            ),
            (
                "artifacts_stored".to_string(),
                session.artifacts_stored.to_json(),
            ),
            (
                "artifact_bytes".to_string(),
                session.artifact_bytes.to_json(),
            ),
        ];
        if let Some(store) = &session.store {
            if let Json::Obj(fields) = store.to_json() {
                sim_fields.extend(fields);
            }
        }
        Json::Obj(vec![
            (
                "requests_total".to_string(),
                self.total_requests().to_json(),
            ),
            ("requests_by_endpoint".to_string(), by_endpoint),
            (
                "responses_2xx".to_string(),
                self.status_2xx.load(Relaxed).to_json(),
            ),
            (
                "responses_4xx".to_string(),
                self.status_4xx.load(Relaxed).to_json(),
            ),
            (
                "responses_5xx".to_string(),
                self.status_5xx.load(Relaxed).to_json(),
            ),
            ("shed_503".to_string(), self.shed.load(Relaxed).to_json()),
            (
                "connections".to_string(),
                self.connections.load(Relaxed).to_json(),
            ),
            (
                "connections_open".to_string(),
                self.connections_open.load(Relaxed).to_json(),
            ),
            (
                "connections_peak".to_string(),
                self.connections_peak.load(Relaxed).to_json(),
            ),
            (
                "read_errors".to_string(),
                self.read_errors.load(Relaxed).to_json(),
            ),
            (
                "queue_depth".to_string(),
                self.queue_depth.load(Relaxed).to_json(),
            ),
            (
                "queue_peak".to_string(),
                self.queue_peak.load(Relaxed).to_json(),
            ),
            ("latency_us_buckets".to_string(), buckets),
            ("latency_by_endpoint".to_string(), by_endpoint_latency),
            ("latency_us_sum".to_string(), sum.to_json()),
            ("latency_count".to_string(), count.to_json()),
            (
                "latency_us_mean".to_string(),
                if count == 0 {
                    0.0
                } else {
                    sum as f64 / count as f64
                }
                .to_json(),
            ),
            ("sim".to_string(), Json::Obj(sim_fields)),
        ])
    }
}

/// Renders one histogram (shared bounds + overflow) as a JSON array.
fn render_buckets(counts: &[AtomicU64; LATENCY_BUCKETS_US.len() + 1]) -> Json {
    let mut buckets: Vec<Json> = Vec::with_capacity(counts.len());
    for (i, &bound) in LATENCY_BUCKETS_US.iter().enumerate() {
        buckets.push(Json::Obj(vec![
            ("le_us".to_string(), bound.to_json()),
            ("count".to_string(), counts[i].load(Relaxed).to_json()),
        ]));
    }
    buckets.push(Json::Obj(vec![
        ("le_us".to_string(), Json::Null),
        (
            "count".to_string(),
            counts[LATENCY_BUCKETS_US.len()].load(Relaxed).to_json(),
        ),
    ]));
    Json::Arr(buckets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let m = Metrics::new();
        m.record(Endpoint::Simulate, 200, 80);
        m.record(Endpoint::Simulate, 200, 3_000);
        m.record(Endpoint::Lint, 400, 20_000_000);
        m.record_shed();
        m.record_connection();
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        m.set_queue_depth(5);
        m.set_queue_depth(2);
        assert_eq!(m.total_requests(), 3);
        assert_eq!(m.total_shed(), 1);
        assert_eq!(m.connections_peak(), 2);

        let doc = m.to_json(&SimMetrics::default());
        assert_eq!(doc.get("requests_total").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("responses_2xx").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("responses_4xx").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("shed_503").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("queue_depth").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("queue_peak").and_then(Json::as_u64), Some(5));
        let by = doc.get("requests_by_endpoint").unwrap();
        assert_eq!(by.get("simulate").and_then(Json::as_u64), Some(2));
        let buckets = doc
            .get("latency_us_buckets")
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(buckets.len(), LATENCY_BUCKETS_US.len() + 1);
        // 80µs → first bucket; 20s → overflow bucket.
        assert_eq!(buckets[0].get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(
            buckets.last().unwrap().get("count").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(doc.get("connections_open").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("connections_peak").and_then(Json::as_u64), Some(2));
        let sim_lat = doc
            .get("latency_by_endpoint")
            .unwrap()
            .get("simulate")
            .unwrap();
        assert_eq!(sim_lat.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(sim_lat.get("sum_us").and_then(Json::as_u64), Some(3_080));
        let sim_buckets = sim_lat.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(sim_buckets[0].get("count").and_then(Json::as_u64), Some(1));
        // The document itself must round-trip through the parser.
        assert_eq!(
            impact_support::json::parse(&doc.to_string_pretty()).as_ref(),
            Ok(&doc)
        );
    }

    #[test]
    fn sim_section_carries_disk_and_store_counters() {
        let m = Metrics::new();
        let sim = SimMetrics {
            disk_served: 3,
            instructions_disk_served: 42,
            store: Some(impact_store::StoreCounters {
                hits: 5,
                ..Default::default()
            }),
            ..SimMetrics::default()
        };
        let doc = m.to_json(&sim);
        let s = doc.get("sim").unwrap();
        assert_eq!(s.get("disk_served").and_then(Json::as_u64), Some(3));
        assert_eq!(
            s.get("instructions_disk_served").and_then(Json::as_u64),
            Some(42)
        );
        assert_eq!(s.get("store_hits").and_then(Json::as_u64), Some(5));
        assert_eq!(s.get("store_corrupt").and_then(Json::as_u64), Some(0));
        // Without an attached store the prefixed counters stay absent.
        let bare = m.to_json(&SimMetrics::default());
        assert!(bare.get("sim").unwrap().get("store_hits").is_none());
        assert_eq!(
            bare.get("sim")
                .unwrap()
                .get("disk_served")
                .and_then(Json::as_u64),
            Some(0)
        );
    }
}

//! Dependency-free HTTP/1.1 message framing.
//!
//! Implements exactly the subset the service needs: request parsing with
//! `Content-Length` bodies (no chunked transfer coding), keep-alive
//! semantics, and response serialization. Two parsing surfaces share the
//! same grammar helpers:
//!
//! - [`read_request`] pulls one request off a blocking [`BufRead`] — the
//!   shape tests and simple clients want;
//! - [`parse_request_bytes`] is the reactor's incremental form: given
//!   whatever bytes have arrived so far, it either yields one complete
//!   request plus the number of bytes it consumed, reports that more
//!   bytes are needed, or rejects the prefix. Calling it repeatedly on a
//!   growing buffer parses pipelined requests one at a time without ever
//!   blocking, regardless of how the bytes were split across reads.

use std::io::{self, BufRead, Write};

use impact_support::json::Json;

/// Hard cap on the request line plus all header bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Hard cap on a request body (`.impact` programs are text; the largest
/// bundled workload prints well under 1 MB).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method verb, uppercase as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as received (path plus optional query).
    pub target: String,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http11: bool,
    /// Header fields, names lowercased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (lowercase) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target without its query string.
    #[must_use]
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close).
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying transport failed (includes read timeouts).
    Io(io::Error),
    /// The bytes were not a well-formed request; the string is safe to
    /// echo in a 400 response.
    Malformed(String),
    /// Head or body exceeded its size cap; respond 431/413 and close.
    TooLarge(&'static str),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(what) => write!(f, "{what} too large"),
        }
    }
}

/// Parses `METHOD TARGET VERSION`; returns `(method, target, http11)`.
fn parse_request_line(line: &str) -> Result<(String, String, bool), HttpError> {
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::Malformed(format!("bad request line: {line:?}"))),
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v => {
            return Err(HttpError::Malformed(format!(
                "unsupported protocol version {v:?}"
            )))
        }
    };
    Ok((method.to_string(), target.to_string(), http11))
}

/// Parses `Name: value` into a lowercased-name pair.
fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    let Some((name, value)) = line.split_once(':') else {
        return Err(HttpError::Malformed(format!("bad header line: {line:?}")));
    };
    Ok((name.trim().to_ascii_lowercase(), value.trim().to_string()))
}

/// Validates transfer framing and returns the declared body length.
fn body_length(req: &Request) -> Result<usize, HttpError> {
    if req
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::Malformed(
            "transfer-encoding is not supported; send Content-Length".to_string(),
        ));
    }
    let body_len = match req.header("content-length") {
        None => 0,
        Some(v) => v
            .trim()
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length: {v:?}")))?,
    };
    if body_len > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("request body"));
    }
    Ok(body_len)
}

/// One line ending in `\n` (CRLF tolerated), or `None` on clean EOF.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    let mut chunk = io::Read::take(&mut *reader, *budget as u64 + 1);
    let n = chunk.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if n > *budget {
        return Err(HttpError::TooLarge("request head"));
    }
    *budget -= n;
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| HttpError::Malformed("request head is not valid UTF-8".to_string()))
}

/// Reads one request off the connection.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly before
/// sending a request line (the normal end of a keep-alive session).
///
/// # Errors
///
/// [`HttpError::Io`] on transport errors (including read timeouts),
/// [`HttpError::Malformed`] / [`HttpError::TooLarge`] on invalid input.
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let Some(line) = read_line(reader, &mut budget)? else {
        return Ok(None);
    };
    let (method, target, http11) = parse_request_line(&line)?;

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader, &mut budget)? else {
            return Err(HttpError::Malformed(
                "connection closed inside the header block".to_string(),
            ));
        };
        if line.is_empty() {
            break;
        }
        headers.push(parse_header_line(&line)?);
    }

    let mut req = Request {
        method,
        target,
        http11,
        headers,
        body: Vec::new(),
    };
    let body_len = body_length(&req)?;
    req.body = vec![0; body_len];
    reader.read_exact(&mut req.body)?;
    Ok(Some(req))
}

/// Byte offset just past the blank line terminating the request head,
/// if the head is complete within `buf`.
fn head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match buf.get(i + 1) {
                Some(b'\n') => return Some(i + 2),
                Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Attempts to parse one complete request from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when `buf` starts with a
/// whole request (`consumed` bytes of it — the caller drains those and
/// may call again for the next pipelined request), and `Ok(None)` when
/// the bytes so far are a valid prefix that needs more input.
///
/// # Errors
///
/// [`HttpError::Malformed`] when the prefix can never become a valid
/// request, [`HttpError::TooLarge`] when the head exceeds
/// [`MAX_HEAD_BYTES`] (respond `431`) or the declared body exceeds
/// [`MAX_BODY_BYTES`] (respond `413`). Never returns [`HttpError::Io`].
pub fn parse_request_bytes(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
    let Some(head_len) = head_end(buf) else {
        // An unterminated head can only be tolerated while it still
        // fits the budget; past that it is a slowloris or junk.
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("request head"));
        }
        return Ok(None);
    };
    if head_len > MAX_HEAD_BYTES {
        return Err(HttpError::TooLarge("request head"));
    }
    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| HttpError::Malformed("request head is not valid UTF-8".to_string()))?;

    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let (method, target, http11) = parse_request_line(request_line)?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        headers.push(parse_header_line(line)?);
    }

    let mut req = Request {
        method,
        target,
        http11,
        headers,
        body: Vec::new(),
    };
    let body_len = body_length(&req)?;
    let total = head_len + body_len;
    if buf.len() < total {
        return Ok(None);
    }
    req.body = buf[head_len..total].to_vec();
    Ok(Some((req, total)))
}

/// Standard reason phrase for the statuses the service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the framing set (`Content-Type` included
    /// by the constructors; `Content-Length`/`Connection` are written by
    /// [`Response::write`]).
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A pretty-printed JSON response (trailing newline, curl-friendly).
    #[must_use]
    pub fn json(status: u16, doc: &Json) -> Self {
        let mut body = doc.to_string_pretty();
        body.push('\n');
        Self {
            status,
            headers: vec![("Content-Type".to_string(), "application/json".to_string())],
            body: body.into_bytes(),
        }
    }

    /// A JSON error envelope: `{"error": message}`.
    #[must_use]
    pub fn error(status: u16, message: impl Into<String>) -> Self {
        Self::json(
            status,
            &Json::Obj(vec![("error".to_string(), Json::Str(message.into()))]),
        )
    }

    /// Adds a header field.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes the response, including framing headers.
    ///
    /// # Errors
    ///
    /// Propagates transport errors (including write timeouts).
    pub fn write(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nServer: impact-serve\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        // One write per response: splitting head and body into separate
        // segments interacts badly with Nagle + delayed ACK.
        let mut frame = head.into_bytes();
        frame.extend_from_slice(&self.body);
        w.write_all(&frame)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /v1/lint?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/v1/lint");
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive());
        assert_eq!(req.header("host"), Some("h"));
    }

    #[test]
    fn keep_alive_honors_connection_header_and_version() {
        let close = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!close.keep_alive());
        let old = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!old.keep_alive());
        let old_ka = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(old_ka.keep_alive());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(matches!(
            parse("NOT-HTTP\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/2\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbad header\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        // Truncated body surfaces as an I/O error.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn oversized_heads_and_bodies_are_rejected() {
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_HEAD_BYTES));
        assert!(matches!(parse(&huge), Err(HttpError::TooLarge(_))));
        let body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&body), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn responses_serialize_with_framing() {
        let resp = Response::json(200, &Json::Obj(vec![])).with_header("Retry-After", "1");
        let mut out = Vec::new();
        resp.write(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 3\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}\n"), "{text}");
    }
}

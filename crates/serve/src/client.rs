//! A minimal blocking HTTP/1.1 client — just enough to drive the
//! server from tests, the CI smoke check, and the `loadgen` bench.
//! Speaks the same dialect the server does: `Content-Length` framing,
//! keep-alive by default.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Lower-cased header name/value pairs.
    pub headers: Vec<(String, String)>,
    /// Response body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with the given (lower-case) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to the server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects with the default 10-second I/O timeouts.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with_timeouts(addr, Duration::from_secs(10), Duration::from_secs(10))
    }

    /// Connects with explicit read/write timeouts (a zero duration
    /// disables that timeout).
    pub fn connect_with_timeouts(
        addr: SocketAddr,
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let optional = |d: Duration| (!d.is_zero()).then_some(d);
        stream.set_read_timeout(optional(read_timeout))?;
        stream.set_write_timeout(optional(write_timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads the response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        // One write per request (see the matching note in Response::write).
        let frame = format!(
            "{method} {path} HTTP/1.1\r\nHost: impact-serve\r\nContent-Length: {}\r\n\r\n{body}",
            body.len(),
        );
        self.writer.write_all(frame.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends one request with extra headers and a raw byte body (the
    /// shard proxy path: relay another node's request verbatim).
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let mut frame = format!("{method} {path} HTTP/1.1\r\nHost: impact-serve\r\n").into_bytes();
        for (name, value) in extra_headers {
            frame.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        frame.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
        frame.extend_from_slice(body);
        self.writer.write_all(&frame)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `GET` returning just status and body.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, Vec<u8>)> {
        let resp = self.request("GET", path, None)?;
        Ok((resp.status, resp.body))
    }

    /// `POST` with a JSON body, returning the full response.
    pub fn post_json(&mut self, path: &str, json: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(json))
    }

    /// Writes `count` copies of one request back-to-back in a single
    /// frame (HTTP/1.1 pipelining), without reading any response. Pair
    /// with `count` calls to [`Client::read_response`].
    pub fn send_batch(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        count: usize,
    ) -> io::Result<()> {
        let body = body.unwrap_or("");
        let one = format!(
            "{method} {path} HTTP/1.1\r\nHost: impact-serve\r\nContent-Length: {}\r\n\r\n{body}",
            body.len(),
        );
        let frame = one.repeat(count);
        self.writer.write_all(frame.as_bytes())?;
        self.writer.flush()
    }

    /// Reads one response off the connection (the receive half of
    /// [`Client::send_batch`]; `request` uses it internally).
    pub fn read_response(&mut self) -> io::Result<ClientResponse> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before the status line",
            ));
        }
        let status = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line: {line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            line.clear();
            self.reader.read_line(&mut line)?;
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                    })?;
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

//! Request decoding, routing, and the endpoint handlers.
//!
//! Handlers are plain functions from [`Request`] to [`Response`] over a
//! shared [`AppState`], so they unit-test without sockets. All bodies are
//! JSON (decoded with [`impact_support::json::parse`]); programs travel
//! inside them as `impact-asm` text.
//!
//! | Route | Body | Result |
//! |---|---|---|
//! | `POST /v1/lint` | `{"program", "name"?, "runs"?, "max_instrs"?, "deny_warnings"?}` | the `impact lint --json` document |
//! | `POST /v1/layout` | `{"program", "name"?, "runs"?, "max_instrs"?, "min_prob"?}` | placement + quality metrics |
//! | `POST /v1/simulate` | `{"program", "configs", "seed"?, "max_instrs"?, "layout"?, "runs"?}` | per-config cache statistics |
//! | `POST /v1/analyze` | `{"program", "name"?, "cache"?, "block"?}` | profile-free static analysis (the `impact analyze --json` document) |
//! | `POST /v1/advise` | `{"program", "name"?, "cache"?, "block"?, "diff"?}` | placement scores + layout advisors (the `impact advise --json` document) |
//! | `GET /metrics` | — | counters, latency histogram, memo hit rate |

use std::sync::Arc;

use impact_analyze::{
    advise_static, analyze_static, reports_to_json, CheckedPipeline, ConflictConfig,
};
use impact_asm::parse_program;
use impact_cache::{Associativity, CacheConfig, CacheStats, FillPolicy, Replacement};
use impact_experiments::session::{SharedSimSession, SimSession};
use impact_ir::Program;
use impact_layout::pipeline::{Pipeline, PipelineConfig};
use impact_layout::{baseline, Placement};
use impact_profile::ExecLimits;
use impact_store::Store;
use impact_support::json::{parse as parse_json, Json, ToJson};

use crate::http::{Request, Response};
use crate::metrics::{Endpoint, Metrics};
use crate::rcache::ResponseCache;
use crate::server::ServeConfig;
use crate::shard::{ShardRouter, FORWARDED_HEADER};

/// Default evaluation input seed (the CLI's `--seed` default).
pub const DEFAULT_SEED: u64 = 1_000_003;
/// Default dynamic instruction cap (the CLI's `--max-instrs` default).
pub const DEFAULT_MAX_INSTRS: u64 = 5_000_000;
/// Default profiling runs (the CLI's `--runs` default).
pub const DEFAULT_RUNS: u32 = 8;

/// Everything a request handler can reach: the long-lived memoizing
/// evaluation engine and the service counters.
#[derive(Debug)]
pub struct AppState {
    /// Fingerprint-keyed simulation engine, shared by every worker.
    pub session: SharedSimSession,
    /// Service counters rendered by `GET /metrics`.
    pub metrics: Metrics,
    /// Serving-layer response memo consulted by the reactor before
    /// dispatch (exact `(target, body)` bytes → first response).
    pub rcache: ResponseCache,
    /// Rendezvous router when the node runs in shard mode (`--peers`).
    pub shard: Option<ShardRouter>,
}

impl AppState {
    /// Fresh state whose evaluation engine streams with `sim_jobs`
    /// worker threads per evaluation; default response-memo budget.
    #[must_use]
    pub fn new(sim_jobs: usize) -> Self {
        Self::with_cache(sim_jobs, crate::rcache::DEFAULT_CACHE_BYTES)
    }

    /// Like [`AppState::new`] with an explicit response-memo byte
    /// budget (`0` disables the memo).
    #[must_use]
    pub fn with_cache(sim_jobs: usize, response_cache_bytes: usize) -> Self {
        Self {
            session: SharedSimSession::with_jobs(sim_jobs),
            metrics: Metrics::new(),
            rcache: ResponseCache::new(response_cache_bytes),
            shard: None,
        }
    }

    /// Full state from a [`ServeConfig`]: opens the persistent store
    /// (when `store_dir` is set) so the session disk-serves repeats and
    /// writes new results through, and validates the shard membership.
    ///
    /// # Errors
    ///
    /// Store directories that cannot be created/opened surface as the
    /// underlying I/O error; `peers` without a matching `advertise`
    /// entry (or vice versa) is `InvalidInput`.
    pub fn from_config(config: &ServeConfig) -> std::io::Result<Self> {
        let mut session = SimSession::with_jobs(config.sim_jobs);
        if let Some(bytes) = config.artifact_budget {
            session = session.with_artifact_budget(bytes);
        }
        if let Some(dir) = &config.store_dir {
            session = session.with_store(Arc::new(Store::open(dir)?));
        }
        let invalid = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg);
        let shard = match (config.peers.is_empty(), &config.advertise) {
            (true, None) => None,
            (true, Some(_)) => return Err(invalid("advertise set without a peer list")),
            (false, None) => return Err(invalid("a peer list needs an advertised self address")),
            (false, Some(advertise)) => Some(ShardRouter::new(config.peers.clone(), advertise)?),
        };
        Ok(Self {
            session: SharedSimSession::from_session(session),
            metrics: Metrics::new(),
            rcache: ResponseCache::new(config.response_cache_bytes),
            shard,
        })
    }
}

/// Dispatches one request to its handler; returns the endpoint label
/// (for metrics) alongside the response.
#[must_use]
pub fn route(state: &AppState, req: &Request) -> (Endpoint, Response) {
    const ROUTES: [(&str, &str); 7] = [
        ("POST", "/v1/lint"),
        ("POST", "/v1/layout"),
        ("POST", "/v1/simulate"),
        ("POST", "/v1/analyze"),
        ("POST", "/v1/advise"),
        ("GET", "/metrics"),
        ("GET", "/healthz"),
    ];
    match (req.method.as_str(), req.path()) {
        ("POST", "/v1/lint") => (Endpoint::Lint, lint(req)),
        ("POST", "/v1/layout") => (Endpoint::Layout, layout(req)),
        ("POST", "/v1/simulate") => {
            // Shard mode: hand the request to its rendezvous owner.
            // Marked requests are already on their owner (one hop max).
            if let Some(shard) = &state.shard {
                if req.header(FORWARDED_HEADER).is_none() {
                    if let Some(peer) = shard.owner_of(&req.body) {
                        return (Endpoint::Simulate, shard.forward(peer, req));
                    }
                }
                shard.note_local();
            }
            (Endpoint::Simulate, simulate(state, req))
        }
        ("POST", "/v1/analyze") => (Endpoint::Analyze, analyze(req)),
        ("POST", "/v1/advise") => (Endpoint::Advise, advise(req)),
        ("GET", "/metrics") => {
            let mut doc = state.metrics.to_json(&state.session.metrics());
            if let Json::Obj(fields) = &mut doc {
                fields.push(("response_cache".to_string(), state.rcache.to_json()));
                if let Some(shard) = &state.shard {
                    fields.push(("shard".to_string(), shard.to_json()));
                }
            }
            (Endpoint::Metrics, Response::json(200, &doc))
        }
        ("GET", "/healthz") => (
            Endpoint::Other,
            Response::json(200, &Json::Obj(vec![("ok".to_string(), Json::Bool(true))])),
        ),
        (method, path) => {
            if let Some((allowed, _)) = ROUTES.iter().find(|(_, p)| *p == path) {
                let resp = Response::error(
                    405,
                    format!("{method} is not supported on {path}; use {allowed}"),
                )
                .with_header("Allow", *allowed);
                (Endpoint::Other, resp)
            } else {
                (
                    Endpoint::Other,
                    Response::error(404, format!("no route for {path}")),
                )
            }
        }
    }
}

/// `POST /v1/lint` — run the full `impact-analyze` registry over the
/// submitted program's pipeline run. The body is byte-for-byte the
/// document `impact lint --json` prints for one target: both surfaces
/// call [`impact_analyze::reports_to_json`]. With `"deny_warnings":
/// true` (the CLI's `--deny-warnings`) a warning-bearing report comes
/// back as 422 — the body bytes are unchanged, only the status flips.
fn lint(req: &Request) -> Response {
    let doc = match decode_body(req) {
        Ok(d) => d,
        Err(resp) => return *resp,
    };
    let (name, program, common) = match decode_program(&doc) {
        Ok(p) => p,
        Err(resp) => return *resp,
    };
    let deny_warnings = match field_bool(&doc, "deny_warnings") {
        Ok(v) => v.unwrap_or(false),
        Err(resp) => return *resp,
    };
    let checked = CheckedPipeline::new(Pipeline::new(common.pipeline_config()));
    match checked.try_run(&program) {
        Ok((_, report)) => {
            let status = if deny_warnings && report.warning_count() > 0 {
                422
            } else {
                200
            };
            Response::json(status, &reports_to_json([(name.as_str(), &report)]))
        }
        Err(e) => Response::error(400, e.to_string()),
    }
}

/// `POST /v1/analyze` — profile-free static analysis: Ball/Larus-style
/// branch heuristics drive the placement pipeline, then the static
/// cache-conflict passes (`IPA301`–`IPA303`) and the miss-ratio bound
/// run over the result. The body is the per-target document `impact
/// analyze --json` emits: both surfaces call
/// [`StaticAnalysis::to_json_for_target`](impact_analyze::StaticAnalysis::to_json_for_target).
fn analyze(req: &Request) -> Response {
    let doc = match decode_body(req) {
        Ok(d) => d,
        Err(resp) => return *resp,
    };
    let (name, program, _) = match decode_program(&doc) {
        Ok(p) => p,
        Err(resp) => return *resp,
    };
    let mut conflict = ConflictConfig::default();
    match field_u64(&doc, "cache") {
        Ok(Some(v)) => conflict.cache_bytes = v,
        Ok(None) => {}
        Err(resp) => return *resp,
    }
    match field_u64(&doc, "block") {
        Ok(Some(v)) => conflict.line_bytes = v,
        Ok(None) => {}
        Err(resp) => return *resp,
    }
    match analyze_static(&program, &PipelineConfig::default(), conflict) {
        Ok(analysis) => Response::json(200, &analysis.to_json_for_target(&name)),
        Err(e) => Response::error(400, e.to_string()),
    }
}

/// `POST /v1/advise` — [`analyze`] plus placement scoring (ExtTSP and
/// distance tiers) and the layout advisors (`IPA401`–`IPA405`). The
/// body is the per-target document `impact advise --json` emits: both
/// surfaces call
/// [`Advice::to_json_for_target`](impact_analyze::Advice::to_json_for_target).
/// An optional `"diff"` field (`natural` or `random[:seed]`, the CLI's
/// `--diff`) switches to the differential document.
fn advise(req: &Request) -> Response {
    let doc = match decode_body(req) {
        Ok(d) => d,
        Err(resp) => return *resp,
    };
    let (name, program, _) = match decode_program(&doc) {
        Ok(p) => p,
        Err(resp) => return *resp,
    };
    let mut conflict = ConflictConfig::default();
    match field_u64(&doc, "cache") {
        Ok(Some(v)) => conflict.cache_bytes = v,
        Ok(None) => {}
        Err(resp) => return *resp,
    }
    match field_u64(&doc, "block") {
        Ok(Some(v)) => conflict.line_bytes = v,
        Ok(None) => {}
        Err(resp) => return *resp,
    }
    let diff = match doc.get("diff") {
        None => None,
        Some(Json::Str(spec)) => Some(spec.clone()),
        Some(_) => return Response::error(400, "field 'diff' must be a string".to_string()),
    };
    let advice = match advise_static(&program, &PipelineConfig::default(), conflict) {
        Ok(a) => a,
        Err(e) => return Response::error(400, e.to_string()),
    };
    let Some(spec) = diff else {
        return Response::json(200, &advice.to_json_for_target(&name));
    };
    let result = &advice.analysis.result;
    let (bname, bp) = if spec == "natural" {
        ("natural".to_string(), baseline::natural(&result.program))
    } else if spec == "random" {
        ("random:7".to_string(), baseline::random(&result.program, 7))
    } else if let Some(seed) = spec.strip_prefix("random:").and_then(|s| s.parse().ok()) {
        (
            format!("random:{seed}"),
            baseline::random(&result.program, seed),
        )
    } else {
        return Response::error(
            400,
            format!("unknown diff baseline '{spec}' (use natural | random[:seed])"),
        );
    };
    Response::json(
        200,
        &advice.diff_json_for_target(&name, &bname, &bp, conflict),
    )
}

/// `POST /v1/layout` — run the five-step placement pipeline and return
/// the placement plus its quality metrics.
fn layout(req: &Request) -> Response {
    let doc = match decode_body(req) {
        Ok(d) => d,
        Err(resp) => return *resp,
    };
    let (name, program, common) = match decode_program(&doc) {
        Ok(p) => p,
        Err(resp) => return *resp,
    };
    let mut config = common.pipeline_config();
    match field_f64(&doc, "min_prob") {
        Ok(Some(p)) => config.min_prob = p,
        Ok(None) => {}
        Err(resp) => return *resp,
    }
    let result = match Pipeline::new(config).try_run(&program) {
        Ok(r) => r,
        Err(e) => return Response::error(400, e.to_string()),
    };

    let placement_doc = Json::Arr(
        result
            .program
            .functions()
            .map(|(fid, func)| {
                let blocks: Vec<Json> = (0..func.block_count())
                    .map(|b| {
                        result
                            .placement
                            .addr(fid, impact_ir::BlockId::new(b))
                            .to_json()
                    })
                    .collect();
                Json::Obj(vec![
                    ("function".to_string(), func.name().to_json()),
                    ("blocks".to_string(), Json::Arr(blocks)),
                ])
            })
            .collect(),
    );
    let order = Json::Arr(
        result
            .global
            .order()
            .iter()
            .map(|&f| result.program.function(f).name().to_json())
            .collect(),
    );
    Response::json(
        200,
        &Json::Obj(vec![
            ("name".to_string(), name.to_json()),
            (
                "total_bytes".to_string(),
                result.total_static_bytes().to_json(),
            ),
            (
                "effective_bytes".to_string(),
                result.effective_static_bytes().to_json(),
            ),
            (
                "inline".to_string(),
                Json::Obj(vec![
                    (
                        "code_increase".to_string(),
                        result.inline_report.code_increase.to_json(),
                    ),
                    (
                        "call_decrease".to_string(),
                        result.inline_report.call_decrease.to_json(),
                    ),
                    (
                        "instrs_per_call".to_string(),
                        result.inline_report.instrs_per_call.to_json(),
                    ),
                    (
                        "transfers_per_call".to_string(),
                        result.inline_report.transfers_per_call.to_json(),
                    ),
                ]),
            ),
            (
                "trace_quality".to_string(),
                Json::Obj(vec![
                    (
                        "desirable".to_string(),
                        result.trace_quality.desirable.to_json(),
                    ),
                    (
                        "neutral".to_string(),
                        result.trace_quality.neutral.to_json(),
                    ),
                    (
                        "undesirable".to_string(),
                        result.trace_quality.undesirable.to_json(),
                    ),
                    (
                        "mean_trace_length".to_string(),
                        result.trace_quality.mean_trace_length.to_json(),
                    ),
                ]),
            ),
            ("function_order".to_string(), order),
            ("placement".to_string(), placement_doc),
        ]),
    )
}

/// `POST /v1/simulate` — evaluate cache configurations over the
/// program's trace through the long-lived memoizing session.
fn simulate(state: &AppState, req: &Request) -> Response {
    let doc = match decode_body(req) {
        Ok(d) => d,
        Err(resp) => return *resp,
    };
    let (_, program, common) = match decode_program(&doc) {
        Ok(p) => p,
        Err(resp) => return *resp,
    };
    let seed = match field_u64(&doc, "seed") {
        Ok(v) => v.unwrap_or(DEFAULT_SEED),
        Err(resp) => return *resp,
    };
    let configs = match decode_configs(&doc) {
        Ok(c) => c,
        Err(resp) => return *resp,
    };
    let layout_kind = match doc.get("layout") {
        None => "natural",
        Some(v) => match v.as_str() {
            Some(k @ ("natural" | "optimized")) => k,
            _ => {
                return Response::error(
                    400,
                    "field \"layout\" must be \"natural\" or \"optimized\"",
                )
            }
        },
    };

    let (sim_program, placement): (Program, Placement) = if layout_kind == "optimized" {
        match Pipeline::new(common.pipeline_config()).try_run(&program) {
            Ok(r) => (r.program, r.placement),
            Err(e) => return Response::error(400, e.to_string()),
        }
    } else {
        let placement = baseline::natural(&program);
        (program, placement)
    };

    let (stats, instructions) =
        state
            .session
            .evaluate(&sim_program, &placement, seed, common.limits(), &configs);
    Response::json(
        200,
        &simulate_response_json(layout_kind, seed, &configs, &stats, instructions),
    )
}

/// The `POST /v1/simulate` response document. Public so the integration
/// tests (and any client) can rebuild the expected bytes from a direct
/// [`SimSession`](impact_experiments::session::SimSession) evaluation and
/// assert bit-identical service output.
#[must_use]
pub fn simulate_response_json(
    layout: &str,
    seed: u64,
    configs: &[CacheConfig],
    stats: &[CacheStats],
    instructions: u64,
) -> Json {
    let results = configs
        .iter()
        .zip(stats)
        .map(|(config, s)| {
            Json::Obj(vec![
                ("config".to_string(), config_to_json(config)),
                ("accesses".to_string(), s.accesses.to_json()),
                ("misses".to_string(), s.misses.to_json()),
                ("words_fetched".to_string(), s.words_fetched.to_json()),
                ("miss_ratio".to_string(), s.miss_ratio().to_json()),
                ("traffic_ratio".to_string(), s.traffic_ratio().to_json()),
                ("avg_fetch".to_string(), s.avg_fetch().to_json()),
                ("avg_exec".to_string(), s.avg_exec().to_json()),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("layout".to_string(), layout.to_json()),
        ("seed".to_string(), seed.to_json()),
        ("instructions".to_string(), instructions.to_json()),
        ("results".to_string(), Json::Arr(results)),
    ])
}

/// Echo of one cache configuration in the simulate response.
fn config_to_json(c: &CacheConfig) -> Json {
    let assoc = match c.associativity {
        Associativity::Direct => Json::Str("direct".to_string()),
        Associativity::Full => Json::Str("full".to_string()),
        Associativity::Ways(n) => n.to_json(),
    };
    let fill = match c.fill {
        FillPolicy::FullBlock => "full".to_string(),
        FillPolicy::Partial => "partial".to_string(),
        FillPolicy::Sectored { sector_bytes } => format!("sector:{sector_bytes}"),
    };
    let replacement = match c.replacement {
        Replacement::Lru => "lru",
        Replacement::Fifo => "fifo",
        Replacement::Random => "random",
    };
    Json::Obj(vec![
        ("size".to_string(), c.size_bytes.to_json()),
        ("block".to_string(), c.block_bytes.to_json()),
        ("assoc".to_string(), assoc),
        ("fill".to_string(), fill.to_json()),
        ("replacement".to_string(), replacement.to_json()),
    ])
}

/// Request parameters shared by every program-accepting endpoint.
struct CommonParams {
    runs: u32,
    max_instrs: u64,
}

impl CommonParams {
    fn limits(&self) -> ExecLimits {
        ExecLimits {
            max_instructions: self.max_instrs,
            max_call_depth: 512,
        }
    }

    fn pipeline_config(&self) -> PipelineConfig {
        PipelineConfig {
            profile_runs: self.runs,
            limits: self.limits(),
            ..PipelineConfig::default()
        }
    }
}

/// Boxed so the `Result` stays one machine word on the happy path.
type Reject = Box<Response>;

fn reject(status: u16, message: impl Into<String>) -> Reject {
    Box::new(Response::error(status, message))
}

fn decode_body(req: &Request) -> Result<Json, Reject> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| reject(400, "request body is not valid UTF-8"))?;
    if text.trim().is_empty() {
        return Err(reject(400, "request body must be a JSON object"));
    }
    parse_json(text).map_err(|e| reject(400, format!("request body is not valid JSON: {e}")))
}

/// Decodes the `program` (impact-asm text), optional `name`, and the
/// common numeric parameters.
fn decode_program(doc: &Json) -> Result<(String, Program, CommonParams), Reject> {
    let Some(text) = doc.get("program").and_then(Json::as_str) else {
        return Err(reject(
            400,
            "missing \"program\" field (a string of impact-asm text)",
        ));
    };
    let program =
        parse_program(text).map_err(|e| reject(400, format!("cannot parse \"program\": {e}")))?;
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("<request>")
        .to_string();
    let runs = match field_u64(doc, "runs")? {
        None => DEFAULT_RUNS,
        Some(r) => u32::try_from(r)
            .ok()
            .filter(|&r| r >= 1)
            .ok_or_else(|| reject(400, "field \"runs\" must be a positive integer"))?,
    };
    let max_instrs = field_u64(doc, "max_instrs")?.unwrap_or(DEFAULT_MAX_INSTRS);
    Ok((name, program, CommonParams { runs, max_instrs }))
}

fn field_u64(doc: &Json, key: &str) -> Result<Option<u64>, Reject> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| reject(400, format!("field {key:?} must be a non-negative integer"))),
    }
}

fn field_bool(doc: &Json, key: &str) -> Result<Option<bool>, Reject> {
    match doc.get(key) {
        None => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(reject(400, format!("field {key:?} must be a boolean"))),
    }
}

fn field_f64(doc: &Json, key: &str) -> Result<Option<f64>, Reject> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| reject(400, format!("field {key:?} must be a number"))),
    }
}

/// Decodes the `configs` array of cache descriptions.
fn decode_configs(doc: &Json) -> Result<Vec<CacheConfig>, Reject> {
    let Some(items) = doc.get("configs").and_then(Json::as_arr) else {
        return Err(reject(
            400,
            "missing \"configs\" field (an array of cache configurations)",
        ));
    };
    if items.is_empty() {
        return Err(reject(400, "\"configs\" must name at least one cache"));
    }
    items.iter().map(decode_config).collect()
}

fn decode_config(item: &Json) -> Result<CacheConfig, Reject> {
    let Some(size) = item.get("size").and_then(Json::as_u64) else {
        return Err(reject(
            400,
            "each config needs a \"size\" field (cache bytes)",
        ));
    };
    let block = field_u64(item, "block")?.unwrap_or(64);
    let associativity = match item.get("assoc") {
        None => Associativity::Direct,
        Some(v) => match (v.as_str(), v.as_u64()) {
            (Some("direct"), _) => Associativity::Direct,
            (Some("full"), _) => Associativity::Full,
            (_, Some(n)) if n >= 1 => Associativity::Ways(
                u32::try_from(n)
                    .map_err(|_| reject(400, "field \"assoc\" way count is out of range"))?,
            ),
            _ => {
                return Err(reject(
                    400,
                    "field \"assoc\" must be \"direct\", \"full\", or a way count",
                ))
            }
        },
    };
    let fill = match item.get("fill") {
        None => FillPolicy::FullBlock,
        Some(v) => match v.as_str() {
            Some("full") => FillPolicy::FullBlock,
            Some("partial") => FillPolicy::Partial,
            Some(s) => match s.strip_prefix("sector:").and_then(|n| n.parse().ok()) {
                Some(sector_bytes) => FillPolicy::Sectored { sector_bytes },
                None => {
                    return Err(reject(
                        400,
                        "field \"fill\" must be \"full\", \"partial\", or \"sector:<bytes>\"",
                    ))
                }
            },
            None => {
                return Err(reject(
                    400,
                    "field \"fill\" must be \"full\", \"partial\", or \"sector:<bytes>\"",
                ))
            }
        },
    };
    let replacement = match item.get("replacement") {
        None => Replacement::Lru,
        Some(v) => match v.as_str() {
            Some("lru") => Replacement::Lru,
            Some("fifo") => Replacement::Fifo,
            Some("random") => Replacement::Random,
            _ => {
                return Err(reject(
                    400,
                    "field \"replacement\" must be \"lru\", \"fifo\", or \"random\"",
                ))
            }
        },
    };
    let config = CacheConfig {
        size_bytes: size,
        block_bytes: block,
        associativity,
        fill,
        replacement,
    };
    config
        .validate()
        .map_err(|e| reject(400, format!("bad cache configuration: {e}")))?;
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            target: path.to_string(),
            http11: true,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            target: path.to_string(),
            http11: true,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn program_text() -> String {
        impact_asm::print_program(&impact_workloads::by_name("cmp").unwrap().program)
    }

    fn body_json(resp: &Response) -> Json {
        parse_json(std::str::from_utf8(&resp.body).unwrap()).unwrap()
    }

    #[test]
    fn unknown_routes_and_methods() {
        let state = AppState::new(1);
        let (ep, resp) = route(&state, &get("/nope"));
        assert_eq!(ep, Endpoint::Other);
        assert_eq!(resp.status, 404);
        let (_, resp) = route(&state, &get("/v1/simulate"));
        assert_eq!(resp.status, 405);
        assert!(resp
            .headers
            .iter()
            .any(|(n, v)| n == "Allow" && v == "POST"));
        let (_, resp) = route(&state, &get("/healthz"));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn bad_bodies_are_rejected_with_positions() {
        let state = AppState::new(1);
        let (_, resp) = route(&state, &post("/v1/lint", "{\n  broken"));
        assert_eq!(resp.status, 400);
        let msg = body_json(&resp);
        let text = msg.get("error").and_then(Json::as_str).unwrap().to_string();
        assert!(text.contains("line 2"), "{text}");

        let (_, resp) = route(&state, &post("/v1/simulate", "{}"));
        assert_eq!(resp.status, 400);
        let (_, resp) = route(
            &state,
            &post(
                "/v1/simulate",
                r#"{"program": "not asm", "configs": [{"size": 512}]}"#,
            ),
        );
        assert_eq!(resp.status, 400);
        assert!(String::from_utf8_lossy(&resp.body).contains("cannot parse"));
    }

    #[test]
    fn invalid_cache_configs_are_rejected() {
        let state = AppState::new(1);
        let body = format!(
            r#"{{"program": {}, "configs": [{{"size": 3}}]}}"#,
            Json::Str(program_text()),
        );
        let (_, resp) = route(&state, &post("/v1/simulate", &body));
        assert_eq!(resp.status, 400);
        assert!(String::from_utf8_lossy(&resp.body).contains("power of two"));
    }

    #[test]
    fn simulate_matches_direct_evaluation_and_memoizes() {
        let state = AppState::new(1);
        let text = program_text();
        let body = format!(
            r#"{{"program": {}, "seed": 7, "max_instrs": 40000,
                "configs": [{{"size": 2048}}, {{"size": 512, "assoc": 2}}]}}"#,
            Json::Str(text.clone()),
        );
        let req = post("/v1/simulate", &body);
        let (ep, resp) = route(&state, &req);
        assert_eq!(ep, Endpoint::Simulate);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));

        // Rebuild the expected bytes from a direct evaluation.
        let program = parse_program(&text).unwrap();
        let placement = baseline::natural(&program);
        let configs = [
            CacheConfig::direct_mapped(2048, 64),
            CacheConfig {
                size_bytes: 512,
                block_bytes: 64,
                associativity: Associativity::Ways(2),
                fill: FillPolicy::FullBlock,
                replacement: Replacement::Lru,
            },
        ];
        let limits = ExecLimits {
            max_instructions: 40_000,
            max_call_depth: 512,
        };
        let mut session = impact_experiments::session::SimSession::new();
        let handle = session.request(&program, &placement, 7, limits, &configs);
        session.execute();
        let (stats, instructions) = session.counted(&handle);
        let expected = Response::json(
            200,
            &simulate_response_json("natural", 7, &configs, &stats, instructions),
        );
        assert_eq!(resp.body, expected.body, "service must be bit-identical");

        // A repeat of the same request must not stream a second trace.
        let streamed = state.session.metrics().traces_streamed;
        let (_, resp2) = route(&state, &req);
        assert_eq!(resp2.body, resp.body);
        assert_eq!(state.session.metrics().traces_streamed, streamed);
        assert!(state.session.metrics().memo_served >= 2);
    }

    #[test]
    fn lint_matches_the_cli_document() {
        let state = AppState::new(1);
        let text = program_text();
        let body = format!(
            r#"{{"program": {}, "name": "cmp", "runs": 2, "max_instrs": 60000}}"#,
            Json::Str(text.clone()),
        );
        let (_, resp) = route(&state, &post("/v1/lint", &body));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));

        // Same implementation as `impact lint --json`: reports_to_json.
        let program = parse_program(&text).unwrap();
        let config = PipelineConfig {
            profile_runs: 2,
            limits: ExecLimits {
                max_instructions: 60_000,
                max_call_depth: 512,
            },
            ..PipelineConfig::default()
        };
        let (_, report) = CheckedPipeline::new(Pipeline::new(config))
            .try_run(&program)
            .unwrap();
        let expected = Response::json(200, &reports_to_json([("cmp", &report)]));
        assert_eq!(resp.body, expected.body);
    }

    #[test]
    fn lint_deny_warnings_flips_status_not_body() {
        let state = AppState::new(1);
        // wc carries known IPA005 warnings, so deny_warnings must bite.
        let text = impact_asm::print_program(&impact_workloads::by_name("wc").unwrap().program);
        let plain = format!(
            r#"{{"program": {}, "name": "wc", "runs": 2, "max_instrs": 60000}}"#,
            Json::Str(text.clone()),
        );
        let deny = format!(
            r#"{{"program": {}, "name": "wc", "runs": 2, "max_instrs": 60000,
                "deny_warnings": true}}"#,
            Json::Str(text),
        );
        let (_, ok) = route(&state, &post("/v1/lint", &plain));
        assert_eq!(ok.status, 200);
        let (_, denied) = route(&state, &post("/v1/lint", &deny));
        assert_eq!(denied.status, 422);
        assert_eq!(denied.body, ok.body, "only the status may change");

        let (_, resp) = route(
            &state,
            &post("/v1/lint", r#"{"program": "", "deny_warnings": 1}"#),
        );
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn analyze_matches_the_cli_document() {
        let state = AppState::new(1);
        let text = program_text();
        let body = format!(
            r#"{{"program": {}, "name": "cmp", "cache": 1024, "block": 32}}"#,
            Json::Str(text.clone()),
        );
        let (ep, resp) = route(&state, &post("/v1/analyze", &body));
        assert_eq!(ep, Endpoint::Analyze);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));

        // Same implementation as one `impact analyze --json` array entry.
        let program = parse_program(&text).unwrap();
        let conflict = ConflictConfig {
            cache_bytes: 1024,
            line_bytes: 32,
            ..ConflictConfig::default()
        };
        let analysis = analyze_static(&program, &PipelineConfig::default(), conflict).unwrap();
        let expected = Response::json(200, &analysis.to_json_for_target("cmp"));
        assert_eq!(resp.body, expected.body, "service must be bit-identical");

        let doc = body_json(&resp);
        assert_eq!(doc.get("target").and_then(Json::as_str), Some("cmp"));
        assert!(doc.get("miss_bound").unwrap().get("ratio").is_some());
        assert!(!doc
            .get("hot_functions")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty());

        // Wrong method gets a 405 with the Allow header.
        let (_, resp) = route(&state, &get("/v1/analyze"));
        assert_eq!(resp.status, 405);
        assert!(resp
            .headers
            .iter()
            .any(|(n, v)| n == "Allow" && v == "POST"));
    }

    #[test]
    fn advise_matches_the_cli_document() {
        let state = AppState::new(1);
        let text = program_text();
        let body = format!(
            r#"{{"program": {}, "name": "cmp", "cache": 1024, "block": 32}}"#,
            Json::Str(text.clone()),
        );
        let (ep, resp) = route(&state, &post("/v1/advise", &body));
        assert_eq!(ep, Endpoint::Advise);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));

        // Same implementation as one `impact advise --json` array entry.
        let program = parse_program(&text).unwrap();
        let conflict = ConflictConfig {
            cache_bytes: 1024,
            line_bytes: 32,
            ..ConflictConfig::default()
        };
        let advice = advise_static(&program, &PipelineConfig::default(), conflict).unwrap();
        let expected = Response::json(200, &advice.to_json_for_target("cmp"));
        assert_eq!(resp.body, expected.body, "service must be bit-identical");

        let doc = body_json(&resp);
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(impact_analyze::SCHEMA_VERSION),
            "advise must echo the schema version"
        );
        assert_eq!(doc.get("target").and_then(Json::as_str), Some("cmp"));
        assert!(doc.get("scores").unwrap().get("exttsp").is_some());
        assert!(doc.get("advice").is_some());

        // Differential mode: same engine as `--diff natural`.
        let diff_body = format!(
            r#"{{"program": {}, "name": "cmp", "cache": 1024, "block": 32, "diff": "natural"}}"#,
            Json::Str(text.clone()),
        );
        let (_, resp) = route(&state, &post("/v1/advise", &diff_body));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let natural = baseline::natural(&advice.analysis.result.program);
        let expected = Response::json(
            200,
            &advice.diff_json_for_target("cmp", "natural", &natural, conflict),
        );
        assert_eq!(resp.body, expected.body);
        let doc = body_json(&resp);
        assert_eq!(doc.get("baseline").and_then(Json::as_str), Some("natural"));
        assert!(doc.get("better").is_some());

        // A bad baseline spec is a client error.
        let bad = format!(
            r#"{{"program": {}, "diff": "sorted"}}"#,
            Json::Str(text.clone()),
        );
        let (_, resp) = route(&state, &post("/v1/advise", &bad));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn analyze_echoes_the_schema_version() {
        let state = AppState::new(1);
        let body = format!(
            r#"{{"program": {}, "name": "cmp"}}"#,
            Json::Str(program_text()),
        );
        let (_, resp) = route(&state, &post("/v1/analyze", &body));
        assert_eq!(resp.status, 200);
        let doc = body_json(&resp);
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(impact_analyze::SCHEMA_VERSION),
        );
    }

    #[test]
    fn layout_reports_placement_and_quality() {
        let state = AppState::new(1);
        let body = format!(
            r#"{{"program": {}, "runs": 2, "max_instrs": 60000}}"#,
            Json::Str(program_text()),
        );
        let (_, resp) = route(&state, &post("/v1/layout", &body));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = body_json(&resp);
        assert!(doc.get("total_bytes").and_then(Json::as_u64).unwrap() > 0);
        let placement = doc.get("placement").and_then(Json::as_arr).unwrap();
        assert!(!placement.is_empty());
        assert!(placement[0].get("blocks").and_then(Json::as_arr).is_some());
        assert!(doc.get("trace_quality").unwrap().get("desirable").is_some());
        // Deterministic: same request, same bytes.
        let (_, resp2) = route(&state, &post("/v1/layout", &body));
        assert_eq!(resp.body, resp2.body);
    }

    #[test]
    fn optimized_simulate_layout_is_accepted() {
        let state = AppState::new(1);
        let body = format!(
            r#"{{"program": {}, "layout": "optimized", "runs": 2, "seed": 3,
                "max_instrs": 40000, "configs": [{{"size": 1024}}]}}"#,
            Json::Str(program_text()),
        );
        let (_, resp) = route(&state, &post("/v1/simulate", &body));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = body_json(&resp);
        assert_eq!(doc.get("layout").and_then(Json::as_str), Some("optimized"));
    }

    #[test]
    fn metrics_endpoint_reflects_traffic() {
        let state = AppState::new(1);
        state.metrics.record(Endpoint::Simulate, 200, 10);
        let (_, resp) = route(&state, &get("/metrics"));
        assert_eq!(resp.status, 200);
        let doc = body_json(&resp);
        assert_eq!(doc.get("requests_total").and_then(Json::as_u64), Some(1));
        assert!(doc.get("sim").unwrap().get("memo_hit_rate").is_some());
        let rc = doc.get("response_cache").unwrap();
        assert!(rc.get("hits").and_then(Json::as_u64).is_some());
        assert!(rc.get("budget_bytes").and_then(Json::as_u64).is_some());
    }
}

//! Process shutdown triggers: SIGTERM/SIGINT (Unix) and stdin EOF.
//!
//! The handler installation is the one `unsafe` corner of the service
//! (registering a C signal handler); everything it does is store a
//! value into a static atomic flag, which is async-signal-safe.

use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// Set by the signal handler once SIGTERM or SIGINT arrives.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod unix {
    use super::{Ordering, SIGNALLED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // From libc, which is always linked: sighandler_t signal(int, sighandler_t).
        fn signal(signum: i32, handler: usize) -> usize;
    }

    #[allow(clippy::fn_to_numeric_cast_any)]
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

/// Registers the SIGTERM/SIGINT handler (no-op off Unix).
pub fn install() {
    #[cfg(unix)]
    unix::install();
}

/// True once a termination signal has been observed.
#[must_use]
pub fn triggered() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Spawns a watcher that sets `flag` when either a termination signal
/// arrives or stdin reaches EOF — the two ways a supervised `impact
/// serve` is told to stop. Returns immediately.
pub fn watch_shutdown(flag: Arc<AtomicBool>) {
    install();
    let signal_flag = Arc::clone(&flag);
    thread::Builder::new()
        .name("serve-signal-watch".to_string())
        .spawn(move || loop {
            if triggered() {
                signal_flag.store(true, Ordering::SeqCst);
                return;
            }
            thread::sleep(std::time::Duration::from_millis(50));
        })
        .expect("spawn signal watcher");
    thread::Builder::new()
        .name("serve-stdin-watch".to_string())
        .spawn(move || {
            let mut sink = [0u8; 256];
            let mut stdin = std::io::stdin();
            loop {
                match stdin.read(&mut sink) {
                    Ok(0) | Err(_) => break, // EOF or unreadable: shut down
                    Ok(_) => {}
                }
            }
            flag.store(true, Ordering::SeqCst);
        })
        .expect("spawn stdin watcher");
}

//! Property tests: the text format round-trips arbitrary programs.

use impact_asm::{parse_program, print_program};
use impact_ir::{BlockId, BranchBias, FuncId, Instr, Program, ProgramBuilder, Terminator};
use impact_support::check::forall;
use impact_support::Rng;

fn gen_instr(rng: &mut Rng) -> Instr {
    match rng.gen_below(5) {
        0 => Instr::IntAlu,
        1 => Instr::FpAlu,
        2 => Instr::Load,
        3 => Instr::Store,
        _ => Instr::Nop,
    }
}

/// A terminator plan with indices resolved modulo actual counts.
#[derive(Debug, Clone)]
enum Plan {
    Jump(usize),
    Branch(usize, usize, u16, u16),
    Switch(Vec<(usize, u32)>),
    Call(usize, usize),
    Return,
    Exit,
}

fn gen_plan(rng: &mut Rng) -> Plan {
    match rng.gen_below(6) {
        0 => Plan::Jump(rng.next_u64() as usize),
        1 => Plan::Branch(
            rng.next_u64() as usize,
            rng.next_u64() as usize,
            rng.gen_below(1001) as u16,
            rng.gen_below(501) as u16,
        ),
        2 => {
            let arms = rng.gen_range_inclusive(1, 3);
            Plan::Switch(
                (0..arms)
                    .map(|_| (rng.next_u64() as usize, rng.gen_below(9) as u32))
                    .collect(),
            )
        }
        3 => Plan::Call(rng.next_u64() as usize, rng.next_u64() as usize),
        4 => Plan::Return,
        _ => Plan::Exit,
    }
}

fn gen_program(rng: &mut Rng) -> Program {
    let nfuncs = rng.gen_range_inclusive(1, 3);
    let plans: Vec<Vec<(Vec<Instr>, Plan)>> = (0..nfuncs)
        .map(|_| {
            let nblocks = rng.gen_range_inclusive(1, 5);
            (0..nblocks)
                .map(|_| {
                    let body_len = rng.gen_below(8) as usize;
                    let body: Vec<Instr> = (0..body_len).map(|_| gen_instr(rng)).collect();
                    (body, gen_plan(rng))
                })
                .collect()
        })
        .collect();

    let mut pb = ProgramBuilder::new();
    let ids: Vec<FuncId> = (0..plans.len())
        .map(|i| pb.reserve(format!("f{i}")))
        .collect();
    for (fi, blocks) in plans.iter().enumerate() {
        let mut fb = pb.function_reserved(ids[fi]);
        let bids: Vec<BlockId> = blocks
            .iter()
            .map(|(body, _)| fb.block(body.clone()))
            .collect();
        let n = bids.len();
        for (bi, (_, plan)) in blocks.iter().enumerate() {
            let r = |x: usize| bids[x % n];
            let term = match plan {
                Plan::Jump(t) => Terminator::jump(r(*t)),
                Plan::Branch(a, b, p, s) => {
                    // Quantized probabilities survive the decimal
                    // round trip exactly.
                    let p = f64::from(*p) / 1000.0;
                    let s = (f64::from(*s) / 1000.0).min(1.0);
                    Terminator::branch(r(*a), r(*b), BranchBias::varying(p, s))
                }
                Plan::Switch(arms) => {
                    let mut targets: Vec<(BlockId, u32)> =
                        arms.iter().map(|(t, w)| (r(*t), *w)).collect();
                    if targets.iter().all(|(_, w)| *w == 0) {
                        targets[0].1 = 1;
                    }
                    Terminator::Switch { targets }
                }
                Plan::Call(f, ret) => Terminator::call(ids[*f % ids.len()], r(*ret)),
                Plan::Return => Terminator::Return,
                Plan::Exit => Terminator::Exit,
            };
            fb.terminate(bids[bi], term);
        }
        fb.finish();
    }
    pb.set_entry(ids[0]);
    pb.finish().expect("generated programs are valid")
}

/// print → parse is the identity on programs.
#[test]
fn print_parse_round_trip() {
    forall(128, gen_program, |program| {
        let text = print_program(program);
        let parsed = parse_program(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert_eq!(&parsed, program);
    });
}

/// Printed programs never contain lines the parser would reject, even
/// after whitespace-only perturbation.
#[test]
fn printed_text_is_whitespace_insensitive() {
    forall(128, gen_program, |program| {
        let text = print_program(program);
        let perturbed: String = text
            .lines()
            .map(|l| format!("   {}   \n", l.trim()))
            .collect();
        let parsed = parse_program(&perturbed).expect("perturbed text parses");
        assert_eq!(&parsed, program);
    });
}

//! Property tests: the text format round-trips arbitrary programs.

use impact_asm::{parse_program, print_program};
use impact_ir::{BlockId, BranchBias, FuncId, Instr, Program, ProgramBuilder, Terminator};
use proptest::prelude::*;

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::IntAlu),
        Just(Instr::FpAlu),
        Just(Instr::Load),
        Just(Instr::Store),
        Just(Instr::Nop),
    ]
}

/// A terminator plan with indices resolved modulo actual counts.
#[derive(Debug, Clone)]
enum Plan {
    Jump(usize),
    Branch(usize, usize, u16, u16),
    Switch(Vec<(usize, u32)>),
    Call(usize, usize),
    Return,
    Exit,
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    prop_oneof![
        any::<usize>().prop_map(Plan::Jump),
        (any::<usize>(), any::<usize>(), 0u16..=1000, 0u16..=500)
            .prop_map(|(a, b, p, s)| Plan::Branch(a, b, p, s)),
        prop::collection::vec((any::<usize>(), 0u32..9), 1..4).prop_map(Plan::Switch),
        (any::<usize>(), any::<usize>()).prop_map(|(f, r)| Plan::Call(f, r)),
        Just(Plan::Return),
        Just(Plan::Exit),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(
        prop::collection::vec((prop::collection::vec(arb_instr(), 0..8), arb_plan()), 1..6),
        1..4,
    )
    .prop_map(|plans| {
        let mut pb = ProgramBuilder::new();
        let ids: Vec<FuncId> = (0..plans.len())
            .map(|i| pb.reserve(format!("f{i}")))
            .collect();
        for (fi, blocks) in plans.iter().enumerate() {
            let mut fb = pb.function_reserved(ids[fi]);
            let bids: Vec<BlockId> = blocks.iter().map(|(body, _)| fb.block(body.clone())).collect();
            let n = bids.len();
            for (bi, (_, plan)) in blocks.iter().enumerate() {
                let r = |x: usize| bids[x % n];
                let term = match plan {
                    Plan::Jump(t) => Terminator::jump(r(*t)),
                    Plan::Branch(a, b, p, s) => {
                        // Quantized probabilities survive the decimal
                        // round trip exactly.
                        let p = f64::from(*p) / 1000.0;
                        let s = (f64::from(*s) / 1000.0).min(1.0);
                        Terminator::branch(r(*a), r(*b), BranchBias::varying(p, s))
                    }
                    Plan::Switch(arms) => {
                        let mut targets: Vec<(BlockId, u32)> =
                            arms.iter().map(|(t, w)| (r(*t), *w)).collect();
                        if targets.iter().all(|(_, w)| *w == 0) {
                            targets[0].1 = 1;
                        }
                        Terminator::Switch { targets }
                    }
                    Plan::Call(f, ret) => Terminator::call(ids[*f % ids.len()], r(*ret)),
                    Plan::Return => Terminator::Return,
                    Plan::Exit => Terminator::Exit,
                };
                fb.terminate(bids[bi], term);
            }
            fb.finish();
        }
        pb.set_entry(ids[0]);
        pb.finish().expect("generated programs are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print → parse is the identity on programs.
    #[test]
    fn print_parse_round_trip(program in arb_program()) {
        let text = print_program(&program);
        let parsed = parse_program(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n---\n{text}")))?;
        prop_assert_eq!(parsed, program);
    }

    /// Printed programs never contain lines the parser would reject, even
    /// after whitespace-only perturbation.
    #[test]
    fn printed_text_is_whitespace_insensitive(program in arb_program()) {
        let text = print_program(&program);
        let perturbed: String = text
            .lines()
            .map(|l| format!("   {}   \n", l.trim()))
            .collect();
        let parsed = parse_program(&perturbed)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(parsed, program);
    }
}

//! Program → text.

use std::fmt::Write as _;

use impact_ir::{BasicBlock, Instr, Program, Terminator};

/// Prints `program` in the textual format; see the crate docs for the
/// grammar. Output parses back to an identical program.
#[must_use]
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    let entry_name = program.function(program.entry()).name();
    let _ = writeln!(out, "program entry={entry_name}");

    for (_, func) in program.functions() {
        out.push('\n');
        let _ = writeln!(
            out,
            "fn {} entry=bb{} {{",
            func.name(),
            func.entry().index()
        );
        for (bid, block) in func.blocks() {
            let _ = writeln!(out, "  bb{}:", bid.index());
            print_body(&mut out, block);
            print_terminator(&mut out, program, block);
        }
        out.push_str("}\n");
    }
    out
}

/// Prints the straight-line body, run-length encoding repeats.
fn print_body(out: &mut String, block: &BasicBlock) {
    let body = block.body();
    let mut i = 0;
    while i < body.len() {
        let instr = body[i];
        let mut n = 1;
        while i + n < body.len() && body[i + n] == instr {
            n += 1;
        }
        let mnemonic = match instr {
            Instr::IntAlu => "ialu",
            Instr::FpAlu => "fpalu",
            Instr::Load => "load",
            Instr::Store => "store",
            Instr::Nop => "nop",
        };
        if n == 1 {
            let _ = writeln!(out, "    {mnemonic}");
        } else {
            let _ = writeln!(out, "    {mnemonic} x{n}");
        }
        i += n;
    }
}

fn print_terminator(out: &mut String, program: &Program, block: &BasicBlock) {
    match block.terminator() {
        Terminator::Jump { target } => {
            let _ = writeln!(out, "    jmp bb{}", target.index());
        }
        Terminator::Branch {
            taken,
            not_taken,
            bias,
        } => {
            let _ = write!(
                out,
                "    br bb{} bb{} p={}",
                taken.index(),
                not_taken.index(),
                bias.base
            );
            if bias.input_spread != 0.0 {
                let _ = write!(out, " spread={}", bias.input_spread);
            }
            out.push('\n');
        }
        Terminator::Switch { targets } => {
            let arms: Vec<String> = targets
                .iter()
                .map(|(t, w)| format!("bb{}*{w}", t.index()))
                .collect();
            let _ = writeln!(out, "    switch {}", arms.join(" "));
        }
        Terminator::Call { callee, ret_to } => {
            let _ = writeln!(
                out,
                "    call {} -> bb{}",
                program.function(*callee).name(),
                ret_to.index()
            );
        }
        Terminator::Return => out.push_str("    ret\n"),
        Terminator::Exit => out.push_str("    exit\n"),
    }
}

#[cfg(test)]
mod tests {
    use impact_ir::{BranchBias, ProgramBuilder, Terminator};

    use super::*;

    #[test]
    fn prints_every_construct() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.reserve("helper");
        let mut f = pb.function("main");
        let b0 = f.block(vec![Instr::IntAlu, Instr::IntAlu, Instr::Load]);
        let b1 = f.block(vec![]);
        let b2 = f.block(vec![Instr::Nop]);
        let b3 = f.block(vec![Instr::FpAlu, Instr::Store]);
        f.terminate(
            b0,
            Terminator::branch(b1, b2, BranchBias::varying(0.75, 0.1)),
        );
        f.terminate(
            b1,
            Terminator::Switch {
                targets: vec![(b2, 3), (b3, 1)],
            },
        );
        f.terminate(b2, Terminator::call(callee, b3));
        f.terminate(b3, Terminator::Exit);
        let mid = f.finish();
        let mut h = pb.function_reserved(callee);
        let h0 = h.block(vec![Instr::IntAlu]);
        h.terminate(h0, Terminator::Return);
        h.finish();
        pb.set_entry(mid);
        let p = pb.finish().unwrap();

        let text = print_program(&p);
        assert!(text.contains("program entry=main"));
        assert!(text.contains("ialu x2"));
        assert!(text.contains("br bb1 bb2 p=0.75 spread=0.1"));
        assert!(text.contains("switch bb2*3 bb3*1"));
        assert!(text.contains("call helper -> bb3"));
        assert!(text.contains("ret"));
        assert!(text.contains("exit"));
    }

    #[test]
    fn fixed_bias_omits_spread() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b0 = f.block(vec![]);
        let b1 = f.block(vec![]);
        f.terminate(b0, Terminator::branch(b0, b1, BranchBias::fixed(0.5)));
        f.terminate(b1, Terminator::Exit);
        let id = f.finish();
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let text = print_program(&p);
        assert!(text.contains("br bb0 bb1 p=0.5\n"));
        assert!(!text.contains("spread"));
    }
}

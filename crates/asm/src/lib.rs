//! A human-readable text format for IMPACT-I reproduction programs.
//!
//! Program models can be printed to and parsed from a small assembly-like
//! language, so workloads can be inspected, diffed, stored alongside
//! experiments, or written by hand:
//!
//! ```text
//! ; a tiny looping program
//! program entry=main
//!
//! fn main entry=bb0 {
//!   bb0:
//!     ialu x2
//!     load
//!     br bb0 bb1 p=0.9 spread=0.05   ; taken not-taken
//!   bb1:
//!     exit
//! }
//! ```
//!
//! * One instruction mnemonic per line (`ialu`, `fpalu`, `load`, `store`,
//!   `nop`), with an optional repeat count `xN`.
//! * Exactly one terminator per block: `jmp L`, `br T F p=P [spread=S]`,
//!   `switch L*W L*W ...`, `call F -> L`, `ret`, `exit`.
//! * `;` starts a comment; blank lines are ignored.
//!
//! [`print_program`] and [`parse_program`] round-trip: parsing a printed
//! program reproduces it exactly.
//!
//! # Example
//!
//! ```
//! use impact_asm::{parse_program, print_program};
//!
//! let src = r#"
//! program entry=main
//! fn main {
//!   b0:
//!     ialu x3
//!     exit
//! }
//! "#;
//! let program = parse_program(src)?;
//! assert_eq!(program.function_count(), 1);
//! let printed = print_program(&program);
//! assert_eq!(parse_program(&printed)?, program);
//! # Ok::<(), impact_asm::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;
mod print;

pub use parse::{parse_program, ParseError, ParseErrorKind};
pub use print::print_program;

#[cfg(test)]
mod round_trip_tests {
    use super::*;

    #[test]
    fn all_ten_benchmarks_round_trip() {
        for w in impact_workloads::all() {
            let text = print_program(&w.program);
            let parsed = parse_program(&text).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_eq!(parsed, w.program, "{} did not round-trip", w.name);
        }
    }
}

//! Text → program.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use impact_ir::{BlockId, BranchBias, Instr, Program, ProgramBuilder, Terminator};

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// The first significant line must be `program entry=<name>`.
    MissingProgramHeader,
    /// A line could not be interpreted in its context.
    UnexpectedLine {
        /// The offending line's text.
        text: String,
    },
    /// Two functions share a name.
    DuplicateFunction {
        /// The duplicated name.
        name: String,
    },
    /// Two blocks in one function share a label.
    DuplicateLabel {
        /// The duplicated label.
        label: String,
    },
    /// A terminator references an unknown block label.
    UnknownLabel {
        /// The unresolved label.
        label: String,
    },
    /// A call references an unknown function.
    UnknownFunction {
        /// The unresolved function name.
        name: String,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// The offending token.
        token: String,
    },
    /// A block has instructions after its terminator, or two terminators.
    CodeAfterTerminator,
    /// A block (or function) ended without a terminator.
    MissingTerminator {
        /// The label of the unterminated block.
        label: String,
    },
    /// A `fn` body was never closed with `}`.
    UnclosedFunction {
        /// The unclosed function's name.
        name: String,
    },
    /// The program parsed but failed structural validation.
    Invalid {
        /// The validation failure, rendered.
        detail: String,
    },
}

/// A parse failure with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number (0 for end-of-input errors).
    pub line: usize,
    /// The failure.
    pub kind: ParseErrorKind,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseErrorKind::MissingProgramHeader => {
                write!(f, "expected `program entry=<name>` header")
            }
            ParseErrorKind::UnexpectedLine { text } => write!(f, "unexpected line {text:?}"),
            ParseErrorKind::DuplicateFunction { name } => {
                write!(f, "duplicate function {name:?}")
            }
            ParseErrorKind::DuplicateLabel { label } => write!(f, "duplicate label {label:?}"),
            ParseErrorKind::UnknownLabel { label } => write!(f, "unknown block label {label:?}"),
            ParseErrorKind::UnknownFunction { name } => {
                write!(f, "unknown function {name:?}")
            }
            ParseErrorKind::BadNumber { token } => write!(f, "malformed number {token:?}"),
            ParseErrorKind::CodeAfterTerminator => {
                write!(f, "code after the block's terminator")
            }
            ParseErrorKind::MissingTerminator { label } => {
                write!(f, "block {label:?} has no terminator")
            }
            ParseErrorKind::UnclosedFunction { name } => {
                write!(f, "function {name:?} is never closed with `}}`")
            }
            ParseErrorKind::Invalid { detail } => write!(f, "invalid program: {detail}"),
        }
    }
}

impl Error for ParseError {}

fn err(line: usize, kind: ParseErrorKind) -> ParseError {
    ParseError { line, kind }
}

/// Parsed terminator with unresolved references.
#[derive(Debug)]
enum RawTerm {
    Jmp(String),
    Br {
        taken: String,
        not_taken: String,
        p: f64,
        spread: f64,
    },
    Switch(Vec<(String, u32)>),
    Call {
        callee: String,
        ret_to: String,
    },
    Ret,
    Exit,
}

#[derive(Debug)]
struct RawBlock {
    label: String,
    body: Vec<Instr>,
    term: Option<RawTerm>,
    /// Line of the block label.
    line: usize,
    /// Line of the terminator (0 until seen).
    term_line: usize,
}

#[derive(Debug)]
struct RawFunc {
    name: String,
    entry: Option<String>,
    blocks: Vec<RawBlock>,
    line: usize,
}

/// Parses a program from its textual form; see the crate docs for the
/// grammar.
///
/// # Errors
///
/// Returns a [`ParseError`] carrying the offending line and a
/// [`ParseErrorKind`] describing the problem, including structural
/// validation failures after a syntactically successful parse.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let (entry_name, funcs) = parse_raw(src)?;
    build(&entry_name.0, entry_name.1, &funcs)
}

/// Pass 1: text → raw AST.
#[allow(clippy::type_complexity)]
fn parse_raw(src: &str) -> Result<((String, usize), Vec<RawFunc>), ParseError> {
    let mut entry: Option<(String, usize)> = None;
    let mut funcs: Vec<RawFunc> = Vec::new();
    let mut current: Option<RawFunc> = None;

    for (idx, raw_line) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();

        if entry.is_none() {
            // Must be the program header.
            if tokens.len() == 2 && tokens[0] == "program" {
                if let Some(name) = tokens[1].strip_prefix("entry=") {
                    entry = Some((name.to_owned(), line_no));
                    continue;
                }
            }
            return Err(err(line_no, ParseErrorKind::MissingProgramHeader));
        }

        match (&mut current, tokens.as_slice()) {
            (None, ["fn", name, rest @ .., "{"]) => {
                let entry_label = match rest {
                    [] => None,
                    [one] => Some(
                        one.strip_prefix("entry=")
                            .ok_or_else(|| {
                                err(
                                    line_no,
                                    ParseErrorKind::UnexpectedLine { text: line.into() },
                                )
                            })?
                            .to_owned(),
                    ),
                    _ => {
                        return Err(err(
                            line_no,
                            ParseErrorKind::UnexpectedLine { text: line.into() },
                        ))
                    }
                };
                current = Some(RawFunc {
                    name: (*name).to_owned(),
                    entry: entry_label,
                    blocks: Vec::new(),
                    line: line_no,
                });
            }
            (Some(_), ["}"]) => {
                let func = current.take().expect("matched Some");
                if let Some(last) = func.blocks.last() {
                    if last.term.is_none() {
                        return Err(err(
                            line_no,
                            ParseErrorKind::MissingTerminator {
                                label: last.label.clone(),
                            },
                        ));
                    }
                }
                funcs.push(func);
            }
            (Some(func), [label_colon]) if label_colon.ends_with(':') => {
                let label = label_colon.trim_end_matches(':').to_owned();
                if func.blocks.iter().any(|b| b.label == label) {
                    return Err(err(line_no, ParseErrorKind::DuplicateLabel { label }));
                }
                if let Some(prev) = func.blocks.last() {
                    if prev.term.is_none() {
                        return Err(err(
                            line_no,
                            ParseErrorKind::MissingTerminator {
                                label: prev.label.clone(),
                            },
                        ));
                    }
                }
                func.blocks.push(RawBlock {
                    label,
                    body: Vec::new(),
                    term: None,
                    line: line_no,
                    term_line: 0,
                });
            }
            (Some(func), tokens) => {
                let block = func.blocks.last_mut().ok_or_else(|| {
                    err(
                        line_no,
                        ParseErrorKind::UnexpectedLine { text: line.into() },
                    )
                })?;
                if block.term.is_some() {
                    return Err(err(line_no, ParseErrorKind::CodeAfterTerminator));
                }
                parse_statement(block, tokens, line_no)?;
                if block.term.is_some() {
                    block.term_line = line_no;
                }
            }
            (None, _) => {
                return Err(err(
                    line_no,
                    ParseErrorKind::UnexpectedLine { text: line.into() },
                ))
            }
        }
    }

    if let Some(func) = current {
        return Err(err(0, ParseErrorKind::UnclosedFunction { name: func.name }));
    }
    let entry = entry.ok_or_else(|| err(0, ParseErrorKind::MissingProgramHeader))?;
    Ok((entry, funcs))
}

/// One instruction or terminator line inside a block.
fn parse_statement(block: &mut RawBlock, tokens: &[&str], line: usize) -> Result<(), ParseError> {
    let instr = |i: Instr, block: &mut RawBlock, rest: &[&str]| -> Result<(), ParseError> {
        let count = match rest {
            [] => 1,
            [x] if x.starts_with('x') => x[1..]
                .parse::<usize>()
                .map_err(|_| err(line, ParseErrorKind::BadNumber { token: (*x).into() }))?,
            _ => {
                return Err(err(
                    line,
                    ParseErrorKind::UnexpectedLine {
                        text: rest.join(" "),
                    },
                ))
            }
        };
        block.body.extend(std::iter::repeat_n(i, count));
        Ok(())
    };
    let number = |token: &str| -> Result<f64, ParseError> {
        token.parse::<f64>().map_err(|_| {
            err(
                line,
                ParseErrorKind::BadNumber {
                    token: token.into(),
                },
            )
        })
    };

    match tokens {
        ["ialu", rest @ ..] => instr(Instr::IntAlu, block, rest),
        ["fpalu", rest @ ..] => instr(Instr::FpAlu, block, rest),
        ["load", rest @ ..] => instr(Instr::Load, block, rest),
        ["store", rest @ ..] => instr(Instr::Store, block, rest),
        ["nop", rest @ ..] => instr(Instr::Nop, block, rest),
        ["jmp", target] => {
            block.term = Some(RawTerm::Jmp((*target).to_owned()));
            Ok(())
        }
        ["br", taken, not_taken, rest @ ..] => {
            let mut p = None;
            let mut spread = 0.0;
            for field in rest {
                if let Some(v) = field.strip_prefix("p=") {
                    p = Some(number(v)?);
                } else if let Some(v) = field.strip_prefix("spread=") {
                    spread = number(v)?;
                } else {
                    return Err(err(
                        line,
                        ParseErrorKind::UnexpectedLine {
                            text: (*field).to_owned(),
                        },
                    ));
                }
            }
            let p = p.ok_or_else(|| {
                err(
                    line,
                    ParseErrorKind::UnexpectedLine {
                        text: "br without p=".into(),
                    },
                )
            })?;
            block.term = Some(RawTerm::Br {
                taken: (*taken).to_owned(),
                not_taken: (*not_taken).to_owned(),
                p,
                spread,
            });
            Ok(())
        }
        ["switch", arms @ ..] if !arms.is_empty() => {
            let mut targets = Vec::with_capacity(arms.len());
            for arm in arms {
                let (label, weight) = arm.split_once('*').ok_or_else(|| {
                    err(
                        line,
                        ParseErrorKind::UnexpectedLine {
                            text: (*arm).to_owned(),
                        },
                    )
                })?;
                let w: u32 = weight.parse().map_err(|_| {
                    err(
                        line,
                        ParseErrorKind::BadNumber {
                            token: weight.into(),
                        },
                    )
                })?;
                targets.push((label.to_owned(), w));
            }
            block.term = Some(RawTerm::Switch(targets));
            Ok(())
        }
        ["call", callee, "->", ret_to] => {
            block.term = Some(RawTerm::Call {
                callee: (*callee).to_owned(),
                ret_to: (*ret_to).to_owned(),
            });
            Ok(())
        }
        ["ret"] => {
            block.term = Some(RawTerm::Ret);
            Ok(())
        }
        ["exit"] => {
            block.term = Some(RawTerm::Exit);
            Ok(())
        }
        _ => Err(err(
            line,
            ParseErrorKind::UnexpectedLine {
                text: tokens.join(" "),
            },
        )),
    }
}

/// Pass 2: raw AST → validated program.
fn build(entry_name: &str, entry_line: usize, funcs: &[RawFunc]) -> Result<Program, ParseError> {
    let mut pb = ProgramBuilder::new();
    let mut func_ids = HashMap::new();
    for f in funcs {
        if func_ids.contains_key(f.name.as_str()) {
            return Err(err(
                f.line,
                ParseErrorKind::DuplicateFunction {
                    name: f.name.clone(),
                },
            ));
        }
        func_ids.insert(f.name.as_str(), pb.reserve(f.name.clone()));
    }

    for f in funcs {
        let mut fb = pb.function_reserved(func_ids[f.name.as_str()]);
        let mut labels: HashMap<&str, BlockId> = HashMap::new();
        for b in &f.blocks {
            labels.insert(b.label.as_str(), fb.block(b.body.clone()));
        }
        let resolve = |label: &str, line: usize| -> Result<BlockId, ParseError> {
            labels.get(label).copied().ok_or_else(|| {
                err(
                    line,
                    ParseErrorKind::UnknownLabel {
                        label: label.to_owned(),
                    },
                )
            })
        };

        for b in &f.blocks {
            let term = b.term.as_ref().ok_or_else(|| {
                err(
                    b.line,
                    ParseErrorKind::MissingTerminator {
                        label: b.label.clone(),
                    },
                )
            })?;
            let tl = b.term_line;
            let t = match term {
                RawTerm::Jmp(target) => Terminator::jump(resolve(target, tl)?),
                RawTerm::Br {
                    taken,
                    not_taken,
                    p,
                    spread,
                } => {
                    if !(0.0..=1.0).contains(p) || *spread < 0.0 {
                        return Err(err(
                            tl,
                            ParseErrorKind::BadNumber {
                                token: format!("p={p} spread={spread}"),
                            },
                        ));
                    }
                    Terminator::branch(
                        resolve(taken, tl)?,
                        resolve(not_taken, tl)?,
                        BranchBias::varying(*p, *spread),
                    )
                }
                RawTerm::Switch(arms) => {
                    let mut targets = Vec::with_capacity(arms.len());
                    for (label, w) in arms {
                        targets.push((resolve(label, tl)?, *w));
                    }
                    Terminator::Switch { targets }
                }
                RawTerm::Call { callee, ret_to } => {
                    let callee_id = func_ids.get(callee.as_str()).ok_or_else(|| {
                        err(
                            tl,
                            ParseErrorKind::UnknownFunction {
                                name: callee.clone(),
                            },
                        )
                    })?;
                    Terminator::call(*callee_id, resolve(ret_to, tl)?)
                }
                RawTerm::Ret => Terminator::Return,
                RawTerm::Exit => Terminator::Exit,
            };
            fb.terminate(labels[b.label.as_str()], t);
        }

        if let Some(entry_label) = &f.entry {
            let id = labels.get(entry_label.as_str()).ok_or_else(|| {
                err(
                    f.line,
                    ParseErrorKind::UnknownLabel {
                        label: entry_label.clone(),
                    },
                )
            })?;
            fb.set_entry(*id);
        }
        fb.finish();
    }

    let entry_id = func_ids.get(entry_name).ok_or_else(|| {
        err(
            entry_line,
            ParseErrorKind::UnknownFunction {
                name: entry_name.to_owned(),
            },
        )
    })?;
    pb.set_entry(*entry_id);
    pb.finish().map_err(|e| {
        err(
            0,
            ParseErrorKind::Invalid {
                detail: e.to_string(),
            },
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse_program(src).expect("parse")
    }

    #[test]
    fn parses_minimal_program() {
        let p = parse_ok("program entry=main\nfn main {\n b:\n  exit\n}\n");
        assert_eq!(p.function_count(), 1);
        assert_eq!(p.total_instrs(), 1);
    }

    #[test]
    fn repeat_counts_expand() {
        let p = parse_ok("program entry=main\nfn main {\n b:\n  load x3\n  ialu\n  exit\n}\n");
        let f = p.function(p.entry());
        assert_eq!(f.block(BlockId::new(0)).body().len(), 4);
        assert_eq!(f.block(BlockId::new(0)).body()[2], Instr::Load);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let p = parse_ok(
            "; header comment\nprogram entry=main\n\nfn main { ; open\n b: ; label\n  exit ; done\n}\n",
        );
        assert_eq!(p.function_count(), 1);
    }

    #[test]
    fn forward_and_cross_function_references_resolve() {
        let p = parse_ok(
            "program entry=main\n\
             fn main {\n a:\n  call helper -> b\n b:\n  jmp c\n c:\n  exit\n}\n\
             fn helper {\n h:\n  ret\n}\n",
        );
        assert_eq!(p.function_count(), 2);
        let helper = p.function_by_name("helper").unwrap();
        assert!(p.call_graph().sites().iter().any(|s| s.callee == helper));
    }

    #[test]
    fn custom_entry_labels() {
        let p = parse_ok(
            "program entry=main\nfn main entry=second {\n first:\n  ret\n second:\n  exit\n}\n",
        );
        assert_eq!(p.function(p.entry()).entry(), BlockId::new(1));
    }

    #[test]
    fn branch_probability_fields() {
        let p = parse_ok(
            "program entry=main\nfn main {\n a:\n  br a b p=0.25 spread=0.1\n b:\n  exit\n}\n",
        );
        let Terminator::Branch { bias, .. } =
            p.function(p.entry()).block(BlockId::new(0)).terminator()
        else {
            panic!("expected branch");
        };
        assert_eq!(bias.base, 0.25);
        assert_eq!(bias.input_spread, 0.1);
    }

    #[test]
    fn error_missing_header() {
        let e = parse_program("fn main {\n a:\n  exit\n}\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(matches!(e.kind, ParseErrorKind::MissingProgramHeader));
    }

    #[test]
    fn error_unknown_label() {
        let e =
            parse_program("program entry=main\nfn main {\n a:\n  jmp nowhere\n}\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::UnknownLabel { .. }));
    }

    #[test]
    fn error_unknown_callee() {
        let e = parse_program("program entry=main\nfn main {\n a:\n  call ghost -> a\n}\n")
            .unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::UnknownFunction { .. }));
    }

    #[test]
    fn error_duplicate_label_and_function() {
        let e = parse_program("program entry=main\nfn main {\n a:\n  exit\n a:\n  exit\n}\n")
            .unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::DuplicateLabel { .. }));
        let e = parse_program(
            "program entry=main\nfn main {\n a:\n  exit\n}\nfn main {\n a:\n  exit\n}\n",
        )
        .unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::DuplicateFunction { .. }));
    }

    #[test]
    fn error_code_after_terminator() {
        let e =
            parse_program("program entry=main\nfn main {\n a:\n  exit\n  ialu\n}\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::CodeAfterTerminator));
        assert_eq!(e.line, 5);
    }

    #[test]
    fn error_missing_terminator() {
        let e = parse_program("program entry=main\nfn main {\n a:\n  ialu\n}\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::MissingTerminator { .. }));
    }

    #[test]
    fn error_unclosed_function() {
        let e = parse_program("program entry=main\nfn main {\n a:\n  exit\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::UnclosedFunction { .. }));
    }

    #[test]
    fn error_bad_numbers() {
        let e = parse_program("program entry=main\nfn main {\n a:\n  ialu xq\n  exit\n}\n")
            .unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::BadNumber { .. }));
        let e =
            parse_program("program entry=main\nfn main {\n a:\n  br a a p=1.5\n}\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::BadNumber { .. }));
    }

    #[test]
    fn error_unknown_entry_function() {
        let e = parse_program("program entry=ghost\nfn main {\n a:\n  exit\n}\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::UnknownFunction { .. }));
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let e =
            parse_program("program entry=main\nfn main {\n a:\n  jmp nowhere\n}\n").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.to_string().contains("line 4"));
    }
}

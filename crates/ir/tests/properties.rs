//! Property tests for the IR primitives.

use impact_ir::{site_key, BlockId, BranchBias, Instr, ProgramBuilder, Terminator};
use proptest::prelude::*;

proptest! {
    /// Effective probabilities always stay in the unit interval.
    #[test]
    fn effective_probability_is_bounded(
        base in 0.0f64..=1.0,
        spread in 0.0f64..2.0,
        seed in any::<u64>(),
        key in any::<u64>(),
    ) {
        let bias = BranchBias::varying(base, spread);
        let p = bias.effective(seed, key);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    /// Zero spread means the base probability, always.
    #[test]
    fn zero_spread_is_exact(base in 0.0f64..=1.0, seed in any::<u64>(), key in any::<u64>()) {
        let bias = BranchBias::varying(base, 0.0);
        prop_assert_eq!(bias.effective(seed, key), base);
    }

    /// The effective probability never strays further than the spread.
    #[test]
    fn deviation_is_within_spread(
        base in 0.0f64..=1.0,
        spread in 0.0f64..=0.5,
        seed in any::<u64>(),
        key in any::<u64>(),
    ) {
        let bias = BranchBias::varying(base, spread);
        let p = bias.effective(seed, key);
        prop_assert!((p - base).abs() <= spread + 1e-12);
    }

    /// Site keys are deterministic and rarely collide across blocks.
    #[test]
    fn site_keys_are_stable(name in "[a-z_][a-z0-9_]{0,12}", block in 0usize..10_000) {
        let a = site_key(&name, BlockId::new(block));
        let b = site_key(&name, BlockId::new(block));
        prop_assert_eq!(a, b);
        // A different block of the same function gets a different key.
        let c = site_key(&name, BlockId::new(block + 1));
        prop_assert_ne!(a, c);
    }

    /// Block sizes follow directly from body length.
    #[test]
    fn block_sizes_are_body_plus_terminator(body_len in 0usize..200) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b = f.block(vec![Instr::Nop; body_len]);
        f.terminate(b, Terminator::Exit);
        let id = f.finish();
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        prop_assert_eq!(p.total_instrs(), body_len as u64 + 1);
        prop_assert_eq!(p.total_bytes(), (body_len as u64 + 1) * 4);
    }

    /// Programs with arbitrary jump-chain shapes validate and report
    /// consistent predecessor/successor structure.
    #[test]
    fn chain_programs_validate(lens in prop::collection::vec(0usize..8, 1..20)) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let blocks: Vec<BlockId> = lens.iter().map(|&n| f.block(vec![Instr::IntAlu; n])).collect();
        for w in blocks.windows(2) {
            f.terminate(w[0], Terminator::jump(w[1]));
        }
        f.terminate(*blocks.last().unwrap(), Terminator::Exit);
        let id = f.finish();
        pb.set_entry(id);
        let p = pb.finish().unwrap();

        let func = p.function(id);
        let preds = func.predecessors();
        // Every block but the first has exactly one predecessor.
        prop_assert!(preds[0].is_empty());
        for pr in preds.iter().skip(1) {
            prop_assert_eq!(pr.len(), 1);
        }
        // Successor counts mirror the chain.
        for (i, b) in blocks.iter().enumerate() {
            let succ = func.block(*b).terminator().successors();
            prop_assert_eq!(succ.len(), usize::from(i + 1 < blocks.len()));
        }
    }
}

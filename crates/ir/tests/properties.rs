//! Property tests for the IR primitives.

use impact_ir::{site_key, BlockId, BranchBias, Instr, ProgramBuilder, Terminator};
use impact_support::check::forall;

/// Effective probabilities always stay in the unit interval.
#[test]
fn effective_probability_is_bounded() {
    forall(
        256,
        |rng| {
            (
                rng.gen_f64(),
                rng.gen_f64() * 2.0,
                rng.next_u64(),
                rng.next_u64(),
            )
        },
        |&(base, spread, seed, key)| {
            let bias = BranchBias::varying(base, spread);
            let p = bias.effective(seed, key);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        },
    );
}

/// Zero spread means the base probability, always.
#[test]
fn zero_spread_is_exact() {
    forall(
        256,
        |rng| (rng.gen_f64(), rng.next_u64(), rng.next_u64()),
        |&(base, seed, key)| {
            let bias = BranchBias::varying(base, 0.0);
            assert_eq!(bias.effective(seed, key), base);
        },
    );
}

/// The effective probability never strays further than the spread.
#[test]
fn deviation_is_within_spread() {
    forall(
        256,
        |rng| {
            (
                rng.gen_f64(),
                rng.gen_f64() * 0.5,
                rng.next_u64(),
                rng.next_u64(),
            )
        },
        |&(base, spread, seed, key)| {
            let bias = BranchBias::varying(base, spread);
            let p = bias.effective(seed, key);
            assert!((p - base).abs() <= spread + 1e-12);
        },
    );
}

/// Site keys are deterministic and rarely collide across blocks.
#[test]
fn site_keys_are_stable() {
    forall(
        256,
        |rng| {
            let len = rng.gen_range_inclusive(1, 13);
            let name: String = (0..len)
                .map(|_| char::from(b'a' + rng.gen_below(26) as u8))
                .collect();
            (name, rng.gen_below(10_000) as usize)
        },
        |(name, block)| {
            let a = site_key(name, BlockId::new(*block));
            let b = site_key(name, BlockId::new(*block));
            assert_eq!(a, b);
            // A different block of the same function gets a different key.
            let c = site_key(name, BlockId::new(*block + 1));
            assert_ne!(a, c);
        },
    );
}

/// Block sizes follow directly from body length.
#[test]
fn block_sizes_are_body_plus_terminator() {
    forall(
        64,
        |rng| rng.gen_below(200) as usize,
        |&body_len| {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.function("main");
            let b = f.block(vec![Instr::Nop; body_len]);
            f.terminate(b, Terminator::Exit);
            let id = f.finish();
            pb.set_entry(id);
            let p = pb.finish().unwrap();
            assert_eq!(p.total_instrs(), body_len as u64 + 1);
            assert_eq!(p.total_bytes(), (body_len as u64 + 1) * 4);
        },
    );
}

/// Programs with arbitrary jump-chain shapes validate and report
/// consistent predecessor/successor structure.
#[test]
fn chain_programs_validate() {
    forall(
        128,
        |rng| {
            let n = rng.gen_range_inclusive(1, 19);
            (0..n)
                .map(|_| rng.gen_below(8) as usize)
                .collect::<Vec<_>>()
        },
        |lens| {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.function("main");
            let blocks: Vec<BlockId> = lens
                .iter()
                .map(|&n| f.block(vec![Instr::IntAlu; n]))
                .collect();
            for w in blocks.windows(2) {
                f.terminate(w[0], Terminator::jump(w[1]));
            }
            f.terminate(*blocks.last().unwrap(), Terminator::Exit);
            let id = f.finish();
            pb.set_entry(id);
            let p = pb.finish().unwrap();

            let func = p.function(id);
            let preds = func.predecessors();
            // Every block but the first has exactly one predecessor.
            assert!(preds[0].is_empty());
            for pr in preds.iter().skip(1) {
                assert_eq!(pr.len(), 1);
            }
            // Successor counts mirror the chain.
            for (i, b) in blocks.iter().enumerate() {
                let succ = func.block(*b).terminator().successors();
                assert_eq!(succ.len(), usize::from(i + 1 < blocks.len()));
            }
        },
    );
}

//! Fluent builders for programs and functions.

use crate::{BasicBlock, BlockId, FuncId, Function, Instr, Program, Terminator, ValidateError};

/// Incrementally constructs a [`Program`].
///
/// Functions may call each other in any order; use [`ProgramBuilder::reserve`]
/// to obtain a [`FuncId`] before the callee's body exists (mutual recursion,
/// call-before-define).
///
/// # Example
///
/// ```
/// use impact_ir::{ProgramBuilder, Instr, Terminator};
///
/// let mut pb = ProgramBuilder::new();
/// let mut f = pb.function("main");
/// let b = f.block(vec![Instr::IntAlu]);
/// f.set_entry(b);
/// f.terminate(b, Terminator::Exit);
/// let main = f.finish();
/// pb.set_entry(main);
/// let program = pb.finish()?;
/// assert_eq!(program.function_count(), 1);
/// # Ok::<(), impact_ir::ValidateError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    funcs: Vec<Option<Function>>,
    names: Vec<String>,
    entry: Option<FuncId>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves a function id for `name` without defining its body yet.
    ///
    /// Define the body later with [`ProgramBuilder::function_reserved`].
    pub fn reserve(&mut self, name: impl Into<String>) -> FuncId {
        let id = FuncId::new(self.funcs.len());
        self.funcs.push(None);
        self.names.push(name.into());
        id
    }

    /// Starts defining a new function named `name`, returning its builder.
    pub fn function(&mut self, name: impl Into<String>) -> FunctionBuilder<'_> {
        let id = self.reserve(name);
        self.function_reserved(id)
    }

    /// Starts defining the body of a previously [reserved] function.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not reserved by this builder or is already
    /// defined.
    ///
    /// [reserved]: ProgramBuilder::reserve
    pub fn function_reserved(&mut self, id: FuncId) -> FunctionBuilder<'_> {
        assert!(
            id.index() < self.funcs.len(),
            "{id} was not reserved by this builder"
        );
        assert!(
            self.funcs[id.index()].is_none(),
            "{id} ({}) is already defined",
            self.names[id.index()]
        );
        FunctionBuilder {
            program: self,
            id,
            blocks: Vec::new(),
            entry: None,
        }
    }

    /// Sets the program entry function.
    pub fn set_entry(&mut self, entry: FuncId) {
        self.entry = Some(entry);
    }

    /// Finishes the program, validating it.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] if any reserved function was never
    /// defined, no entry was set, or the program fails
    /// [`Program::validate`].
    pub fn finish(self) -> Result<Program, ValidateError> {
        let entry = self.entry.ok_or(ValidateError::NoEntryFunction)?;
        let mut funcs = Vec::with_capacity(self.funcs.len());
        for (i, f) in self.funcs.into_iter().enumerate() {
            match f {
                Some(f) => funcs.push(f),
                None => {
                    return Err(ValidateError::UndefinedFunction {
                        func: FuncId::new(i),
                        name: self.names[i].clone(),
                    })
                }
            }
        }
        Program::from_parts(funcs, entry)
    }
}

/// Incrementally constructs one [`Function`]; obtained from
/// [`ProgramBuilder::function`].
///
/// Blocks are created first (possibly unterminated) so they can reference
/// each other, then wired up with [`FunctionBuilder::terminate`]. Any block
/// left unterminated defaults to [`Terminator::Return`].
#[derive(Debug)]
pub struct FunctionBuilder<'p> {
    program: &'p mut ProgramBuilder,
    id: FuncId,
    blocks: Vec<(Vec<Instr>, Option<Terminator>)>,
    entry: Option<BlockId>,
}

impl FunctionBuilder<'_> {
    /// The id this function will have in the finished program.
    #[must_use]
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// Adds a block with the given straight-line body; terminator to be
    /// set later (defaults to `Return`).
    pub fn block(&mut self, body: Vec<Instr>) -> BlockId {
        let id = BlockId::new(self.blocks.len());
        self.blocks.push((body, None));
        id
    }

    /// Adds a block whose body is `n` copies of [`Instr::IntAlu`].
    ///
    /// Workload generators describe blocks by instruction count; this is
    /// the shorthand for that common case.
    pub fn block_n(&mut self, n: usize) -> BlockId {
        self.block(vec![Instr::IntAlu; n])
    }

    /// Sets the terminator of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not created by this builder.
    pub fn terminate(&mut self, block: BlockId, term: Terminator) {
        self.blocks[block.index()].1 = Some(term);
    }

    /// Marks `entry` as the function's entry block.
    pub fn set_entry(&mut self, entry: BlockId) {
        self.entry = Some(entry);
    }

    /// Number of blocks added so far.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Completes the function, registering it with the program builder and
    /// returning its id.
    ///
    /// The entry defaults to the first block if unset. Unterminated blocks
    /// default to [`Terminator::Return`].
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks.
    pub fn finish(self) -> FuncId {
        assert!(
            !self.blocks.is_empty(),
            "function {} has no blocks",
            self.program.names[self.id.index()]
        );
        let entry = self.entry.unwrap_or_else(|| BlockId::new(0));
        let blocks = self
            .blocks
            .into_iter()
            .map(|(body, term)| BasicBlock::new(body, term.unwrap_or(Terminator::Return)))
            .collect();
        let func = Function {
            name: self.program.names[self.id.index()].clone(),
            blocks,
            entry,
        };
        self.program.funcs[self.id.index()] = Some(func);
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_minimal_program() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b = f.block_n(2);
        f.terminate(b, Terminator::Exit);
        let id = f.finish();
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        assert_eq!(p.function_count(), 1);
        assert_eq!(p.function(id).entry(), BlockId::new(0));
    }

    #[test]
    fn reserve_allows_forward_calls() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.reserve("callee");

        let mut main = pb.function("main");
        let b0 = main.block_n(1);
        let b1 = main.block_n(0);
        main.terminate(b0, Terminator::call(callee, b1));
        main.terminate(b1, Terminator::Exit);
        let main_id = main.finish();

        let mut c = pb.function_reserved(callee);
        let cb = c.block_n(3);
        c.terminate(cb, Terminator::Return);
        c.finish();

        pb.set_entry(main_id);
        let p = pb.finish().unwrap();
        assert_eq!(p.function(callee).name(), "callee");
    }

    #[test]
    fn undefined_reserved_function_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let _ghost = pb.reserve("ghost");
        let mut f = pb.function("main");
        let b = f.block_n(0);
        f.terminate(b, Terminator::Exit);
        let id = f.finish();
        pb.set_entry(id);
        assert!(matches!(
            pb.finish(),
            Err(ValidateError::UndefinedFunction { .. })
        ));
    }

    #[test]
    fn missing_entry_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b = f.block_n(0);
        f.terminate(b, Terminator::Exit);
        f.finish();
        assert!(matches!(pb.finish(), Err(ValidateError::NoEntryFunction)));
    }

    #[test]
    fn unterminated_blocks_default_to_return() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let _b = f.block_n(1);
        let id = f.finish();
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        assert_eq!(
            p.function(id).block(BlockId::new(0)).terminator(),
            &Terminator::Return
        );
    }

    #[test]
    #[should_panic(expected = "already defined")]
    fn double_definition_panics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b = f.block_n(0);
        f.terminate(b, Terminator::Exit);
        let id = f.finish();
        let _again = pb.function_reserved(id);
    }
}

//! Fixed-width instructions.

/// Size of every instruction in bytes.
///
/// The paper evaluates code "very closely match\[ing\] the physical code of a
/// fixed instruction format (32 bits/instruction) RISC type processor"
/// (§4.2.3), so the whole reproduction assumes 4-byte instructions.
pub const BYTES_PER_INSTR: u64 = 4;

/// A single non-control instruction.
///
/// The instruction cache only observes *fetch addresses*, so the opcode
/// class carries no semantics for the simulator; it exists to make program
/// models legible and to let workload generators mimic realistic opcode
/// mixes. Control transfers are never `Instr`s — they are the block's
/// [`Terminator`](crate::Terminator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Instr {
    /// Integer ALU operation (add, shift, compare, ...).
    #[default]
    IntAlu,
    /// Floating-point operation.
    FpAlu,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// No-op / filler (used by the code scaling experiment).
    Nop,
}

impl Instr {
    /// Returns `true` if the instruction accesses data memory.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, Instr::Load | Instr::Store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_classification() {
        assert!(Instr::Load.is_memory());
        assert!(Instr::Store.is_memory());
        assert!(!Instr::IntAlu.is_memory());
        assert!(!Instr::FpAlu.is_memory());
        assert!(!Instr::Nop.is_memory());
    }

    #[test]
    fn default_is_int_alu() {
        assert_eq!(Instr::default(), Instr::IntAlu);
    }
}

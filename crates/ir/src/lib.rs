//! Program intermediate representation for the IMPACT-I instruction
//! placement reproduction (Hwu & Chang, ISCA 1989).
//!
//! The paper's compiler represents a program as a *weighted call graph*
//! whose nodes are functions, each carrying a *weighted control graph* of
//! basic blocks. This crate provides the unweighted structural half of that
//! picture:
//!
//! * [`Instr`] — a single fixed-width (4-byte) RISC-style instruction.
//! * [`BasicBlock`] — straight-line instructions plus one [`Terminator`].
//! * [`Function`] — a control-flow graph of basic blocks with a single
//!   entry block.
//! * [`Program`] — a set of functions with a single entry function, plus a
//!   derived static [`CallGraph`].
//!
//! Execution *weights* (profiles) live in the `impact-profile` crate; this
//! crate only describes structure and the stochastic *behavior model*
//! ([`BranchBias`]) that drives the profiling interpreter.
//!
//! # Example
//!
//! Build a function with a counted loop and validate the program:
//!
//! ```
//! use impact_ir::{ProgramBuilder, Instr, Terminator, BranchBias};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main");
//! let entry = f.block(vec![Instr::IntAlu; 3]);
//! let body = f.block(vec![Instr::Load, Instr::IntAlu, Instr::Store]);
//! let exit = f.block(vec![Instr::IntAlu]);
//! f.set_entry(entry);
//! f.terminate(entry, Terminator::jump(body));
//! // Loop back to `body` with probability 0.9, fall out with 0.1.
//! f.terminate(body, Terminator::branch(body, exit, BranchBias::fixed(0.9)));
//! f.terminate(exit, Terminator::Exit);
//! let main = f.finish();
//! pb.set_entry(main);
//! let program = pb.finish()?;
//! assert_eq!(program.function(main).block_count(), 3);
//! # Ok::<(), impact_ir::ValidateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod builder;
mod callgraph;
mod ids;
mod inst;
mod program;
mod validate;

pub use block::{site_key, BasicBlock, BranchBias, Terminator};
pub use builder::{FunctionBuilder, ProgramBuilder};
pub use callgraph::{CallGraph, CallSite};
pub use ids::{BlockId, FuncId};
pub use inst::{Instr, BYTES_PER_INSTR};
pub use program::{Function, Program};
pub use validate::ValidateError;

//! Functions and whole programs.

use crate::{BasicBlock, BlockId, CallGraph, FuncId, Terminator, ValidateError};

/// A function: a control-flow graph of basic blocks with one entry block.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub(crate) name: String,
    pub(crate) blocks: Vec<BasicBlock>,
    pub(crate) entry: BlockId,
}

impl Function {
    /// Builds a function directly from parts.
    ///
    /// Used by program transformations; prefer
    /// [`FunctionBuilder`](crate::FunctionBuilder) for new code. The
    /// containing [`Program`] validates entry and target ranges.
    #[must_use]
    pub fn from_parts(name: String, blocks: Vec<BasicBlock>, entry: BlockId) -> Self {
        Self {
            name,
            blocks,
            entry,
        }
    }

    /// The function's name (unique within its program).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry block.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of basic blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Access a block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this function.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this function.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Iterates `(id, block)` pairs in id order.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::new(i), b))
    }

    /// All block ids of this function, in order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len()).map(BlockId::new)
    }

    /// Total static size of the function in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.blocks.iter().map(BasicBlock::size_bytes).sum()
    }

    /// Appends a block, returning its id.
    ///
    /// Program transformations (e.g. inline expansion) extend functions;
    /// re-validate the containing program with
    /// [`Program::from_parts`] afterwards.
    pub fn push_block(&mut self, block: BasicBlock) -> BlockId {
        let id = BlockId::new(self.blocks.len());
        self.blocks.push(block);
        id
    }

    /// Predecessor lists for every block, indexed by block id.
    ///
    /// A block appears once per incoming *edge source* (duplicates from a
    /// branch with identical arms are already collapsed by
    /// [`Terminator::successors`]).
    #[must_use]
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, block) in self.blocks() {
            for succ in block.terminator().successors() {
                preds[succ.index()].push(id);
            }
        }
        preds
    }
}

/// A whole program: functions plus a designated entry function.
///
/// `Program` is immutable once built (use [`ProgramBuilder`] to construct
/// one, and the layout passes to derive transformed copies); this keeps
/// every consumer — profiler, optimizer, trace generator — working from a
/// consistent, validated structure.
///
/// [`ProgramBuilder`]: crate::ProgramBuilder
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub(crate) funcs: Vec<Function>,
    pub(crate) entry: FuncId,
}

impl Program {
    /// Builds a program directly from parts, validating it.
    ///
    /// Most callers should prefer [`ProgramBuilder`]; this constructor
    /// exists for program transformations that rebuild function lists.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] describing the first structural problem
    /// found (dangling target, out-of-range entry, duplicate name, ...).
    ///
    /// [`ProgramBuilder`]: crate::ProgramBuilder
    pub fn from_parts(funcs: Vec<Function>, entry: FuncId) -> Result<Self, ValidateError> {
        let p = Self { funcs, entry };
        p.validate()?;
        Ok(p)
    }

    /// The program entry function (`main`).
    #[must_use]
    pub fn entry(&self) -> FuncId {
        self.entry
    }

    /// Number of functions.
    #[must_use]
    pub fn function_count(&self) -> usize {
        self.funcs.len()
    }

    /// Access a function by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    #[must_use]
    pub fn function(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Iterates `(id, function)` pairs in id order.
    pub fn functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId::new(i), f))
    }

    /// All function ids, in order.
    pub fn function_ids(&self) -> impl Iterator<Item = FuncId> {
        (0..self.funcs.len()).map(FuncId::new)
    }

    /// Looks up a function by name.
    #[must_use]
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(FuncId::new)
    }

    /// Total static code size in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.funcs.iter().map(Function::size_bytes).sum()
    }

    /// Total static instruction count (terminator slots included).
    #[must_use]
    pub fn total_instrs(&self) -> u64 {
        self.funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .map(BasicBlock::instr_count)
            .sum()
    }

    /// Derives the static call graph (one [`CallSite`] per `Call`
    /// terminator).
    ///
    /// [`CallSite`]: crate::CallSite
    #[must_use]
    pub fn call_graph(&self) -> CallGraph {
        CallGraph::of(self)
    }

    /// Checks all structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violation found:
    /// * the program has at least one function and a valid entry,
    /// * every function has at least one block and a valid entry block,
    /// * every terminator target (block or function) is in range,
    /// * every `Switch` has at least one arm with positive weight,
    /// * function names are unique and non-empty.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.funcs.is_empty() {
            return Err(ValidateError::EmptyProgram);
        }
        if self.entry.index() >= self.funcs.len() {
            return Err(ValidateError::BadEntryFunction { entry: self.entry });
        }
        let mut names = std::collections::HashSet::new();
        for (fid, func) in self.functions() {
            if func.name.is_empty() {
                return Err(ValidateError::EmptyFunctionName { func: fid });
            }
            if !names.insert(func.name.as_str()) {
                return Err(ValidateError::DuplicateFunctionName {
                    name: func.name.clone(),
                });
            }
            if func.blocks.is_empty() {
                return Err(ValidateError::EmptyFunction { func: fid });
            }
            if func.entry.index() >= func.blocks.len() {
                return Err(ValidateError::BadEntryBlock {
                    func: fid,
                    entry: func.entry,
                });
            }
            for (bid, block) in func.blocks() {
                let check_block = |target: BlockId| {
                    if target.index() >= func.blocks.len() {
                        Err(ValidateError::DanglingBlockTarget {
                            func: fid,
                            block: bid,
                            target,
                        })
                    } else {
                        Ok(())
                    }
                };
                match block.terminator() {
                    Terminator::Jump { target } => check_block(*target)?,
                    Terminator::Branch {
                        taken, not_taken, ..
                    } => {
                        check_block(*taken)?;
                        check_block(*not_taken)?;
                    }
                    Terminator::Switch { targets } => {
                        if !targets.iter().any(|(_, w)| *w > 0) {
                            return Err(ValidateError::UnselectableSwitch {
                                func: fid,
                                block: bid,
                            });
                        }
                        for (t, _) in targets {
                            check_block(*t)?;
                        }
                    }
                    Terminator::Call { callee, ret_to } => {
                        if callee.index() >= self.funcs.len() {
                            return Err(ValidateError::DanglingCallee {
                                func: fid,
                                block: bid,
                                callee: *callee,
                            });
                        }
                        check_block(*ret_to)?;
                    }
                    Terminator::Return | Terminator::Exit => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{BranchBias, Instr, ProgramBuilder, Terminator};

    use super::*;

    /// A two-function program: main calls helper in a loop.
    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let helper_id = pb.reserve("helper");
        let mut main = pb.function("main");
        let entry = main.block(vec![Instr::IntAlu; 2]);
        let call = main.block(vec![Instr::Load]);
        let check = main.block(vec![Instr::IntAlu]);
        let exit = main.block(vec![]);
        main.set_entry(entry);
        main.terminate(entry, Terminator::jump(call));
        main.terminate(call, Terminator::call(helper_id, check));
        main.terminate(
            check,
            Terminator::branch(call, exit, BranchBias::fixed(0.8)),
        );
        main.terminate(exit, Terminator::Exit);
        let main_id = main.finish();

        let mut helper = pb.function_reserved(helper_id);
        let h0 = helper.block(vec![Instr::IntAlu; 5]);
        helper.set_entry(h0);
        helper.terminate(h0, Terminator::Return);
        helper.finish();

        pb.set_entry(main_id);
        pb.finish().expect("sample program is valid")
    }

    #[test]
    fn sizes_add_up() {
        let p = sample();
        // main: (2+1) + (1+1) + (1+1) + (0+1) = 8 instrs; helper: 6 instrs.
        assert_eq!(p.total_instrs(), 14);
        assert_eq!(p.total_bytes(), 14 * 4);
        let main = p.function(p.entry());
        assert_eq!(main.size_bytes(), 8 * 4);
    }

    #[test]
    fn function_lookup_by_name() {
        let p = sample();
        assert_eq!(p.function_by_name("main"), Some(p.entry()));
        assert!(p.function_by_name("helper").is_some());
        assert_eq!(p.function_by_name("nope"), None);
    }

    #[test]
    fn predecessors_are_reverse_edges() {
        let p = sample();
        let main = p.function(p.entry());
        let preds = main.predecessors();
        // Block 1 (call) has predecessors: entry (jump) and check (branch taken).
        assert_eq!(preds[1], vec![BlockId::new(0), BlockId::new(2)]);
        // Entry block has no predecessors.
        assert!(preds[0].is_empty());
    }

    #[test]
    fn validate_rejects_dangling_block_target() {
        let mut p = sample();
        p.funcs[0].blocks[0].set_terminator(Terminator::jump(BlockId::new(99)));
        assert!(matches!(
            p.validate(),
            Err(ValidateError::DanglingBlockTarget { .. })
        ));
    }

    #[test]
    fn validate_rejects_dangling_callee() {
        let mut p = sample();
        let main = p.entry.index();
        p.funcs[main].blocks[1].set_terminator(Terminator::call(FuncId::new(9), BlockId::new(2)));
        assert!(matches!(
            p.validate(),
            Err(ValidateError::DanglingCallee { .. })
        ));
    }

    #[test]
    fn validate_rejects_unselectable_switch() {
        let mut p = sample();
        p.funcs[0].blocks[0].set_terminator(Terminator::Switch {
            targets: vec![(BlockId::new(1), 0)],
        });
        assert!(matches!(
            p.validate(),
            Err(ValidateError::UnselectableSwitch { .. })
        ));
    }

    #[test]
    fn validate_rejects_duplicate_names() {
        let mut p = sample();
        let helper = p.function_by_name("helper").unwrap().index();
        p.funcs[helper].name = "main".to_owned();
        assert!(matches!(
            p.validate(),
            Err(ValidateError::DuplicateFunctionName { .. })
        ));
    }

    #[test]
    fn from_parts_validates() {
        let p = sample();
        let funcs = p.funcs.clone();
        assert!(Program::from_parts(funcs, FuncId::new(7)).is_err());
        assert!(Program::from_parts(p.funcs.clone(), p.entry).is_ok());
    }
}

//! Basic blocks, terminators, and the stochastic branch-behavior model.

use crate::{BlockId, FuncId, Instr, BYTES_PER_INSTR};

/// Probability model for a two-way branch.
///
/// The profiling interpreter resolves each dynamic branch by sampling
/// `taken` with some probability. The paper profiles a program over several
/// *inputs* and evaluates on a held-out input; to mirror that, the
/// effective probability may depend on the input seed:
///
/// * `base` — the nominal taken-probability.
/// * `input_spread` — maximum +/- deviation applied per (input, branch).
///   A deterministic hash of the input seed and the branch's identity maps
///   into `[-input_spread, +input_spread]` and shifts `base`, then the
///   result is clamped into `[0, 1]`.
///
/// `input_spread = 0` gives input-independent behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchBias {
    /// Nominal probability that the branch is taken.
    pub base: f64,
    /// Maximum per-input deviation from `base`.
    pub input_spread: f64,
}

impl BranchBias {
    /// An input-independent bias: the branch is taken with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    #[must_use]
    pub fn fixed(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        Self {
            base: p,
            input_spread: 0.0,
        }
    }

    /// A bias whose effective probability varies by up to `spread` per
    /// input around `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is outside `[0, 1]` or `spread` is negative.
    #[must_use]
    pub fn varying(base: f64, spread: f64) -> Self {
        assert!((0.0..=1.0).contains(&base), "base {base} out of [0,1]");
        assert!(spread >= 0.0, "spread {spread} must be non-negative");
        Self {
            base,
            input_spread: spread,
        }
    }

    /// The effective taken-probability under input `input_seed` for the
    /// branch at the site identified by `site_key` (see [`site_key`]).
    ///
    /// Deterministic: the same arguments always yield the same
    /// probability, which is what makes profiles reproducible run to run.
    /// Keying on the *site* rather than raw indices keeps a program
    /// model's behavior stable across structural edits that renumber
    /// functions.
    #[must_use]
    pub fn effective(&self, input_seed: u64, site_key: u64) -> f64 {
        if self.input_spread == 0.0 {
            return self.base;
        }
        let h = splitmix64(input_seed ^ site_key);
        // Map to [-1, 1], scale by the spread, clamp the shifted base.
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let delta = (unit * 2.0 - 1.0) * self.input_spread;
        (self.base + delta).clamp(0.0, 1.0)
    }
}

/// Stable identity of a branch site: a hash of the containing function's
/// *name* and the block's index.
///
/// Function names survive renumbering (a function reserved earlier or
/// later keeps its name), so per-input branch behavior does not shift
/// when unrelated functions are added or reordered.
#[must_use]
pub fn site_key(func_name: &str, block: BlockId) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name bytes
    for &b in func_name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    splitmix64(h ^ (block.index() as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
}

/// SplitMix64 finalizer; a tiny, well-distributed integer hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The single control transfer ending a basic block.
///
/// Every terminator occupies exactly one instruction slot
/// ([`BYTES_PER_INSTR`] bytes): the reproduction models each block as
/// ending in an explicit control instruction, so block sizes are invariant
/// under re-layout. [`Terminator::Exit`] is the exception — it models the
/// process exit system call and also occupies one slot.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional transfer to another block of the same function.
    Jump {
        /// Destination block.
        target: BlockId,
    },
    /// Two-way conditional branch.
    Branch {
        /// Destination when the branch is taken.
        taken: BlockId,
        /// Destination when the branch falls through.
        not_taken: BlockId,
        /// Stochastic model deciding taken vs. not-taken.
        bias: BranchBias,
    },
    /// Multi-way transfer (switch statement / jump table).
    Switch {
        /// Destinations with relative selection weights. Weights need not
        /// be normalized; a zero-weight arm is never selected.
        targets: Vec<(BlockId, u32)>,
    },
    /// Call another function; on return, control resumes at `ret_to` in
    /// the calling function.
    Call {
        /// The called function.
        callee: FuncId,
        /// Block executed after the callee returns.
        ret_to: BlockId,
    },
    /// Return to the caller (or end the program when the call stack is
    /// empty and the function is the program entry).
    Return,
    /// End the program.
    Exit,
}

impl Terminator {
    /// Convenience constructor for [`Terminator::Jump`].
    #[must_use]
    pub fn jump(target: BlockId) -> Self {
        Terminator::Jump { target }
    }

    /// Convenience constructor for [`Terminator::Branch`].
    #[must_use]
    pub fn branch(taken: BlockId, not_taken: BlockId, bias: BranchBias) -> Self {
        Terminator::Branch {
            taken,
            not_taken,
            bias,
        }
    }

    /// Convenience constructor for [`Terminator::Call`].
    #[must_use]
    pub fn call(callee: FuncId, ret_to: BlockId) -> Self {
        Terminator::Call { callee, ret_to }
    }

    /// Intra-function successor blocks, in a deterministic order.
    ///
    /// `Call` reports its return-continuation block, since that is where
    /// control next appears *within this function*. `Return` and `Exit`
    /// have no intra-function successors.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump { target } => vec![*target],
            Terminator::Branch {
                taken, not_taken, ..
            } => {
                if taken == not_taken {
                    vec![*taken]
                } else {
                    vec![*taken, *not_taken]
                }
            }
            Terminator::Switch { targets } => {
                let mut seen = Vec::with_capacity(targets.len());
                for (t, _) in targets {
                    if !seen.contains(t) {
                        seen.push(*t);
                    }
                }
                seen
            }
            Terminator::Call { ret_to, .. } => vec![*ret_to],
            Terminator::Return | Terminator::Exit => Vec::new(),
        }
    }

    /// Returns `true` if this terminator leaves the function (or program).
    #[must_use]
    pub fn is_function_exit(&self) -> bool {
        matches!(self, Terminator::Return | Terminator::Exit)
    }
}

/// A basic block: straight-line instructions plus one [`Terminator`].
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    body: Vec<Instr>,
    term: Terminator,
}

impl BasicBlock {
    /// Creates a block from its straight-line body and terminator.
    #[must_use]
    pub fn new(body: Vec<Instr>, term: Terminator) -> Self {
        Self { body, term }
    }

    /// The non-control instructions of the block.
    #[must_use]
    pub fn body(&self) -> &[Instr] {
        &self.body
    }

    /// The block's control transfer.
    #[must_use]
    pub fn terminator(&self) -> &Terminator {
        &self.term
    }

    /// Replaces the block's terminator.
    pub fn set_terminator(&mut self, term: Terminator) {
        self.term = term;
    }

    /// Total instruction count, including the terminator's slot.
    #[must_use]
    pub fn instr_count(&self) -> u64 {
        self.body.len() as u64 + 1
    }

    /// Size of the block in bytes when placed in memory.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.instr_count() * BYTES_PER_INSTR
    }

    /// Resizes the straight-line body to `n` instructions, truncating or
    /// padding with [`Instr::Nop`]. Used by the code scaling experiment.
    pub fn resize_body(&mut self, n: usize) {
        self.body.resize(n, Instr::Nop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(n: usize, term: Terminator) -> BasicBlock {
        BasicBlock::new(vec![Instr::IntAlu; n], term)
    }

    #[test]
    fn size_includes_terminator_slot() {
        let b = bb(3, Terminator::Return);
        assert_eq!(b.instr_count(), 4);
        assert_eq!(b.size_bytes(), 16);
    }

    #[test]
    fn empty_body_still_occupies_one_slot() {
        let b = bb(0, Terminator::Exit);
        assert_eq!(b.size_bytes(), BYTES_PER_INSTR);
    }

    #[test]
    fn branch_successors_deduplicate() {
        let t = Terminator::branch(BlockId::new(1), BlockId::new(1), BranchBias::fixed(0.5));
        assert_eq!(t.successors(), vec![BlockId::new(1)]);
    }

    #[test]
    fn switch_successors_deduplicate_preserving_order() {
        let t = Terminator::Switch {
            targets: vec![
                (BlockId::new(2), 1),
                (BlockId::new(1), 3),
                (BlockId::new(2), 9),
            ],
        };
        assert_eq!(t.successors(), vec![BlockId::new(2), BlockId::new(1)]);
    }

    #[test]
    fn call_successor_is_return_continuation() {
        let t = Terminator::call(FuncId::new(4), BlockId::new(7));
        assert_eq!(t.successors(), vec![BlockId::new(7)]);
        assert!(!t.is_function_exit());
    }

    #[test]
    fn exit_terminators_have_no_successors() {
        assert!(Terminator::Return.successors().is_empty());
        assert!(Terminator::Exit.successors().is_empty());
        assert!(Terminator::Return.is_function_exit());
        assert!(Terminator::Exit.is_function_exit());
    }

    #[test]
    fn fixed_bias_ignores_input() {
        let b = BranchBias::fixed(0.3);
        let p0 = b.effective(1, site_key("main", BlockId::new(0)));
        let p1 = b.effective(99, site_key("other", BlockId::new(9)));
        assert_eq!(p0, 0.3);
        assert_eq!(p1, 0.3);
    }

    #[test]
    fn varying_bias_is_deterministic_and_bounded() {
        let b = BranchBias::varying(0.5, 0.2);
        let p = b.effective(42, site_key("f", BlockId::new(2)));
        let q = b.effective(42, site_key("f", BlockId::new(2)));
        assert_eq!(p, q, "same input must give same probability");
        assert!((0.3..=0.7).contains(&p), "p = {p} outside base +/- spread");
    }

    #[test]
    fn varying_bias_differs_across_inputs() {
        let b = BranchBias::varying(0.5, 0.3);
        let probs: Vec<f64> = (0..8)
            .map(|seed| b.effective(seed, site_key("main", BlockId::new(0))))
            .collect();
        let first = probs[0];
        assert!(
            probs.iter().any(|p| (p - first).abs() > 1e-9),
            "expected at least two distinct per-input probabilities: {probs:?}"
        );
    }

    #[test]
    fn varying_bias_clamps_to_unit_interval() {
        let b = BranchBias::varying(0.99, 0.5);
        for seed in 0..64 {
            let p = b.effective(seed, site_key("main", BlockId::new(0)));
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn fixed_bias_rejects_bad_probability() {
        let _ = BranchBias::fixed(1.5);
    }

    #[test]
    fn resize_body_pads_with_nops() {
        let mut b = bb(2, Terminator::Return);
        b.resize_body(4);
        assert_eq!(b.body().len(), 4);
        assert_eq!(b.body()[3], Instr::Nop);
        b.resize_body(1);
        assert_eq!(b.body().len(), 1);
        assert_eq!(b.body()[0], Instr::IntAlu);
    }
}

//! Structural validation errors.

use std::error::Error;
use std::fmt;

use crate::{BlockId, FuncId};

/// A structural invariant violation found while validating a
/// [`Program`](crate::Program).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidateError {
    /// The program contains no functions.
    EmptyProgram,
    /// No entry function was designated.
    NoEntryFunction,
    /// The designated entry function id is out of range.
    BadEntryFunction {
        /// The offending entry id.
        entry: FuncId,
    },
    /// A reserved function was never given a body.
    UndefinedFunction {
        /// The reserved id.
        func: FuncId,
        /// The name it was reserved under.
        name: String,
    },
    /// A function has an empty name.
    EmptyFunctionName {
        /// The offending function.
        func: FuncId,
    },
    /// Two functions share a name.
    DuplicateFunctionName {
        /// The duplicated name.
        name: String,
    },
    /// A function contains no basic blocks.
    EmptyFunction {
        /// The offending function.
        func: FuncId,
    },
    /// A function's entry block id is out of range.
    BadEntryBlock {
        /// The function.
        func: FuncId,
        /// The offending entry id.
        entry: BlockId,
    },
    /// A terminator references a block outside its function.
    DanglingBlockTarget {
        /// The function.
        func: FuncId,
        /// The block whose terminator is broken.
        block: BlockId,
        /// The out-of-range target.
        target: BlockId,
    },
    /// A call terminator references a function outside the program.
    DanglingCallee {
        /// The calling function.
        func: FuncId,
        /// The calling block.
        block: BlockId,
        /// The out-of-range callee.
        callee: FuncId,
    },
    /// A switch has no arm with positive weight, so execution could never
    /// leave the block.
    UnselectableSwitch {
        /// The function.
        func: FuncId,
        /// The offending block.
        block: BlockId,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::EmptyProgram => write!(f, "program has no functions"),
            ValidateError::NoEntryFunction => write!(f, "program entry function was never set"),
            ValidateError::BadEntryFunction { entry } => {
                write!(f, "entry function {entry} is out of range")
            }
            ValidateError::UndefinedFunction { func, name } => {
                write!(
                    f,
                    "function {func} ({name:?}) was reserved but never defined"
                )
            }
            ValidateError::EmptyFunctionName { func } => {
                write!(f, "function {func} has an empty name")
            }
            ValidateError::DuplicateFunctionName { name } => {
                write!(f, "duplicate function name {name:?}")
            }
            ValidateError::EmptyFunction { func } => {
                write!(f, "function {func} has no basic blocks")
            }
            ValidateError::BadEntryBlock { func, entry } => {
                write!(f, "entry block {entry} of function {func} is out of range")
            }
            ValidateError::DanglingBlockTarget {
                func,
                block,
                target,
            } => write!(
                f,
                "terminator of {func}/{block} targets out-of-range block {target}"
            ),
            ValidateError::DanglingCallee {
                func,
                block,
                callee,
            } => write!(
                f,
                "call in {func}/{block} targets out-of-range function {callee}"
            ),
            ValidateError::UnselectableSwitch { func, block } => {
                write!(f, "switch in {func}/{block} has no positive-weight arm")
            }
        }
    }
}

impl Error for ValidateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let e = ValidateError::DanglingBlockTarget {
            func: FuncId::new(1),
            block: BlockId::new(2),
            target: BlockId::new(9),
        };
        let msg = e.to_string();
        assert!(msg.contains("fn1"));
        assert!(msg.contains("bb2"));
        assert!(msg.contains("bb9"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(ValidateError::EmptyProgram);
    }
}

//! Typed indices for functions and basic blocks.

use std::fmt;

/// Identifies a function within a [`Program`](crate::Program).
///
/// A `FuncId` is a dense index: the `i`-th function added to a
/// [`ProgramBuilder`](crate::ProgramBuilder) receives id `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(u32);

/// Identifies a basic block within a [`Function`](crate::Function).
///
/// Block ids are local to their function: block `0` of one function is
/// unrelated to block `0` of another. Like [`FuncId`], they are dense
/// indices in builder insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u32);

impl FuncId {
    /// Creates a function id from a raw index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(u32::try_from(index).expect("function index exceeds u32"))
    }

    /// Returns the raw index, usable to index per-function tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// Creates a block id from a raw index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(u32::try_from(index).expect("block index exceeds u32"))
    }

    /// Returns the raw index, usable to index per-block tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl From<FuncId> for usize {
    fn from(id: FuncId) -> usize {
        id.index()
    }
}

impl From<BlockId> for usize {
    fn from(id: BlockId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_raw_index() {
        assert_eq!(FuncId::new(7).index(), 7);
        assert_eq!(BlockId::new(0).index(), 0);
    }

    #[test]
    fn displays_with_prefix() {
        assert_eq!(FuncId::new(3).to_string(), "fn3");
        assert_eq!(BlockId::new(12).to_string(), "bb12");
    }

    #[test]
    fn orders_by_index() {
        assert!(FuncId::new(1) < FuncId::new(2));
        assert!(BlockId::new(0) < BlockId::new(10));
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn rejects_oversized_index() {
        let _ = FuncId::new(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }
}

//! Static call graph extraction.

use crate::{BlockId, FuncId, Program, Terminator};

/// One static call site: block `block` of function `caller` calls `callee`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CallSite {
    /// The calling function.
    pub caller: FuncId,
    /// The block whose terminator is the call.
    pub block: BlockId,
    /// The called function.
    pub callee: FuncId,
}

/// The static call graph of a [`Program`]: every [`CallSite`], plus
/// adjacency queries.
///
/// The *weighted* call graph of the paper is this structure joined with
/// per-site execution counts from `impact-profile`.
#[derive(Debug, Clone, PartialEq)]
pub struct CallGraph {
    sites: Vec<CallSite>,
    /// Per-caller index ranges into `sites` (sites are sorted by caller).
    by_caller: Vec<(usize, usize)>,
}

impl CallGraph {
    /// Extracts the call graph of `program`.
    #[must_use]
    pub fn of(program: &Program) -> Self {
        let mut sites = Vec::new();
        for (fid, func) in program.functions() {
            for (bid, block) in func.blocks() {
                if let Terminator::Call { callee, .. } = block.terminator() {
                    sites.push(CallSite {
                        caller: fid,
                        block: bid,
                        callee: *callee,
                    });
                }
            }
        }
        // Builder iteration order already sorts by (caller, block).
        let mut by_caller = vec![(0, 0); program.function_count()];
        let mut i = 0;
        for (fid, range) in by_caller.iter_mut().enumerate() {
            let start = i;
            while i < sites.len() && sites[i].caller.index() == fid {
                i += 1;
            }
            *range = (start, i);
        }
        Self { sites, by_caller }
    }

    /// All call sites, sorted by `(caller, block)`.
    #[must_use]
    pub fn sites(&self) -> &[CallSite] {
        &self.sites
    }

    /// Call sites whose caller is `func`.
    #[must_use]
    pub fn sites_of(&self, func: FuncId) -> &[CallSite] {
        let (lo, hi) = self.by_caller[func.index()];
        &self.sites[lo..hi]
    }

    /// Distinct callees of `func`, in first-call-site order.
    #[must_use]
    pub fn callees_of(&self, func: FuncId) -> Vec<FuncId> {
        let mut out = Vec::new();
        for site in self.sites_of(func) {
            if !out.contains(&site.callee) {
                out.push(site.callee);
            }
        }
        out
    }

    /// Returns `true` if `func` participates in a call cycle (including
    /// direct self-recursion).
    ///
    /// Uses an iterative DFS from `func` over callee edges, checking
    /// whether `func` is reachable from itself.
    #[must_use]
    pub fn is_recursive(&self, func: FuncId) -> bool {
        let mut stack: Vec<FuncId> = self.callees_of(func);
        let mut seen = std::collections::HashSet::new();
        while let Some(f) = stack.pop() {
            if f == func {
                return true;
            }
            if seen.insert(f) {
                stack.extend(self.callees_of(f));
            }
        }
        false
    }

    /// Functions reachable from `roots` via call edges (roots included).
    #[must_use]
    pub fn reachable_from(&self, roots: &[FuncId]) -> Vec<FuncId> {
        let mut seen = std::collections::HashSet::new();
        let mut order = Vec::new();
        let mut stack: Vec<FuncId> = roots.to_vec();
        while let Some(f) = stack.pop() {
            if seen.insert(f) {
                order.push(f);
                for callee in self.callees_of(f) {
                    if !seen.contains(&callee) {
                        stack.push(callee);
                    }
                }
            }
        }
        order.sort();
        order
    }
}

#[cfg(test)]
mod tests {
    use crate::{Instr, ProgramBuilder, Terminator};

    use super::*;

    /// main -> a (twice), a -> b, b -> a (cycle), c unreachable.
    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let a = pb.reserve("a");
        let b = pb.reserve("b");

        let mut main = pb.function("main");
        let m0 = main.block(vec![Instr::IntAlu]);
        let m1 = main.block(vec![]);
        let m2 = main.block(vec![]);
        main.terminate(m0, Terminator::call(a, m1));
        main.terminate(m1, Terminator::call(a, m2));
        main.terminate(m2, Terminator::Exit);
        let main_id = main.finish();

        let mut fa = pb.function_reserved(a);
        let a0 = fa.block(vec![]);
        let a1 = fa.block(vec![]);
        fa.terminate(a0, Terminator::call(b, a1));
        fa.terminate(a1, Terminator::Return);
        fa.finish();

        let mut fb = pb.function_reserved(b);
        let b0 = fb.block(vec![]);
        let b1 = fb.block(vec![]);
        fb.terminate(b0, Terminator::call(a, b1));
        fb.terminate(b1, Terminator::Return);
        fb.finish();

        let mut fc = pb.function("c");
        let c0 = fc.block(vec![]);
        fc.terminate(c0, Terminator::Return);
        fc.finish();

        pb.set_entry(main_id);
        pb.finish().unwrap()
    }

    #[test]
    fn finds_all_sites() {
        let p = sample();
        let cg = p.call_graph();
        assert_eq!(cg.sites().len(), 4);
        assert_eq!(cg.sites_of(p.entry()).len(), 2);
    }

    #[test]
    fn callees_deduplicate() {
        let p = sample();
        let cg = p.call_graph();
        let a = p.function_by_name("a").unwrap();
        assert_eq!(cg.callees_of(p.entry()), vec![a]);
    }

    #[test]
    fn detects_mutual_recursion() {
        let p = sample();
        let cg = p.call_graph();
        let a = p.function_by_name("a").unwrap();
        let b = p.function_by_name("b").unwrap();
        assert!(cg.is_recursive(a));
        assert!(cg.is_recursive(b));
        assert!(!cg.is_recursive(p.entry()));
    }

    #[test]
    fn reachability_excludes_dead_functions() {
        let p = sample();
        let cg = p.call_graph();
        let c = p.function_by_name("c").unwrap();
        let reach = cg.reachable_from(&[p.entry()]);
        assert_eq!(reach.len(), 3);
        assert!(!reach.contains(&c));
    }

    #[test]
    fn leaf_function_has_no_sites() {
        let p = sample();
        let cg = p.call_graph();
        let c = p.function_by_name("c").unwrap();
        assert!(cg.sites_of(c).is_empty());
        assert!(cg.callees_of(c).is_empty());
    }
}

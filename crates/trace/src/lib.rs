//! Dynamic instruction-address trace generation.
//!
//! The paper evaluates its placement by trace-driven simulation: "we
//! randomly select one input for each benchmark to take the traces of
//! dynamic instruction accesses", and "the entire execution traces are
//! applied to the cache simulator".
//!
//! [`TraceGenerator`] re-runs the same seeded interpreter used for
//! profiling (`impact_profile::Walker`) over a *placed* program, emitting
//! the byte address of every instruction fetch. Traces are streamed to a
//! callback — they are never materialized, so multi-million-access
//! simulations run in constant memory.
//!
//! Use an **evaluation seed outside the profiling seed range** to mirror
//! the paper's train/test split; [`TraceGenerator::DEFAULT_EVAL_SEED`]
//! provides the convention used across this repository.
//!
//! # Example
//!
//! ```
//! use impact_ir::{ProgramBuilder, Terminator, BranchBias};
//! use impact_layout::pipeline::{Pipeline, PipelineConfig};
//! use impact_trace::TraceGenerator;
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main");
//! let a = f.block_n(3);
//! let b = f.block_n(1);
//! f.terminate(a, Terminator::branch(a, b, BranchBias::fixed(0.9)));
//! f.terminate(b, Terminator::Exit);
//! let main = f.finish();
//! pb.set_entry(main);
//! let program = pb.finish()?;
//!
//! let result = Pipeline::new(PipelineConfig::default()).run(&program);
//! let gen = TraceGenerator::new(&result.program, &result.placement);
//! let mut accesses = 0u64;
//! let summary = gen.run(TraceGenerator::DEFAULT_EVAL_SEED, |_addr| accesses += 1);
//! assert_eq!(accesses, summary.instructions);
//! # Ok::<(), impact_ir::ValidateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod din;

pub use artifact::{CaptureSink, RunBuffer};

use impact_cache::{AccessSink, FnSink};
use impact_ir::{BlockId, FuncId, Program, BYTES_PER_INSTR};
use impact_layout::Placement;
use impact_profile::{ExecLimits, ExecSummary, ExecVisitor, Transfer, Walker};

/// Streams the instruction fetch addresses of one program execution.
#[derive(Debug)]
pub struct TraceGenerator<'a> {
    program: &'a Program,
    placement: &'a Placement,
    limits: ExecLimits,
}

/// Visitor coalescing executed blocks into sequential fetch *runs*.
///
/// Consecutive blocks whose placements fall through (the next block's
/// base is exactly the end of the pending run) extend one run; a taken
/// transfer to anywhere else flushes it. The sink therefore receives one
/// `access_run` per straight-line stretch of the dynamic execution —
/// orders of magnitude fewer calls than per-word emission, with an
/// identical address stream.
struct RunEmitter<'a, S> {
    placement: &'a Placement,
    program: &'a Program,
    sink: &'a mut S,
    /// Base address of the pending run (meaningful when `run_words > 0`).
    run_start: u64,
    /// Pending run length in instructions.
    run_words: u64,
}

impl<S: AccessSink> RunEmitter<'_, S> {
    fn flush(&mut self) {
        if self.run_words > 0 {
            self.sink.access_run(self.run_start, self.run_words);
            self.run_words = 0;
        }
    }
}

impl<S: AccessSink> ExecVisitor for RunEmitter<'_, S> {
    fn block(&mut self, func: FuncId, block: BlockId) {
        let base = self.placement.addr(func, block);
        let instrs = self.program.function(func).block(block).instr_count();
        if instrs == 0 {
            return; // empty blocks fetch nothing and break no runs
        }
        if self.run_words > 0 && base == self.run_start + self.run_words * BYTES_PER_INSTR {
            self.run_words += instrs; // fall-through: extend the run
        } else {
            self.flush();
            self.run_start = base;
            self.run_words = instrs;
        }
    }

    fn transfer(&mut self, _t: Transfer) {}
}

impl<'a> TraceGenerator<'a> {
    /// The conventional evaluation input seed: far outside the default
    /// profiling range (`0..runs`), mirroring the paper's held-out input.
    pub const DEFAULT_EVAL_SEED: u64 = 1_000_003;

    /// Creates a generator over `program` laid out by `placement`, with
    /// default execution limits.
    #[must_use]
    pub fn new(program: &'a Program, placement: &'a Placement) -> Self {
        Self {
            program,
            placement,
            limits: ExecLimits::default(),
        }
    }

    /// Replaces the execution limits.
    #[must_use]
    pub fn with_limits(mut self, limits: ExecLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Runs one execution under `input_seed`, streaming every fetch
    /// address to `emit`. Returns the walk summary; the number of
    /// addresses emitted equals `summary.instructions`.
    ///
    /// Convenience wrapper over [`TraceGenerator::stream`] for callers
    /// that want per-word callbacks; simulation sinks should implement
    /// [`AccessSink`] and use `stream` to receive batched runs.
    pub fn run<F: FnMut(u64)>(&self, input_seed: u64, emit: F) -> ExecSummary {
        self.stream(input_seed, &mut FnSink(emit))
    }

    /// Runs one execution under `input_seed`, streaming the fetch stream
    /// to `sink` as sequential *runs*: one [`AccessSink::access_run`] per
    /// straight-line stretch (split only at taken transfers), covering
    /// exactly `summary.instructions` words in execution order.
    pub fn stream<S: AccessSink>(&self, input_seed: u64, sink: &mut S) -> ExecSummary {
        let mut visitor = RunEmitter {
            placement: self.placement,
            program: self.program,
            sink,
            run_start: 0,
            run_words: 0,
        };
        let summary = Walker::new(self.program)
            .with_limits(self.limits)
            .run(input_seed, &mut visitor);
        visitor.flush();
        summary
    }

    /// Convenience: materializes the whole trace (tests and small runs
    /// only — prefer [`TraceGenerator::run`] for real simulations).
    #[must_use]
    pub fn collect(&self, input_seed: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.run(input_seed, |a| out.push(a));
        out
    }
}

#[cfg(test)]
mod tests {
    use impact_ir::{BranchBias, ProgramBuilder, Terminator};
    use impact_layout::baseline;
    use impact_layout::pipeline::{Pipeline, PipelineConfig};

    use super::*;

    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let helper = pb.reserve("helper");
        let mut main = pb.function("main");
        let m0 = main.block_n(2);
        let m1 = main.block_n(1);
        let m2 = main.block_n(0);
        main.terminate(m0, Terminator::call(helper, m1));
        main.terminate(m1, Terminator::branch(m0, m2, BranchBias::fixed(0.7)));
        main.terminate(m2, Terminator::Exit);
        let mid = main.finish();
        let mut h = pb.function_reserved(helper);
        let h0 = h.block_n(3);
        h.terminate(h0, Terminator::Return);
        h.finish();
        pb.set_entry(mid);
        pb.finish().unwrap()
    }

    #[test]
    fn emits_one_address_per_instruction() {
        let p = program();
        let placement = baseline::natural(&p);
        let gen = TraceGenerator::new(&p, &placement);
        let trace = gen.collect(7);
        let mut count = 0u64;
        let summary = gen.run(7, |_| count += 1);
        assert_eq!(trace.len() as u64, summary.instructions);
        assert_eq!(count, summary.instructions);
    }

    #[test]
    fn addresses_are_word_aligned_and_in_bounds() {
        let p = program();
        let placement = baseline::natural(&p);
        let gen = TraceGenerator::new(&p, &placement);
        for addr in gen.collect(3) {
            assert_eq!(addr % BYTES_PER_INSTR, 0);
            assert!(addr < placement.total_bytes());
        }
    }

    #[test]
    fn block_bodies_fetch_sequentially() {
        let p = program();
        let placement = baseline::natural(&p);
        let gen = TraceGenerator::new(&p, &placement);
        let trace = gen.collect(3);
        // main (fn id 1 — helper reserved first) entry block: 3 instrs.
        let main = p.entry();
        let entry_addr = placement.addr(main, BlockId::new(0));
        let pos = trace.iter().position(|&a| a == entry_addr).unwrap();
        assert_eq!(trace[pos + 1], entry_addr + 4);
        assert_eq!(trace[pos + 2], entry_addr + 8);
    }

    #[test]
    fn same_seed_same_trace_different_layouts_same_length() {
        let p = program();
        let natural = baseline::natural(&p);
        let random = baseline::random(&p, 5);
        let t1 = TraceGenerator::new(&p, &natural).collect(11);
        let t2 = TraceGenerator::new(&p, &random).collect(11);
        // The execution path is layout-independent; only addresses change.
        assert_eq!(t1.len(), t2.len());
        assert_ne!(t1, t2, "different placements must move addresses");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = program();
        let placement = baseline::natural(&p);
        let gen = TraceGenerator::new(&p, &placement);
        assert_eq!(gen.collect(9), gen.collect(9));
        assert_ne!(gen.collect(9), gen.collect(10));
    }

    #[test]
    fn pipeline_placement_traces_cover_effective_region_first() {
        let p = program();
        let r = Pipeline::new(PipelineConfig {
            inline: None,
            ..PipelineConfig::default()
        })
        .run(&p);
        let gen = TraceGenerator::new(&r.program, &r.placement);
        let trace = gen.collect(TraceGenerator::DEFAULT_EVAL_SEED);
        // Every fetched address lies in the effective region: this
        // program has no dead blocks only if all blocks executed; filter
        // instead on the guarantee that fetched addresses < total.
        assert!(trace.iter().all(|&a| a < r.placement.total_bytes()));
    }

    #[test]
    fn stream_runs_reconstruct_the_word_trace() {
        // One run per straight-line stretch: expanding the runs word by
        // word must yield exactly the per-word trace, and every run must
        // be non-trivial (non-zero length, aligned start).
        let p = program();
        for placement in [baseline::natural(&p), baseline::random(&p, 5)] {
            let gen = TraceGenerator::new(&p, &placement);
            for seed in [1, 7, TraceGenerator::DEFAULT_EVAL_SEED] {
                struct Runs(Vec<(u64, u64)>);
                impl impact_cache::AccessSink for Runs {
                    fn access(&mut self, _addr: u64) {
                        unreachable!("stream must emit whole runs");
                    }
                    fn access_run(&mut self, addr: u64, words: u64) {
                        self.0.push((addr, words));
                    }
                }
                let mut runs = Runs(Vec::new());
                let summary = gen.stream(seed, &mut runs);
                let expanded: Vec<u64> = runs
                    .0
                    .iter()
                    .flat_map(|&(a, n)| (0..n).map(move |i| a + i * BYTES_PER_INSTR))
                    .collect();
                assert_eq!(expanded, gen.collect(seed));
                assert_eq!(expanded.len() as u64, summary.instructions);
                assert!(runs
                    .0
                    .iter()
                    .all(|&(a, n)| n > 0 && a % BYTES_PER_INSTR == 0));
                // Runs are maximal: consecutive runs never abut.
                for w in runs.0.windows(2) {
                    assert_ne!(w[1].0, w[0].0 + w[0].1 * BYTES_PER_INSTR);
                }
            }
        }
    }

    #[test]
    fn taken_transfer_to_the_fall_through_address_extends_the_run() {
        // A *taken* branch whose target happens to be placed at the
        // exact fall-through address must not split the run: coalescing
        // is address-based, not transfer-kind-based. (Artifact
        // compactness depends on this — a split here would double the
        // run count of loop-free code laid out in trace order.)
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let a = f.block_n(2);
        let b = f.block_n(1);
        let c = f.block_n(3);
        // `a` always *takes* its branch to `b`; natural placement puts
        // `b` directly after `a`, so the taken target is the
        // fall-through address.
        f.terminate(a, Terminator::branch(b, c, BranchBias::fixed(1.0)));
        f.terminate(b, Terminator::Jump { target: c });
        f.terminate(c, Terminator::Exit);
        let id = f.finish();
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let placement = baseline::natural(&p);
        let main = p.entry();
        let a_words = p.function(main).block(BlockId::new(0)).instr_count();
        assert_eq!(
            placement.addr(main, BlockId::new(1)),
            placement.addr(main, BlockId::new(0)) + a_words * BYTES_PER_INSTR,
            "test needs b placed at a's fall-through"
        );
        struct Runs(Vec<(u64, u64)>);
        impl impact_cache::AccessSink for Runs {
            fn access(&mut self, _addr: u64) {
                unreachable!("stream must emit whole runs");
            }
            fn access_run(&mut self, addr: u64, words: u64) {
                self.0.push((addr, words));
            }
        }
        let mut runs = Runs(Vec::new());
        let summary = TraceGenerator::new(&p, &placement).stream(1, &mut runs);
        // a, b, c are contiguous in both placement and execution order:
        // exactly one maximal run covering the whole execution.
        assert_eq!(
            runs.0,
            vec![(placement.addr(main, BlockId::new(0)), summary.instructions)]
        );
    }

    #[test]
    fn limits_truncate_traces() {
        let p = program();
        let placement = baseline::natural(&p);
        let gen = TraceGenerator::new(&p, &placement).with_limits(ExecLimits {
            max_instructions: 10,
            max_call_depth: 8,
        });
        let trace = gen.collect(1);
        assert!(trace.len() >= 10 && trace.len() < 20);
    }
}

//! Dynamic instruction-address trace generation.
//!
//! The paper evaluates its placement by trace-driven simulation: "we
//! randomly select one input for each benchmark to take the traces of
//! dynamic instruction accesses", and "the entire execution traces are
//! applied to the cache simulator".
//!
//! [`TraceGenerator`] re-runs the same seeded interpreter used for
//! profiling (`impact_profile::Walker`) over a *placed* program, emitting
//! the byte address of every instruction fetch. Traces are streamed to a
//! callback — they are never materialized, so multi-million-access
//! simulations run in constant memory.
//!
//! Use an **evaluation seed outside the profiling seed range** to mirror
//! the paper's train/test split; [`TraceGenerator::DEFAULT_EVAL_SEED`]
//! provides the convention used across this repository.
//!
//! # Example
//!
//! ```
//! use impact_ir::{ProgramBuilder, Terminator, BranchBias};
//! use impact_layout::pipeline::{Pipeline, PipelineConfig};
//! use impact_trace::TraceGenerator;
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main");
//! let a = f.block_n(3);
//! let b = f.block_n(1);
//! f.terminate(a, Terminator::branch(a, b, BranchBias::fixed(0.9)));
//! f.terminate(b, Terminator::Exit);
//! let main = f.finish();
//! pb.set_entry(main);
//! let program = pb.finish()?;
//!
//! let result = Pipeline::new(PipelineConfig::default()).run(&program);
//! let gen = TraceGenerator::new(&result.program, &result.placement);
//! let mut accesses = 0u64;
//! let summary = gen.run(TraceGenerator::DEFAULT_EVAL_SEED, |_addr| accesses += 1);
//! assert_eq!(accesses, summary.instructions);
//! # Ok::<(), impact_ir::ValidateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod din;

use impact_ir::{BlockId, FuncId, Program, BYTES_PER_INSTR};
use impact_layout::Placement;
use impact_profile::{ExecLimits, ExecSummary, ExecVisitor, Transfer, Walker};

/// Streams the instruction fetch addresses of one program execution.
#[derive(Debug)]
pub struct TraceGenerator<'a> {
    program: &'a Program,
    placement: &'a Placement,
    limits: ExecLimits,
}

/// Visitor translating executed blocks into fetch addresses.
struct AddressEmitter<'a, F> {
    placement: &'a Placement,
    program: &'a Program,
    emit: F,
}

impl<F: FnMut(u64)> ExecVisitor for AddressEmitter<'_, F> {
    fn block(&mut self, func: FuncId, block: BlockId) {
        let base = self.placement.addr(func, block);
        let instrs = self.program.function(func).block(block).instr_count();
        for i in 0..instrs {
            (self.emit)(base + i * BYTES_PER_INSTR);
        }
    }

    fn transfer(&mut self, _t: Transfer) {}
}

impl<'a> TraceGenerator<'a> {
    /// The conventional evaluation input seed: far outside the default
    /// profiling range (`0..runs`), mirroring the paper's held-out input.
    pub const DEFAULT_EVAL_SEED: u64 = 1_000_003;

    /// Creates a generator over `program` laid out by `placement`, with
    /// default execution limits.
    #[must_use]
    pub fn new(program: &'a Program, placement: &'a Placement) -> Self {
        Self {
            program,
            placement,
            limits: ExecLimits::default(),
        }
    }

    /// Replaces the execution limits.
    #[must_use]
    pub fn with_limits(mut self, limits: ExecLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Runs one execution under `input_seed`, streaming every fetch
    /// address to `emit`. Returns the walk summary; the number of
    /// addresses emitted equals `summary.instructions`.
    pub fn run<F: FnMut(u64)>(&self, input_seed: u64, emit: F) -> ExecSummary {
        let mut visitor = AddressEmitter {
            placement: self.placement,
            program: self.program,
            emit,
        };
        Walker::new(self.program)
            .with_limits(self.limits)
            .run(input_seed, &mut visitor)
    }

    /// Convenience: materializes the whole trace (tests and small runs
    /// only — prefer [`TraceGenerator::run`] for real simulations).
    #[must_use]
    pub fn collect(&self, input_seed: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.run(input_seed, |a| out.push(a));
        out
    }
}

#[cfg(test)]
mod tests {
    use impact_ir::{BranchBias, ProgramBuilder, Terminator};
    use impact_layout::baseline;
    use impact_layout::pipeline::{Pipeline, PipelineConfig};

    use super::*;

    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let helper = pb.reserve("helper");
        let mut main = pb.function("main");
        let m0 = main.block_n(2);
        let m1 = main.block_n(1);
        let m2 = main.block_n(0);
        main.terminate(m0, Terminator::call(helper, m1));
        main.terminate(m1, Terminator::branch(m0, m2, BranchBias::fixed(0.7)));
        main.terminate(m2, Terminator::Exit);
        let mid = main.finish();
        let mut h = pb.function_reserved(helper);
        let h0 = h.block_n(3);
        h.terminate(h0, Terminator::Return);
        h.finish();
        pb.set_entry(mid);
        pb.finish().unwrap()
    }

    #[test]
    fn emits_one_address_per_instruction() {
        let p = program();
        let placement = baseline::natural(&p);
        let gen = TraceGenerator::new(&p, &placement);
        let trace = gen.collect(7);
        let mut count = 0u64;
        let summary = gen.run(7, |_| count += 1);
        assert_eq!(trace.len() as u64, summary.instructions);
        assert_eq!(count, summary.instructions);
    }

    #[test]
    fn addresses_are_word_aligned_and_in_bounds() {
        let p = program();
        let placement = baseline::natural(&p);
        let gen = TraceGenerator::new(&p, &placement);
        for addr in gen.collect(3) {
            assert_eq!(addr % BYTES_PER_INSTR, 0);
            assert!(addr < placement.total_bytes());
        }
    }

    #[test]
    fn block_bodies_fetch_sequentially() {
        let p = program();
        let placement = baseline::natural(&p);
        let gen = TraceGenerator::new(&p, &placement);
        let trace = gen.collect(3);
        // main (fn id 1 — helper reserved first) entry block: 3 instrs.
        let main = p.entry();
        let entry_addr = placement.addr(main, BlockId::new(0));
        let pos = trace.iter().position(|&a| a == entry_addr).unwrap();
        assert_eq!(trace[pos + 1], entry_addr + 4);
        assert_eq!(trace[pos + 2], entry_addr + 8);
    }

    #[test]
    fn same_seed_same_trace_different_layouts_same_length() {
        let p = program();
        let natural = baseline::natural(&p);
        let random = baseline::random(&p, 5);
        let t1 = TraceGenerator::new(&p, &natural).collect(11);
        let t2 = TraceGenerator::new(&p, &random).collect(11);
        // The execution path is layout-independent; only addresses change.
        assert_eq!(t1.len(), t2.len());
        assert_ne!(t1, t2, "different placements must move addresses");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = program();
        let placement = baseline::natural(&p);
        let gen = TraceGenerator::new(&p, &placement);
        assert_eq!(gen.collect(9), gen.collect(9));
        assert_ne!(gen.collect(9), gen.collect(10));
    }

    #[test]
    fn pipeline_placement_traces_cover_effective_region_first() {
        let p = program();
        let r = Pipeline::new(PipelineConfig {
            inline: None,
            ..PipelineConfig::default()
        })
        .run(&p);
        let gen = TraceGenerator::new(&r.program, &r.placement);
        let trace = gen.collect(TraceGenerator::DEFAULT_EVAL_SEED);
        // Every fetched address lies in the effective region: this
        // program has no dead blocks only if all blocks executed; filter
        // instead on the guarantee that fetched addresses < total.
        assert!(trace.iter().all(|&a| a < r.placement.total_bytes()));
    }

    #[test]
    fn limits_truncate_traces() {
        let p = program();
        let placement = baseline::natural(&p);
        let gen = TraceGenerator::new(&p, &placement).with_limits(ExecLimits {
            max_instructions: 10,
            max_call_depth: 8,
        });
        let trace = gen.collect(1);
        assert!(trace.len() >= 10 && trace.len() < 20);
    }
}

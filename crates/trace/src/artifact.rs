//! Run-buffer trace artifacts: capture a dynamic fetch trace once,
//! replay it at memcpy speed forever.
//!
//! The CFG interpreter ([`crate::TraceGenerator`]) produces an identical
//! address stream every time it walks the same `(program, placement,
//! seed, limits)` key — re-walking it for every additional cache
//! configuration is pure waste once the run-batched representation
//! exists. A [`RunBuffer`] is that representation made storable: the
//! exact sequence of [`AccessSink::access_run`] calls a stream produced,
//! as a flat `Vec<(start, words)>` (16 bytes per straight-line stretch,
//! typically 10–15 dynamic instructions each).
//!
//! **Replay is equivalence-by-construction**: [`RunBuffer::replay`]
//! delivers the recorded runs in recorded order, so any sink observes
//! the *same call sequence* it would have observed riding the original
//! stream — not merely the same address stream. No coalescing, splitting
//! or normalization happens on either side of the buffer.
//!
//! Capture either standalone ([`RunBuffer::capture`]) or as a tee on a
//! live stream ([`CaptureSink`]) so the first simulation pass and the
//! recording share one interpreter walk.

use impact_cache::{AccessSink, WORD_BYTES};
use impact_profile::ExecSummary;

use crate::TraceGenerator;

/// A captured evaluation trace in run-batched form.
///
/// Feed it with any run producer (it implements [`AccessSink`] and
/// records exactly the calls it receives), then [`RunBuffer::replay`]
/// into simulation sinks as many times as needed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunBuffer {
    /// `(start address, words)` per recorded run, in stream order.
    runs: Vec<(u64, u64)>,
    /// Total words (= instructions) across all runs.
    instructions: u64,
}

impl RunBuffer {
    /// An empty buffer, ready to record.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Walks `gen` once under `input_seed`, recording the full run
    /// stream. Returns the buffer and the walk summary; the buffer
    /// covers exactly `summary.instructions` words.
    #[must_use]
    pub fn capture(gen: &TraceGenerator<'_>, input_seed: u64) -> (Self, ExecSummary) {
        let mut buf = Self::new();
        let summary = gen.stream(input_seed, &mut buf);
        (buf, summary)
    }

    /// Delivers the recorded run sequence to `sink`, exactly as
    /// recorded: same runs, same order, same boundaries.
    pub fn replay<S: AccessSink + ?Sized>(&self, sink: &mut S) {
        for &(addr, words) in &self.runs {
            sink.access_run(addr, words);
        }
    }

    /// The recorded runs, in stream order.
    #[must_use]
    pub fn runs(&self) -> &[(u64, u64)] {
        &self.runs
    }

    /// Number of recorded runs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total instructions (words) the buffer covers.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Heap bytes held by the recorded runs — what a session-level
    /// artifact budget should account for.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.runs.capacity() * std::mem::size_of::<(u64, u64)>()
    }

    /// Drops excess capacity (buffers are recorded once, then read-only).
    pub fn shrink_to_fit(&mut self) {
        self.runs.shrink_to_fit();
    }
}

impl AccessSink for RunBuffer {
    fn access(&mut self, addr: u64) {
        // A single-word call is recorded as a one-word run; sinks that
        // replay it observe `access_run(addr, 1)`, which every sink
        // treats identically to `access(addr)` (the `AccessSink`
        // contract — pinned by the run-equivalence property tests).
        self.access_run(addr, 1);
    }

    fn access_run(&mut self, addr: u64, words: u64) {
        debug_assert!(words > 0, "zero-length runs must never be emitted");
        self.runs.push((addr, words));
        self.instructions += words;
    }
}

/// Tee: forwards a live stream to `inner` while recording it into a
/// [`RunBuffer`], so capture costs no second interpreter walk.
///
/// ```
/// use impact_cache::{AccessSink, Cache, CacheConfig};
/// use impact_trace::{CaptureSink, RunBuffer};
///
/// let mut cache = Cache::new(CacheConfig::direct_mapped(2048, 64));
/// let mut buf = RunBuffer::new();
/// let mut tee = CaptureSink::new(&mut buf, &mut cache);
/// tee.access_run(0, 16); // ... the live stream drives the tee ...
/// assert_eq!(buf.runs(), &[(0, 16)]);
/// ```
#[derive(Debug)]
pub struct CaptureSink<'a, S> {
    buf: &'a mut RunBuffer,
    inner: &'a mut S,
}

impl<'a, S: AccessSink> CaptureSink<'a, S> {
    /// Wraps `inner`, recording everything it observes into `buf`.
    pub fn new(buf: &'a mut RunBuffer, inner: &'a mut S) -> Self {
        Self { buf, inner }
    }
}

impl<S: AccessSink> AccessSink for CaptureSink<'_, S> {
    fn access(&mut self, addr: u64) {
        self.buf.access(addr);
        self.inner.access(addr);
    }

    fn access_run(&mut self, addr: u64, words: u64) {
        self.buf.access_run(addr, words);
        self.inner.access_run(addr, words);
    }
}

/// Expands the buffer back to a per-word address iterator (tests and
/// word-granular consumers; simulation should [`RunBuffer::replay`]).
pub fn words(buf: &RunBuffer) -> impl Iterator<Item = u64> + '_ {
    buf.runs()
        .iter()
        .flat_map(|&(a, n)| (0..n).map(move |i| a + i * WORD_BYTES))
}

#[cfg(test)]
mod tests {
    use impact_layout::baseline;

    use super::*;

    fn program() -> impact_ir::Program {
        use impact_ir::{BranchBias, ProgramBuilder, Terminator};
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let a = f.block_n(3);
        let b = f.block_n(2);
        let c = f.block_n(1);
        f.terminate(a, Terminator::branch(a, b, BranchBias::fixed(0.7)));
        f.terminate(b, Terminator::branch(a, c, BranchBias::fixed(0.4)));
        f.terminate(c, Terminator::Exit);
        let id = f.finish();
        pb.set_entry(id);
        pb.finish().unwrap()
    }

    #[test]
    fn capture_covers_the_exact_word_trace() {
        let p = program();
        let placement = baseline::natural(&p);
        let gen = TraceGenerator::new(&p, &placement);
        let (buf, summary) = RunBuffer::capture(&gen, 11);
        assert_eq!(buf.instructions(), summary.instructions);
        let expanded: Vec<u64> = words(&buf).collect();
        assert_eq!(expanded, gen.collect(11));
    }

    #[test]
    fn replay_reproduces_the_recorded_call_sequence() {
        struct Runs(Vec<(u64, u64)>);
        impl AccessSink for Runs {
            fn access(&mut self, _addr: u64) {
                unreachable!("replay delivers whole runs");
            }
            fn access_run(&mut self, addr: u64, words: u64) {
                self.0.push((addr, words));
            }
        }
        let p = program();
        let placement = baseline::natural(&p);
        let gen = TraceGenerator::new(&p, &placement);
        let (buf, _) = RunBuffer::capture(&gen, 3);
        let mut sink = Runs(Vec::new());
        buf.replay(&mut sink);
        assert_eq!(sink.0, buf.runs());
        assert!(!buf.is_empty());
        assert_eq!(buf.len(), buf.runs().len());
    }

    #[test]
    fn tee_records_while_forwarding() {
        let p = program();
        let placement = baseline::natural(&p);
        let gen = TraceGenerator::new(&p, &placement);

        // Drive a cache through the tee; the buffer must equal a
        // standalone capture and the cache must equal a direct stream.
        let cfg = impact_cache::CacheConfig::direct_mapped(512, 32);
        let mut teed = impact_cache::Cache::new(cfg);
        let mut buf = RunBuffer::new();
        gen.stream(9, &mut CaptureSink::new(&mut buf, &mut teed));

        let (standalone, _) = RunBuffer::capture(&gen, 9);
        assert_eq!(buf, standalone);

        let mut direct = impact_cache::Cache::new(cfg);
        gen.stream(9, &mut direct);
        assert_eq!(teed.take_stats(), direct.take_stats());
        assert_eq!(teed.state_fingerprint(), direct.state_fingerprint());
    }

    #[test]
    fn single_word_accesses_become_one_word_runs() {
        let mut buf = RunBuffer::new();
        buf.access(8);
        buf.access_run(16, 4);
        assert_eq!(buf.runs(), &[(8, 1), (16, 4)]);
        assert_eq!(buf.instructions(), 5);
        assert!(buf.bytes() >= 2 * std::mem::size_of::<(u64, u64)>());
    }
}

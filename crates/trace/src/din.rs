//! Dinero ("din") trace-format interoperability.
//!
//! The din format is the lingua franca of the trace-driven-simulation
//! era (Dinero III/IV, the simulators behind Smith's studies): one access
//! per line, `<label> <hex address>`, where label `0` is a data read,
//! `1` a data write, and `2` an instruction fetch.
//!
//! [`write_din`] exports this crate's instruction traces so external
//! simulators can consume them; [`read_din`] streams instruction fetches
//! from a din trace into any address consumer, so externally captured
//! traces can drive `impact-cache`.

use std::io::{self, BufRead, Write};

/// Access labels of the din format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DinLabel {
    /// Data read (`0`).
    Read,
    /// Data write (`1`).
    Write,
    /// Instruction fetch (`2`).
    Fetch,
}

/// Writes one access in din format.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_record<W: Write>(out: &mut W, label: DinLabel, addr: u64) -> io::Result<()> {
    let l = match label {
        DinLabel::Read => 0,
        DinLabel::Write => 1,
        DinLabel::Fetch => 2,
    };
    writeln!(out, "{l} {addr:x}")
}

/// Streams the instruction-fetch trace of one execution into `out` in din
/// format. Returns the number of records written.
///
/// # Errors
///
/// Propagates I/O errors. (The walk itself cannot fail.)
pub fn write_din<W: Write>(
    gen: &crate::TraceGenerator<'_>,
    input_seed: u64,
    out: &mut W,
) -> io::Result<u64> {
    let mut err: Option<io::Error> = None;
    let mut written = 0u64;
    gen.run(input_seed, |addr| {
        if err.is_none() {
            match write_record(out, DinLabel::Fetch, addr) {
                Ok(()) => written += 1,
                Err(e) => err = Some(e),
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(written),
    }
}

/// A malformed din line.
#[derive(Debug)]
pub struct DinParseError {
    /// 1-based line number.
    pub line: usize,
    /// The offending text.
    pub text: String,
}

impl std::fmt::Display for DinParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "din line {}: malformed record {:?}",
            self.line, self.text
        )
    }
}

impl std::error::Error for DinParseError {}

/// Errors from [`read_din`].
#[derive(Debug)]
pub enum DinReadError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A line did not parse.
    Parse(DinParseError),
}

impl std::fmt::Display for DinReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DinReadError::Io(e) => write!(f, "din read: {e}"),
            DinReadError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DinReadError {}

/// Streams every *instruction fetch* (label 2) of a din trace into
/// `sink`; data references are skipped. Returns the number of fetches
/// delivered.
///
/// Convenience wrapper over [`read_din_runs`] for per-address callbacks;
/// simulation sinks should implement
/// [`AccessSink`](impact_cache::AccessSink) and use `read_din_runs` to
/// receive batched runs.
///
/// # Errors
///
/// Returns [`DinReadError`] on I/O failure or a malformed record. Blank
/// lines and `#` comments are tolerated (some tools emit them).
pub fn read_din<R: BufRead, F: FnMut(u64)>(reader: R, sink: F) -> Result<u64, DinReadError> {
    read_din_runs(reader, &mut impact_cache::FnSink(sink))
}

/// Streams every *instruction fetch* (label 2) of a din trace into
/// `sink`, coalescing word-sequential fetches into maximal runs — one
/// [`AccessSink::access_run`](impact_cache::AccessSink::access_run) per
/// sequential stretch. Data references are skipped and do **not** split
/// runs: the instruction-fetch sinks this crate feeds never observe
/// data records, so coalescing depends only on the fetch-address
/// sequence, and a load between two back-to-back fetches (ubiquitous in
/// real din traces) costs nothing in run compactness. Returns the
/// number of fetches delivered.
///
/// Lines are read into one reused buffer, so arbitrarily long traces
/// stream without per-line allocation.
///
/// # Errors
///
/// Returns [`DinReadError`] on I/O failure or a malformed record; any
/// run pending at the error point is flushed to `sink` first, so
/// delivered fetches are exactly the well-formed prefix.
pub fn read_din_runs<R: BufRead, S: impact_cache::AccessSink>(
    mut reader: R,
    sink: &mut S,
) -> Result<u64, DinReadError> {
    let mut fetches = 0u64;
    let mut run_start = 0u64;
    let mut run_words = 0u64;
    let mut line = String::new();
    let mut idx = 0usize;
    loop {
        line.clear();
        let eof = match reader.read_line(&mut line) {
            Ok(0) => true,
            Ok(_) => false,
            Err(e) => {
                flush_run(sink, run_start, run_words);
                return Err(DinReadError::Io(e));
            }
        };
        if eof {
            flush_run(sink, run_start, run_words);
            return Ok(fetches);
        }
        idx += 1;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let Some((label, addr)) = parse_record(text) else {
            flush_run(sink, run_start, run_words);
            return Err(DinReadError::Parse(DinParseError {
                line: idx,
                text: text.to_owned(),
            }));
        };
        if label == 2 {
            fetches += 1;
            if run_words > 0 && addr == run_start + run_words * impact_cache::WORD_BYTES {
                run_words += 1;
                continue;
            }
            flush_run(sink, run_start, run_words);
            run_start = addr;
            run_words = 1;
        }
        // Non-fetch records are skipped entirely — they must not break a
        // fetch run (the sink never sees them, so an intervening load
        // between sequential fetches leaves the fetch stream sequential).
    }
}

/// Parses one non-blank din record; `None` if malformed.
fn parse_record(text: &str) -> Option<(u8, u64)> {
    let mut parts = text.split_whitespace();
    let label: u8 = parts.next()?.parse().ok()?;
    let addr = u64::from_str_radix(parts.next()?.trim_start_matches("0x"), 16).ok()?;
    if label > 2 || parts.next().is_some() {
        return None;
    }
    Some((label, addr))
}

fn flush_run<S: impact_cache::AccessSink>(sink: &mut S, start: u64, words: u64) {
    if words > 0 {
        sink.access_run(start, words);
    }
}

#[cfg(test)]
mod tests {
    use impact_ir::{Instr, ProgramBuilder, Terminator};
    use impact_layout::baseline;

    use crate::TraceGenerator;

    use super::*;

    fn tiny_program() -> impact_ir::Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b = f.block(vec![Instr::IntAlu; 3]);
        f.terminate(b, Terminator::Exit);
        let id = f.finish();
        pb.set_entry(id);
        pb.finish().unwrap()
    }

    #[test]
    fn written_traces_read_back_identically() {
        let p = tiny_program();
        let placement = baseline::natural(&p);
        let gen = TraceGenerator::new(&p, &placement);
        let direct = gen.collect(7);

        let mut buf = Vec::new();
        let written = write_din(&gen, 7, &mut buf).unwrap();
        assert_eq!(written, direct.len() as u64);

        let mut read_back = Vec::new();
        let fetches = read_din(buf.as_slice(), |a| read_back.push(a)).unwrap();
        assert_eq!(fetches, written);
        assert_eq!(read_back, direct);
    }

    #[test]
    fn data_references_are_skipped() {
        let din = "0 1000\n1 1004\n2 0\n2 4\n";
        let mut addrs = Vec::new();
        let n = read_din(din.as_bytes(), |a| addrs.push(a)).unwrap();
        assert_eq!(n, 2);
        assert_eq!(addrs, vec![0, 4]);
    }

    #[test]
    fn comments_blanks_and_0x_prefixes_are_tolerated() {
        let din = "# header\n\n2 0x10\n";
        let mut addrs = Vec::new();
        read_din(din.as_bytes(), |a| addrs.push(a)).unwrap();
        assert_eq!(addrs, vec![0x10]);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let din = "2 10\nbogus line\n";
        let err = read_din(din.as_bytes(), |_| {}).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");

        let din = "3 10\n"; // label out of range
        assert!(read_din(din.as_bytes(), |_| {}).is_err());
        let din = "2 10 extra\n"; // trailing junk
        assert!(read_din(din.as_bytes(), |_| {}).is_err());
    }

    #[test]
    fn read_din_runs_coalesces_sequential_fetches() {
        struct Runs(Vec<(u64, u64)>);
        impl impact_cache::AccessSink for Runs {
            fn access(&mut self, _addr: u64) {
                unreachable!("runs only");
            }
            fn access_run(&mut self, addr: u64, words: u64) {
                self.0.push((addr, words));
            }
        }
        // Three sequential fetches, a jump, then a sequential pair with
        // an intervening data reference: the data record is invisible to
        // instruction sinks, so it must not break the run.
        let din = "2 0\n2 4\n2 8\n2 100\n2 104\n0 beef\n2 108\n";
        let mut runs = Runs(Vec::new());
        let n = read_din_runs(din.as_bytes(), &mut runs).unwrap();
        assert_eq!(n, 6);
        assert_eq!(runs.0, vec![(0, 3), (0x100, 3)]);
    }

    #[test]
    fn read_din_runs_never_emits_zero_length_runs() {
        struct Runs(Vec<(u64, u64)>);
        impl impact_cache::AccessSink for Runs {
            fn access(&mut self, _addr: u64) {
                unreachable!("runs only");
            }
            fn access_run(&mut self, addr: u64, words: u64) {
                assert!(words > 0, "zero-length run at {addr:#x}");
                self.0.push((addr, words));
            }
        }
        // Empty stretches everywhere a flush could fire: leading data
        // records, data-only bodies, trailing data records, and EOF with
        // nothing pending.
        for din in ["", "0 10\n1 14\n", "0 10\n2 0\n0 14\n1 18\n", "# only\n\n"] {
            let mut runs = Runs(Vec::new());
            read_din_runs(din.as_bytes(), &mut runs).unwrap();
            let fetches: u64 = runs.0.iter().map(|&(_, n)| n).sum();
            assert_eq!(
                fetches,
                din.lines().filter(|l| l.starts_with('2')).count() as u64
            );
        }
        // ... and ahead of a parse error with an empty pending run.
        let mut runs = Runs(Vec::new());
        assert!(read_din_runs("0 10\nbogus\n".as_bytes(), &mut runs).is_err());
        assert!(runs.0.is_empty());
    }

    #[test]
    fn read_din_runs_split_invariance_under_data_interleaving() {
        // The same fetch sequence, bare vs. interleaved with data
        // records after every fetch, must produce identical runs.
        let fetches = [0u64, 4, 8, 0x40, 0x44, 0x48, 0x4c, 8, 0xc];
        let bare: String = fetches.iter().map(|a| format!("2 {a:x}\n")).collect();
        let interleaved: String = fetches
            .iter()
            .map(|a| format!("2 {a:x}\n0 {:x}\n1 {:x}\n", a + 0x1000, a + 0x2000))
            .collect();
        struct Runs(Vec<(u64, u64)>);
        impl impact_cache::AccessSink for Runs {
            fn access(&mut self, _addr: u64) {
                unreachable!("runs only");
            }
            fn access_run(&mut self, addr: u64, words: u64) {
                self.0.push((addr, words));
            }
        }
        let mut a = Runs(Vec::new());
        let mut b = Runs(Vec::new());
        read_din_runs(bare.as_bytes(), &mut a).unwrap();
        read_din_runs(interleaved.as_bytes(), &mut b).unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.0, vec![(0, 3), (0x40, 4), (8, 2)]);
    }

    #[test]
    fn read_din_runs_flushes_prefix_before_error() {
        struct Count(u64);
        impl impact_cache::AccessSink for Count {
            fn access(&mut self, _addr: u64) {
                self.0 += 1;
            }
        }
        let din = "2 0\n2 4\nbogus\n2 8\n";
        let mut sink = Count(0);
        let err = read_din_runs(din.as_bytes(), &mut sink).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        assert_eq!(sink.0, 2, "well-formed prefix must be delivered");
    }

    #[test]
    fn record_format_matches_dinero() {
        let mut buf = Vec::new();
        write_record(&mut buf, DinLabel::Fetch, 0x1a4).unwrap();
        write_record(&mut buf, DinLabel::Read, 16).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "2 1a4\n0 10\n");
    }
}

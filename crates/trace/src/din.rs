//! Dinero ("din") trace-format interoperability.
//!
//! The din format is the lingua franca of the trace-driven-simulation
//! era (Dinero III/IV, the simulators behind Smith's studies): one access
//! per line, `<label> <hex address>`, where label `0` is a data read,
//! `1` a data write, and `2` an instruction fetch.
//!
//! [`write_din`] exports this crate's instruction traces so external
//! simulators can consume them; [`read_din`] streams instruction fetches
//! from a din trace into any address consumer, so externally captured
//! traces can drive `impact-cache`.

use std::io::{self, BufRead, Write};

/// Access labels of the din format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DinLabel {
    /// Data read (`0`).
    Read,
    /// Data write (`1`).
    Write,
    /// Instruction fetch (`2`).
    Fetch,
}

/// Writes one access in din format.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_record<W: Write>(out: &mut W, label: DinLabel, addr: u64) -> io::Result<()> {
    let l = match label {
        DinLabel::Read => 0,
        DinLabel::Write => 1,
        DinLabel::Fetch => 2,
    };
    writeln!(out, "{l} {addr:x}")
}

/// Streams the instruction-fetch trace of one execution into `out` in din
/// format. Returns the number of records written.
///
/// # Errors
///
/// Propagates I/O errors. (The walk itself cannot fail.)
pub fn write_din<W: Write>(
    gen: &crate::TraceGenerator<'_>,
    input_seed: u64,
    out: &mut W,
) -> io::Result<u64> {
    let mut err: Option<io::Error> = None;
    let mut written = 0u64;
    gen.run(input_seed, |addr| {
        if err.is_none() {
            match write_record(out, DinLabel::Fetch, addr) {
                Ok(()) => written += 1,
                Err(e) => err = Some(e),
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(written),
    }
}

/// A malformed din line.
#[derive(Debug)]
pub struct DinParseError {
    /// 1-based line number.
    pub line: usize,
    /// The offending text.
    pub text: String,
}

impl std::fmt::Display for DinParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "din line {}: malformed record {:?}",
            self.line, self.text
        )
    }
}

impl std::error::Error for DinParseError {}

/// Errors from [`read_din`].
#[derive(Debug)]
pub enum DinReadError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A line did not parse.
    Parse(DinParseError),
}

impl std::fmt::Display for DinReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DinReadError::Io(e) => write!(f, "din read: {e}"),
            DinReadError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DinReadError {}

/// Streams every *instruction fetch* (label 2) of a din trace into
/// `sink`; data references are skipped. Returns the number of fetches
/// delivered.
///
/// # Errors
///
/// Returns [`DinReadError`] on I/O failure or a malformed record. Blank
/// lines and `#` comments are tolerated (some tools emit them).
pub fn read_din<R: BufRead, F: FnMut(u64)>(reader: R, mut sink: F) -> Result<u64, DinReadError> {
    let mut fetches = 0u64;
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(DinReadError::Io)?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let malformed = || {
            DinReadError::Parse(DinParseError {
                line: idx + 1,
                text: text.to_owned(),
            })
        };
        let mut parts = text.split_whitespace();
        let label: u8 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(malformed)?;
        let addr = parts
            .next()
            .and_then(|t| u64::from_str_radix(t.trim_start_matches("0x"), 16).ok())
            .ok_or_else(malformed)?;
        if label > 2 || parts.next().is_some() {
            return Err(malformed());
        }
        if label == 2 {
            sink(addr);
            fetches += 1;
        }
    }
    Ok(fetches)
}

#[cfg(test)]
mod tests {
    use impact_ir::{Instr, ProgramBuilder, Terminator};
    use impact_layout::baseline;

    use crate::TraceGenerator;

    use super::*;

    fn tiny_program() -> impact_ir::Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b = f.block(vec![Instr::IntAlu; 3]);
        f.terminate(b, Terminator::Exit);
        let id = f.finish();
        pb.set_entry(id);
        pb.finish().unwrap()
    }

    #[test]
    fn written_traces_read_back_identically() {
        let p = tiny_program();
        let placement = baseline::natural(&p);
        let gen = TraceGenerator::new(&p, &placement);
        let direct = gen.collect(7);

        let mut buf = Vec::new();
        let written = write_din(&gen, 7, &mut buf).unwrap();
        assert_eq!(written, direct.len() as u64);

        let mut read_back = Vec::new();
        let fetches = read_din(buf.as_slice(), |a| read_back.push(a)).unwrap();
        assert_eq!(fetches, written);
        assert_eq!(read_back, direct);
    }

    #[test]
    fn data_references_are_skipped() {
        let din = "0 1000\n1 1004\n2 0\n2 4\n";
        let mut addrs = Vec::new();
        let n = read_din(din.as_bytes(), |a| addrs.push(a)).unwrap();
        assert_eq!(n, 2);
        assert_eq!(addrs, vec![0, 4]);
    }

    #[test]
    fn comments_blanks_and_0x_prefixes_are_tolerated() {
        let din = "# header\n\n2 0x10\n";
        let mut addrs = Vec::new();
        read_din(din.as_bytes(), |a| addrs.push(a)).unwrap();
        assert_eq!(addrs, vec![0x10]);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let din = "2 10\nbogus line\n";
        let err = read_din(din.as_bytes(), |_| {}).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");

        let din = "3 10\n"; // label out of range
        assert!(read_din(din.as_bytes(), |_| {}).is_err());
        let din = "2 10 extra\n"; // trailing junk
        assert!(read_din(din.as_bytes(), |_| {}).is_err());
    }

    #[test]
    fn record_format_matches_dinero() {
        let mut buf = Vec::new();
        write_record(&mut buf, DinLabel::Fetch, 0x1a4).unwrap();
        write_record(&mut buf, DinLabel::Read, 16).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "2 1a4\n0 10\n");
    }
}

//! Property tests pinning artifact replay to direct streaming.
//!
//! A [`RunBuffer`] records the exact `access_run` call sequence a
//! [`TraceGenerator`] walk produced; replaying it must therefore leave
//! every simulation sink in *exactly* the state a direct stream would —
//! identical [`CacheStats`] and identical internal cache state (tags,
//! valid bitmaps, recency stamps) — for every cache organization the
//! paper evaluates. Real workload CFGs (loops, calls, biased branches)
//! drive the walk, and the capture tee is checked against the
//! standalone capture so both recording paths agree.

use impact_cache::{
    Associativity, Cache, CacheConfig, CacheStats, FillPolicy, MultiLane, Replacement,
};
use impact_profile::ExecLimits;
use impact_support::check;
use impact_support::rng::Rng;
use impact_trace::{CaptureSink, RunBuffer, TraceGenerator};

const LIMITS: ExecLimits = ExecLimits {
    max_instructions: 30_000,
    max_call_depth: 512,
};

/// Every (fill × associativity × replacement) combination at the paper's
/// 1 KB / 64 B geometry.
fn config_grid() -> Vec<CacheConfig> {
    let fills = [
        FillPolicy::FullBlock,
        FillPolicy::Sectored { sector_bytes: 8 },
        FillPolicy::Sectored { sector_bytes: 32 },
        FillPolicy::Partial,
    ];
    let assocs = [
        Associativity::Direct,
        Associativity::Ways(2),
        Associativity::Ways(4),
        Associativity::Full,
    ];
    let repls = [Replacement::Lru, Replacement::Fifo, Replacement::Random];
    let mut grid = Vec::new();
    for fill in fills {
        for assoc in assocs {
            for repl in repls {
                grid.push(
                    CacheConfig::direct_mapped(1024, 64)
                        .with_associativity(assoc)
                        .with_fill(fill)
                        .with_replacement(repl),
                );
            }
        }
    }
    grid
}

/// A random `(workload, input seed)` pair: varied CFG shapes × varied
/// dynamic paths.
fn gen_case(rng: &mut Rng) -> (impact_workloads::Workload, u64) {
    let all = impact_workloads::all();
    let w = all[rng.gen_below(all.len() as u64) as usize].clone();
    (w, rng.gen_below(u64::MAX))
}

#[test]
fn artifact_replay_is_bit_identical_to_direct_streaming() {
    let grid = config_grid();
    check::forall(24, gen_case, |(w, seed)| {
        let placement = impact_layout::baseline::natural(&w.program);
        let gen = TraceGenerator::new(&w.program, &placement).with_limits(LIMITS);
        let (buf, summary) = RunBuffer::capture(&gen, *seed);
        assert_eq!(buf.instructions(), summary.instructions);
        for &config in &grid {
            let mut direct = Cache::new(config);
            gen.stream(*seed, &mut direct);
            let mut replayed = Cache::new(config);
            buf.replay(&mut replayed);
            assert_eq!(
                replayed.state_fingerprint(),
                direct.state_fingerprint(),
                "cache state diverged for {config:?}"
            );
            assert_eq!(
                replayed.take_stats(),
                direct.take_stats(),
                "stats diverged for {config:?}"
            );
        }
    });
}

#[test]
fn capture_tee_agrees_with_standalone_capture_and_forwards_faithfully() {
    check::forall(24, gen_case, |(w, seed)| {
        let placement = impact_layout::baseline::natural(&w.program);
        let gen = TraceGenerator::new(&w.program, &placement).with_limits(LIMITS);

        let config = CacheConfig::direct_mapped(2048, 64);
        let mut teed = Cache::new(config);
        let mut buf = RunBuffer::new();
        gen.stream(*seed, &mut CaptureSink::new(&mut buf, &mut teed));

        let (standalone, _) = RunBuffer::capture(&gen, *seed);
        assert_eq!(buf, standalone, "tee and standalone capture diverged");

        let mut direct = Cache::new(config);
        gen.stream(*seed, &mut direct);
        assert_eq!(teed.state_fingerprint(), direct.state_fingerprint());
        assert_eq!(teed.take_stats(), direct.take_stats());
    });
}

#[test]
fn one_replay_drives_a_whole_lane_bank_exactly() {
    // The session's actual fast path: replay once into a MultiLane and
    // match N direct single-config streams.
    let grid = config_grid();
    check::forall(8, gen_case, |(w, seed)| {
        let placement = impact_layout::baseline::natural(&w.program);
        let gen = TraceGenerator::new(&w.program, &placement).with_limits(LIMITS);
        let (buf, _) = RunBuffer::capture(&gen, *seed);

        let mut lanes = MultiLane::new(grid.iter().copied());
        buf.replay(&mut lanes);

        let direct: Vec<CacheStats> = grid
            .iter()
            .map(|&config| {
                let mut cache = Cache::new(config);
                gen.stream(*seed, &mut cache);
                cache.take_stats()
            })
            .collect();
        assert_eq!(lanes.take_stats(), direct);
    });
}

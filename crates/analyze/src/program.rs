//! Program-level lints: structure, reachability, and profile
//! consistency (`IPA001`–`IPA005`).

use std::collections::BTreeMap;

use impact_ir::{FuncId, Program, Terminator, ValidateError};

use crate::diag::{Diagnostic, Location};
use crate::pass::{Context, Pass};

/// `IPA001` — blocks no path from the function entry can reach.
///
/// Unreachable code is never placed on a trace and inflates the
/// non-executed region; in a generated program it usually means the
/// builder wired a terminator to the wrong block.
pub struct UnreachableBlocks;

impl Pass for UnreachableBlocks {
    fn code(&self) -> &'static str {
        "IPA001"
    }

    fn name(&self) -> &'static str {
        "unreachable-blocks"
    }

    fn description(&self) -> &'static str {
        "blocks unreachable from their function's entry"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (_, func) in ctx.program.functions() {
            let mut seen = vec![false; func.block_count()];
            let mut stack = vec![func.entry()];
            seen[func.entry().index()] = true;
            while let Some(b) = stack.pop() {
                for succ in func.block(b).terminator().successors() {
                    if !seen[succ.index()] {
                        seen[succ.index()] = true;
                        stack.push(succ);
                    }
                }
            }
            for (bid, _) in func.blocks() {
                if !seen[bid.index()] {
                    out.push(Diagnostic::warning(
                        self.code(),
                        Location::block(func.name(), bid.index()),
                        format!(
                            "block {bid} of {:?} is unreachable from the function entry",
                            func.name()
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// `IPA002` — Kirchhoff-style flow conservation of the profile.
///
/// For every block, the weighted incoming arcs (plus invocations, for the
/// function entry) must account for the block's execution count. A
/// truncated profiling run may strand up to one unit of flow, so when the
/// profile is marked truncated the check allows `runs` units of slack on
/// the incoming side; counts exceeding incoming flow are always an error.
pub struct FlowConservation;

impl Pass for FlowConservation {
    fn code(&self) -> &'static str {
        "IPA002"
    }

    fn name(&self) -> &'static str {
        "flow-conservation"
    }

    fn description(&self) -> &'static str {
        "block counts must match incoming profile flow"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let Some(profile) = ctx.profile else {
            return Vec::new();
        };
        let mut out = Vec::new();
        // Each truncated run can leave one transfer recorded whose
        // destination block was never entered.
        let slack = if profile.totals.truncated {
            u64::from(profile.runs)
        } else {
            0
        };
        for (fid, func) in ctx.program.functions() {
            if fid.index() >= profile.funcs.len() {
                out.push(Diagnostic::error(
                    self.code(),
                    Location::function(func.name()),
                    format!("profile has no data for function {:?}", func.name()),
                ));
                continue;
            }
            let fp = profile.function(fid);
            let mut incoming: BTreeMap<usize, u64> = BTreeMap::new();
            for (&(_, to), &w) in &fp.arcs {
                *incoming.entry(to.index()).or_insert(0) += w;
            }
            *incoming.entry(func.entry().index()).or_insert(0) += fp.invocations;
            for (bid, _) in func.blocks() {
                let count = fp.block_counts[bid.index()];
                let inflow = incoming.get(&bid.index()).copied().unwrap_or(0);
                if count > inflow || inflow - count > slack {
                    out.push(Diagnostic::error(
                        self.code(),
                        Location::block(func.name(), bid.index()),
                        format!(
                            "flow imbalance at {}/{bid}: executed {count} times but \
                             incoming flow is {inflow} (slack {slack})",
                            func.name()
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// `IPA003` — outgoing branch mass must match the block count.
///
/// Every execution of a jump/branch/switch block records exactly one
/// outgoing arc, so the arc mass leaving such a block must equal its
/// execution count (dynamic branch probabilities summing to 1). Call
/// blocks only bound the mass from above: a call whose callee exits the
/// program records no continuation arc.
pub struct BranchMass;

impl Pass for BranchMass {
    fn code(&self) -> &'static str {
        "IPA003"
    }

    fn name(&self) -> &'static str {
        "branch-mass"
    }

    fn description(&self) -> &'static str {
        "outgoing arc mass must equal block execution count"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let Some(profile) = ctx.profile else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (fid, func) in ctx.program.functions() {
            if fid.index() >= profile.funcs.len() {
                continue; // IPA002 reports the shape mismatch.
            }
            let fp = profile.function(fid);
            let mut outgoing: BTreeMap<usize, u64> = BTreeMap::new();
            for (&(from, _), &w) in &fp.arcs {
                *outgoing.entry(from.index()).or_insert(0) += w;
            }
            for (bid, block) in func.blocks() {
                let count = fp.block_counts[bid.index()];
                let mass = outgoing.get(&bid.index()).copied().unwrap_or(0);
                let diag = |msg: String| {
                    Diagnostic::error(self.code(), Location::block(func.name(), bid.index()), msg)
                };
                match block.terminator() {
                    Terminator::Jump { .. }
                    | Terminator::Branch { .. }
                    | Terminator::Switch { .. } => {
                        if mass != count {
                            out.push(diag(format!(
                                "branch mass of {}/{bid} is {mass} but the block \
                                 executed {count} times",
                                func.name()
                            )));
                        }
                    }
                    Terminator::Call { .. } => {
                        if mass > count {
                            out.push(diag(format!(
                                "call continuation mass of {}/{bid} is {mass}, more than \
                                 its {count} executions",
                                func.name()
                            )));
                        }
                    }
                    Terminator::Return | Terminator::Exit => {
                        if mass != 0 {
                            out.push(diag(format!(
                                "exit block {}/{bid} has outgoing intra-function mass {mass}",
                                func.name()
                            )));
                        }
                    }
                }
            }
        }
        out
    }
}

/// `IPA004` — bridge from [`Program::validate`] to diagnostics.
///
/// Programs built through `ProgramBuilder` are validated on construction,
/// so this pass fires only on artifacts that bypassed the builder (hand
/// -assembled or transformed programs); it exists so a lint run surfaces
/// structural breakage — dangling callees, out-of-range targets — with
/// the same reporting machinery as everything else.
pub struct StructuralValidation;

impl StructuralValidation {
    /// Converts one validation error into its `IPA004` diagnostic.
    #[must_use]
    pub fn diagnostic_of(program: &Program, err: &ValidateError) -> Diagnostic {
        let location = match err {
            ValidateError::UndefinedFunction { func, .. }
            | ValidateError::EmptyFunctionName { func }
            | ValidateError::EmptyFunction { func }
            | ValidateError::BadEntryBlock { func, .. } => func_location(program, *func),
            ValidateError::DanglingBlockTarget { func, block, .. }
            | ValidateError::DanglingCallee { func, block, .. }
            | ValidateError::UnselectableSwitch { func, block } => {
                match func_name(program, *func) {
                    Some(name) => Location::block(name, block.index()),
                    None => Location::program(),
                }
            }
            ValidateError::DuplicateFunctionName { .. }
            | ValidateError::EmptyProgram
            | ValidateError::NoEntryFunction
            | ValidateError::BadEntryFunction { .. } => Location::program(),
            _ => Location::program(),
        };
        Diagnostic::error("IPA004", location, err.to_string())
    }
}

impl Pass for StructuralValidation {
    fn code(&self) -> &'static str {
        "IPA004"
    }

    fn name(&self) -> &'static str {
        "structural-validation"
    }

    fn description(&self) -> &'static str {
        "program passes structural validation (dangling callees, bad targets)"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        match ctx.program.validate() {
            Ok(()) => Vec::new(),
            Err(e) => vec![Self::diagnostic_of(ctx.program, &e)],
        }
    }
}

/// `IPA005` — functions on call-graph cycles.
///
/// The inliner skips recursive functions (§3.2's inline expansion only
/// handles non-recursive call sites), so recursion caps how much call
/// overhead Step 2 can remove. Reported as a warning: recursion is legal,
/// just worth knowing about when inlining numbers look poor.
pub struct RecursionCycles;

impl Pass for RecursionCycles {
    fn code(&self) -> &'static str {
        "IPA005"
    }

    fn name(&self) -> &'static str {
        "recursion-cycles"
    }

    fn description(&self) -> &'static str {
        "functions on call-graph cycles (ineligible for inlining)"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let cg = ctx.program.call_graph();
        let mut out = Vec::new();
        for (fid, func) in ctx.program.functions() {
            if cg.is_recursive(fid) {
                let weight = ctx.profile.map(|p| p.func_weight(fid));
                let hint = match weight {
                    Some(w) => format!(" (invoked {w} times in the profile)"),
                    None => String::new(),
                };
                out.push(Diagnostic::warning(
                    self.code(),
                    Location::function(func.name()),
                    format!(
                        "function {:?} is on a call-graph cycle and cannot be inlined{hint}",
                        func.name()
                    ),
                ));
            }
        }
        out
    }
}

/// Function-scoped location, falling back to program scope when the id
/// is out of range (possible precisely because the program is invalid).
fn func_location(program: &Program, fid: FuncId) -> Location {
    match func_name(program, fid) {
        Some(name) => Location::function(name),
        None => Location::program(),
    }
}

fn func_name(program: &Program, fid: FuncId) -> Option<String> {
    (fid.index() < program.function_count()).then(|| program.function(fid).name().to_string())
}

#[cfg(test)]
mod tests {
    use impact_ir::{BlockId, BranchBias, ProgramBuilder, Terminator};
    use impact_profile::Profiler;

    use super::*;

    /// main loops, calling a helper; one block is unreachable.
    fn program_with_unreachable() -> Program {
        let mut pb = ProgramBuilder::new();
        let helper = pb.reserve("helper");
        let mut main = pb.function("main");
        let m0 = main.block_n(1);
        let m1 = main.block_n(2);
        let m2 = main.block_n(0);
        let orphan = main.block_n(3);
        main.terminate(m0, Terminator::call(helper, m1));
        main.terminate(m1, Terminator::branch(m0, m2, BranchBias::fixed(0.7)));
        main.terminate(m2, Terminator::Exit);
        main.terminate(orphan, Terminator::jump(m2));
        let mid = main.finish();
        let mut h = pb.function_reserved(helper);
        let h0 = h.block_n(2);
        h.terminate(h0, Terminator::Return);
        h.finish();
        pb.set_entry(mid);
        pb.finish().unwrap()
    }

    #[test]
    fn unreachable_block_is_reported() {
        let p = program_with_unreachable();
        let ctx = Context::program_only(&p);
        let diags = UnreachableBlocks.run(&ctx);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "IPA001");
        assert_eq!(diags[0].location.block, Some(3));
    }

    #[test]
    fn clean_profile_conserves_flow() {
        let p = program_with_unreachable();
        let prof = Profiler::new().runs(4).profile(&p);
        let ctx = Context::program_only(&p).with_profile(&prof);
        assert!(FlowConservation.run(&ctx).is_empty());
        assert!(BranchMass.run(&ctx).is_empty());
    }

    #[test]
    fn corrupted_block_count_breaks_conservation() {
        let p = program_with_unreachable();
        let mut prof = Profiler::new().runs(4).profile(&p);
        prof.funcs[p.entry().index()].block_counts[1] += 5;
        let ctx = Context::program_only(&p).with_profile(&prof);
        let diags = FlowConservation.run(&ctx);
        assert!(diags
            .iter()
            .any(|d| d.code == "IPA002" && d.location.block == Some(1)));
    }

    #[test]
    fn corrupted_arc_breaks_branch_mass() {
        let p = program_with_unreachable();
        let mut prof = Profiler::new().runs(4).profile(&p);
        // Inflate the loop back-edge (m1 -> m0): mass now exceeds count.
        *prof.funcs[p.entry().index()]
            .arcs
            .get_mut(&(BlockId::new(1), BlockId::new(0)))
            .expect("back-edge was profiled") += 7;
        let ctx = Context::program_only(&p).with_profile(&prof);
        let diags = BranchMass.run(&ctx);
        assert!(diags
            .iter()
            .any(|d| d.code == "IPA003" && d.location.block == Some(1)));
    }

    #[test]
    fn validate_error_bridges_to_ipa004() {
        let p = program_with_unreachable();
        let err = ValidateError::DanglingCallee {
            func: p.entry(),
            block: BlockId::new(0),
            callee: FuncId::new(99),
        };
        let d = StructuralValidation::diagnostic_of(&p, &err);
        assert_eq!(d.code, "IPA004");
        assert_eq!(d.location.function.as_deref(), Some("main"));
        assert_eq!(d.location.block, Some(0));
        assert!(d.message.contains("99"));
        // And a valid program yields nothing at all.
        assert!(StructuralValidation
            .run(&Context::program_only(&p))
            .is_empty());
    }

    #[test]
    fn recursive_function_is_flagged() {
        let mut pb = ProgramBuilder::new();
        let rec = pb.reserve("rec");
        let mut main = pb.function("main");
        let m0 = main.block_n(1);
        let m1 = main.block_n(0);
        main.terminate(m0, Terminator::call(rec, m1));
        main.terminate(m1, Terminator::Exit);
        let mid = main.finish();
        let mut r = pb.function_reserved(rec);
        let r0 = r.block_n(1);
        let r1 = r.block_n(1);
        let r2 = r.block_n(0);
        r.terminate(r0, Terminator::branch(r1, r2, BranchBias::fixed(0.3)));
        r.terminate(r1, Terminator::call(rec, r2));
        r.terminate(r2, Terminator::Return);
        r.finish();
        pb.set_entry(mid);
        let p = pb.finish().unwrap();

        let diags = RecursionCycles.run(&Context::program_only(&p));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "IPA005");
        assert_eq!(diags[0].location.function.as_deref(), Some("rec"));
    }
}

//! Diagnostics: what an analysis found, where, and how bad it is.

use std::fmt;

use impact_support::json::Json;
use impact_support::ToJson;

/// How serious a diagnostic is.
///
/// The contract the rest of the tooling relies on: a clean pipeline run
/// over a well-formed program produces **zero errors**. Warnings flag
/// quality or performance hazards (broken traces, cache conflict
/// pressure, recursion that blocks inlining) that can legitimately occur.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A hazard worth looking at; does not fail `impact lint`.
    Warning,
    /// A broken invariant; fails `impact lint`.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Where in the pipeline artifacts a diagnostic points.
///
/// All fields are optional: a program-wide finding has none, a
/// function-level finding names the function, a block-level finding adds
/// the block, and trace findings add the trace index within the function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Location {
    /// Function name, when the finding is scoped to one function.
    pub function: Option<String>,
    /// Block index within the function.
    pub block: Option<usize>,
    /// Trace index within the function's trace assignment.
    pub trace: Option<usize>,
}

impl Location {
    /// A program-wide location (no anchor).
    #[must_use]
    pub fn program() -> Self {
        Self::default()
    }

    /// A location naming just a function.
    #[must_use]
    pub fn function(name: impl Into<String>) -> Self {
        Self {
            function: Some(name.into()),
            ..Self::default()
        }
    }

    /// A location naming a block within a function.
    #[must_use]
    pub fn block(name: impl Into<String>, block: usize) -> Self {
        Self {
            function: Some(name.into()),
            block: Some(block),
            ..Self::default()
        }
    }

    /// A location naming a trace within a function.
    #[must_use]
    pub fn trace(name: impl Into<String>, trace: usize) -> Self {
        Self {
            function: Some(name.into()),
            trace: Some(trace),
            ..Self::default()
        }
    }
}

impl fmt::Display for Location {
    /// `<program>`, `func`, `func/b3`, or `func/trace2`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, self.block, self.trace) {
            (None, _, _) => write!(f, "<program>"),
            (Some(name), Some(b), _) => write!(f, "{name}/b{b}"),
            (Some(name), None, Some(t)) => write!(f, "{name}/trace{t}"),
            (Some(name), None, None) => write!(f, "{name}"),
        }
    }
}

/// One finding from one analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code identifying the analysis (e.g. `IPA001`). Codes are
    /// append-only: a code is never reused for a different check.
    pub code: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// Human-readable explanation, self-contained (repeats the location).
    pub message: String,
    /// Anchor in the pipeline artifacts.
    pub location: Location,
}

impl Diagnostic {
    /// An error diagnostic.
    #[must_use]
    pub fn error(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: Severity::Error,
            message: message.into(),
            location,
        }
    }

    /// A warning diagnostic.
    #[must_use]
    pub fn warning(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: Severity::Warning,
            message: message.into(),
            location,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

impl ToJson for Diagnostic {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("code".to_string(), self.code.to_json()),
            ("severity".to_string(), self.severity.to_string().to_json()),
            ("message".to_string(), self.message.to_json()),
            ("function".to_string(), self.location.function.to_json()),
            ("block".to_string(), self.location.block.to_json()),
            ("trace".to_string(), self.location.trace.to_json()),
        ])
    }
}

/// The collected output of a lint run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// All diagnostics, in pass-registration then discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Number of error-severity diagnostics.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// `true` when no *errors* were found (warnings allowed).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Diagnostics carrying a given code.
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Renders the report as human-readable text, one diagnostic per
    /// line, followed by a summary line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.error_count(),
            self.warning_count()
        ));
        out
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("errors".to_string(), self.error_count().to_json()),
            ("warnings".to_string(), self.warning_count().to_json()),
            ("diagnostics".to_string(), self.diagnostics.to_json()),
        ])
    }
}

impl Report {
    /// The `{"target": ..., "report": ...}` object both `impact lint
    /// --json` (one per target, collected into an array) and the
    /// `impact serve` `/v1/lint` endpoint emit — one implementation so
    /// the two surfaces stay byte-for-byte identical.
    #[must_use]
    pub fn to_json_for_target(&self, target: &str) -> Json {
        Json::Obj(vec![
            ("target".to_string(), target.to_json()),
            ("report".to_string(), self.to_json()),
        ])
    }
}

/// The JSON document `impact lint --json` prints: an array with one
/// [`Report::to_json_for_target`] entry per linted target.
#[must_use]
pub fn reports_to_json<'a>(reports: impl IntoIterator<Item = (&'a str, &'a Report)>) -> Json {
    Json::Arr(
        reports
            .into_iter()
            .map(|(target, report)| report.to_json_for_target(target))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let d = Diagnostic::error("IPA102", Location::block("main", 3), "blocks overlap");
        assert_eq!(d.to_string(), "error[IPA102] main/b3: blocks overlap");
        let w = Diagnostic::warning("IPA105", Location::trace("work", 2), "trace broken");
        assert_eq!(w.to_string(), "warning[IPA105] work/trace2: trace broken");
        assert_eq!(Location::program().to_string(), "<program>");
        assert_eq!(Location::function("f").to_string(), "f");
    }

    #[test]
    fn report_counts_and_cleanliness() {
        let mut r = Report::default();
        assert!(r.is_clean());
        r.diagnostics.push(Diagnostic::warning(
            "IPA201",
            Location::program(),
            "hot set",
        ));
        assert!(r.is_clean());
        assert_eq!(r.warning_count(), 1);
        r.diagnostics
            .push(Diagnostic::error("IPA101", Location::program(), "unplaced"));
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.with_code("IPA101").count(), 1);
    }

    #[test]
    fn targeted_json_wraps_the_report() {
        let mut r = Report::default();
        r.diagnostics
            .push(Diagnostic::warning("IPA201", Location::program(), "hot"));
        let row = r.to_json_for_target("wc").to_string();
        assert!(row.starts_with(r#"{"target":"wc","report":"#), "{row}");
        let arr = reports_to_json([("wc", &r), ("grep", &r)]).to_string();
        assert!(arr.contains(r#""target":"grep""#), "{arr}");
        assert!(arr.starts_with('['), "{arr}");
    }

    #[test]
    fn json_shape_matches_schema() {
        let mut r = Report::default();
        r.diagnostics.push(Diagnostic::error(
            "IPA104",
            Location::block("f", 1),
            "misaligned",
        ));
        let json = r.to_json().to_string();
        assert!(json.contains("\"errors\":1"));
        assert!(json.contains("\"code\":\"IPA104\""));
        assert!(json.contains("\"block\":1"));
        assert!(json.contains("\"trace\":null"));
    }
}

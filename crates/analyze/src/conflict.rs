//! Static cache-conflict prediction (`IPA301`–`IPA303`): loop footprints
//! vs. cache geometry, interference between concurrently-hot loop
//! bodies, and an estimated miss-ratio bound — all without simulation.
//!
//! These passes complement `IPA201` ([`crate::cache::ConflictPressure`]):
//! where IPA201 asks "which *lines* are hot and colliding" from measured
//! weights, the IPA3xx family reasons about *loops* as the unit of
//! locality, the way the paper reasons about why layout works at all
//! ("the dynamic behavior of a program tends to stay in small regions").
//!
//! * `IPA301` — a single loop body bigger than the cache capacity misses
//!   no matter how it is placed.
//! * `IPA302` — two loop bodies that run *concurrently* (one loop's body
//!   calls into a function whose loops therefore iterate inside it) and
//!   would fit in the cache together, yet are placed on overlapping
//!   sets: the placement manufactures conflict misses that a different
//!   coloring would avoid.
//! * `IPA303` — an analytic upper bound on the miss ratio of a placement
//!   under a profile (cold misses + per-set contention), warned about
//!   when it crosses [`ConflictConfig::miss_bound_warn`].

use std::collections::{BTreeMap, BTreeSet};

use impact_ir::{FuncId, Program, Terminator};
use impact_layout::placement::Placement;
use impact_profile::Profile;

use crate::cache::ConflictConfig;
use crate::diag::{Diagnostic, Location};
use crate::flow::{Dominators, LoopForest, NaturalLoop};
use crate::pass::{Context, Pass};

/// `IPA301` — a loop body whose static footprint exceeds the cache.
///
/// Such a loop self-evicts every iteration regardless of placement; the
/// only remedies are restructuring or a bigger cache, so this is a
/// program-level finding (it needs no placement or profile).
pub struct LoopFootprint;

impl Pass for LoopFootprint {
    fn code(&self) -> &'static str {
        "IPA301"
    }

    fn name(&self) -> &'static str {
        "loop-footprint"
    }

    fn description(&self) -> &'static str {
        "loop bodies whose code footprint exceeds the cache capacity"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let cfg = ctx.conflict;
        if cfg.line_bytes == 0 || cfg.cache_bytes < cfg.line_bytes {
            return Vec::new(); // IPA201 already reports the bad geometry.
        }
        let mut out = Vec::new();
        for (_, func) in ctx.program.functions() {
            let doms = Dominators::compute(func);
            let forest = LoopForest::compute(func, &doms);
            for l in forest.loops() {
                let bytes = l.body_bytes(func);
                if bytes > cfg.cache_bytes {
                    out.push(Diagnostic::warning(
                        self.code(),
                        Location::block(func.name(), l.header.index()),
                        format!(
                            "loop at {}/b{} has a {bytes} B body ({} blocks), larger than \
                             the {} B cache: it self-evicts every iteration under any placement",
                            func.name(),
                            l.header.index(),
                            l.body.len(),
                            cfg.cache_bytes
                        ),
                    ));
                }
            }
        }
        out.truncate(cfg.max_reports);
        out
    }
}

/// The cache sets touched by a loop body under a placement, or `None`
/// when any of its blocks is unplaced (IPA101's problem, not ours).
fn loop_sets(
    func_id: FuncId,
    func: &impact_ir::Function,
    l: &NaturalLoop,
    placement: &Placement,
    cfg: &ConflictConfig,
) -> Option<BTreeSet<u64>> {
    let sets = cfg.sets();
    let mut colors = BTreeSet::new();
    for &b in &l.body {
        let addr = placement.try_addr(func_id, b)?;
        let block = func.block(b);
        let first = addr / cfg.line_bytes;
        let last = (addr + block.size_bytes() - 1) / cfg.line_bytes;
        for line in first..=last {
            colors.insert(line % sets);
        }
    }
    Some(colors)
}

/// `IPA302` — concurrently-hot loop bodies colored onto the same sets.
///
/// A call site inside loop `A` of function `f` makes every loop of the
/// callee `g` execute *within* `A`'s iterations: both bodies alternate
/// in the cache while `A` runs. When the two bodies together fit in the
/// cache, a placement could give them disjoint sets — if it does not,
/// every iteration of the inner loop may evict the outer loop's code.
pub struct LoopInterference;

impl Pass for LoopInterference {
    fn code(&self) -> &'static str {
        "IPA302"
    }

    fn name(&self) -> &'static str {
        "loop-interference"
    }

    fn description(&self) -> &'static str {
        "concurrently-hot loop bodies placed on overlapping cache sets"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let Some(placement) = ctx.placement else {
            return Vec::new();
        };
        let cfg = ctx.conflict;
        if cfg.line_bytes == 0 || cfg.cache_bytes < cfg.line_bytes {
            return Vec::new();
        }

        // Loop structure per function, computed once.
        let forests: Vec<LoopForest> = ctx
            .program
            .functions()
            .map(|(_, func)| {
                let doms = Dominators::compute(func);
                LoopForest::compute(func, &doms)
            })
            .collect();

        let mut out = Vec::new();
        'scan: for (f, func) in ctx.program.functions() {
            let caller_forest = &forests[f.index()];
            for (b, block) in func.blocks() {
                let Terminator::Call { callee, .. } = block.terminator() else {
                    continue;
                };
                let Some(ai) = caller_forest.innermost(b) else {
                    continue; // call site not inside a loop
                };
                let outer = &caller_forest.loops()[ai];
                let callee_func = ctx.program.function(*callee);
                for inner in forests[callee.index()].loops() {
                    let outer_bytes = outer.body_bytes(func);
                    let inner_bytes = inner.body_bytes(callee_func);
                    if outer_bytes + inner_bytes > cfg.cache_bytes {
                        continue; // cannot be disjointly colored anyway
                    }
                    let (Some(a_sets), Some(b_sets)) = (
                        loop_sets(f, func, outer, placement, &cfg),
                        loop_sets(*callee, callee_func, inner, placement, &cfg),
                    ) else {
                        continue;
                    };
                    let shared: Vec<u64> = a_sets.intersection(&b_sets).copied().collect();
                    if shared.is_empty() {
                        continue;
                    }
                    out.push(Diagnostic::warning(
                        self.code(),
                        Location::block(func.name(), outer.header.index()),
                        format!(
                            "loop {}/b{} ({outer_bytes} B) calls {} from b{}, whose loop \
                             b{} ({inner_bytes} B) shares {} cache set(s) with it \
                             (first: set {}); both fit the {} B cache and could be \
                             placed conflict-free",
                            func.name(),
                            outer.header.index(),
                            callee_func.name(),
                            b.index(),
                            inner.header.index(),
                            shared.len(),
                            shared[0],
                            cfg.cache_bytes
                        ),
                    ));
                    if out.len() >= cfg.max_reports {
                        break 'scan;
                    }
                }
            }
        }
        out
    }
}

/// An analytic upper bound on the miss ratio of a placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissBound {
    /// Distinct cache lines touched by weighted code (cold misses).
    pub cold_lines: u64,
    /// Weighted line accesses that contend with a heavier line in the
    /// same set (potential conflict misses).
    pub conflict_weight: u64,
    /// Total weighted line accesses.
    pub accesses: u64,
}

impl MissBound {
    /// The bound itself: (cold + conflict) / accesses, in `[0, 1]`.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        ((self.cold_lines + self.conflict_weight) as f64 / self.accesses as f64).min(1.0)
    }
}

/// Bounds the miss ratio of `placement` under `profile` analytically.
///
/// Every line touched at least once costs one cold miss. Within each
/// direct-mapped set, the heaviest resident line is assumed to win the
/// set; all accesses to *other* lines of that set are counted as
/// potential conflict misses. This over-approximates an LRU-free
/// direct-mapped cache (real alternation patterns can be kinder, never
/// worse in the aggregate), which is what makes it a bound rather than
/// an estimate.
#[must_use]
pub fn estimate_miss_bound(
    program: &Program,
    profile: &Profile,
    placement: &Placement,
    cfg: &ConflictConfig,
) -> MissBound {
    if cfg.line_bytes == 0 || cfg.cache_bytes < cfg.line_bytes {
        return MissBound {
            cold_lines: 0,
            conflict_weight: 0,
            accesses: 0,
        };
    }
    let mut line_weight: BTreeMap<u64, u64> = BTreeMap::new();
    for (f, func) in program.functions() {
        if f.index() >= profile.funcs.len() {
            continue;
        }
        for (b, block) in func.blocks() {
            let w = profile.block_weight(f, b);
            if w == 0 {
                continue;
            }
            let Some(addr) = placement.try_addr(f, b) else {
                continue;
            };
            let first = addr / cfg.line_bytes;
            let last = (addr + block.size_bytes() - 1) / cfg.line_bytes;
            for line in first..=last {
                *line_weight.entry(line).or_insert(0) += w;
            }
        }
    }

    let sets = cfg.sets();
    let mut per_set: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut accesses = 0u64;
    for (&line, &w) in &line_weight {
        per_set.entry(line % sets).or_default().push(w);
        accesses += w;
    }
    let conflict_weight = per_set
        .values()
        .map(|ws| ws.iter().sum::<u64>() - ws.iter().max().copied().unwrap_or(0))
        .sum();

    MissBound {
        cold_lines: line_weight.len() as u64,
        conflict_weight,
        accesses,
    }
}

/// `IPA303` — placement's estimated miss-ratio bound is high.
///
/// Runs [`estimate_miss_bound`] and warns when the bound crosses
/// [`ConflictConfig::miss_bound_warn`]. The bound is also what
/// `impact analyze` and the validation experiments report, so the pass
/// and the numbers in EXPERIMENTS.md cannot drift apart.
pub struct StaticMissBound;

impl Pass for StaticMissBound {
    fn code(&self) -> &'static str {
        "IPA303"
    }

    fn name(&self) -> &'static str {
        "static-miss-bound"
    }

    fn description(&self) -> &'static str {
        "estimated miss-ratio bound of the placement exceeds the threshold"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let (Some(placement), Some(profile)) = (ctx.placement, ctx.profile) else {
            return Vec::new();
        };
        let cfg = ctx.conflict;
        if cfg.line_bytes == 0 || cfg.cache_bytes < cfg.line_bytes {
            return Vec::new();
        }
        let bound = estimate_miss_bound(ctx.program, profile, placement, &cfg);
        if bound.ratio() <= cfg.miss_bound_warn || bound.accesses == 0 {
            return Vec::new();
        }
        vec![Diagnostic::warning(
            self.code(),
            Location::program(),
            format!(
                "estimated miss-ratio bound {:.1}% exceeds {:.1}% \
                 ({} cold lines + {} contended accesses over {} line accesses, \
                 {} B cache / {} B lines)",
                bound.ratio() * 100.0,
                cfg.miss_bound_warn * 100.0,
                bound.cold_lines,
                bound.conflict_weight,
                bound.accesses,
                cfg.cache_bytes,
                cfg.line_bytes
            ),
        )]
    }
}

#[cfg(test)]
mod tests {
    use impact_ir::{BlockId, BranchBias, Instr, ProgramBuilder};
    use impact_layout::placement::Placement;
    use impact_profile::Profiler;

    use super::*;

    /// One function whose single loop body is `blocks` blocks of 15
    /// instructions (64 B each including the terminator slot).
    fn big_loop(blocks: usize) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let ids: Vec<BlockId> = (0..blocks)
            .map(|_| f.block(vec![Instr::IntAlu; 15]))
            .collect();
        let exit = f.block(vec![]);
        for w in ids.windows(2) {
            f.terminate(w[0], Terminator::jump(w[1]));
        }
        f.terminate(
            ids[blocks - 1],
            Terminator::branch(ids[0], exit, BranchBias::fixed(0.9)),
        );
        f.terminate(exit, Terminator::Exit);
        let mid = f.finish();
        pb.set_entry(mid);
        pb.finish().unwrap()
    }

    #[test]
    fn oversized_loop_body_is_flagged() {
        // 40 blocks × 64 B = 2560 B > 2048 B cache.
        let p = big_loop(40);
        let ctx = Context::program_only(&p);
        let diags = LoopFootprint.run(&ctx);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "IPA301");
        assert!(diags[0].message.contains("2560 B body"));
    }

    #[test]
    fn fitting_loop_body_is_quiet() {
        // 8 blocks × 64 B = 512 B < 2048 B cache.
        let p = big_loop(8);
        let ctx = Context::program_only(&p);
        assert!(LoopFootprint.run(&ctx).is_empty());
    }

    /// main loops calling `leaf`, which loops internally: the two loop
    /// bodies are concurrently hot.
    fn call_in_loop() -> Program {
        let mut pb = ProgramBuilder::new();
        let leaf = pb.reserve("leaf");
        let mut main = pb.function("main");
        let head = main.block(vec![Instr::IntAlu; 15]); // 64 B
        let latch = main.block(vec![Instr::IntAlu; 15]); // 64 B
        let exit = main.block(vec![]);
        main.terminate(head, Terminator::call(leaf, latch));
        main.terminate(
            latch,
            Terminator::branch(head, exit, BranchBias::fixed(0.9)),
        );
        main.terminate(exit, Terminator::Exit);
        let mid = main.finish();
        let mut lf = pb.function_reserved(leaf);
        let l0 = lf.block(vec![Instr::Load; 15]); // 64 B
        let l1 = lf.block(vec![]);
        lf.terminate(l0, Terminator::branch(l0, l1, BranchBias::fixed(0.9)));
        lf.terminate(l1, Terminator::Return);
        lf.finish();
        pb.set_entry(mid);
        pb.finish().unwrap()
    }

    /// Lays out main at 0 and leaf starting at `leaf_at`.
    fn placed(p: &Program, leaf_at: u64) -> Placement {
        let main = p.entry();
        let leaf = p.function_by_name("leaf").unwrap();
        let mut addrs = vec![Vec::new(), Vec::new()];
        let mut cursor = 0;
        for (_, block) in p.function(main).blocks() {
            addrs[main.index()].push(cursor);
            cursor += block.size_bytes();
        }
        let mut cursor = leaf_at;
        for (_, block) in p.function(leaf).blocks() {
            addrs[leaf.index()].push(cursor);
            cursor += block.size_bytes();
        }
        let total = cursor;
        Placement::from_raw(addrs, vec![main, leaf], total, total)
    }

    #[test]
    fn aliased_concurrent_loops_are_flagged() {
        let p = call_in_loop();
        // leaf's loop exactly one cache capacity after main's: same sets.
        let placement = placed(&p, 2048);
        let ctx = Context::program_only(&p).with_placement(&placement);
        let diags = LoopInterference.run(&ctx);
        assert!(!diags.is_empty());
        assert_eq!(diags[0].code, "IPA302");
        assert!(diags[0].message.contains("leaf"));
    }

    #[test]
    fn disjointly_colored_concurrent_loops_are_quiet() {
        let p = call_in_loop();
        // leaf right after main: different sets within one 2 KB frame.
        let placement = placed(&p, 192);
        let ctx = Context::program_only(&p).with_placement(&placement);
        assert!(LoopInterference.run(&ctx).is_empty());
    }

    #[test]
    fn miss_bound_is_zero_for_a_disjoint_placement_and_positive_for_aliasing() {
        let p = call_in_loop();
        let prof = Profiler::new().runs(4).profile(&p);
        let cfg = ConflictConfig::default();

        let good = placed(&p, 192);
        let b_good = estimate_miss_bound(&p, &prof, &good, &cfg);
        assert_eq!(b_good.conflict_weight, 0, "disjoint sets cannot conflict");
        assert!(b_good.cold_lines > 0 && b_good.accesses > 0);

        let bad = placed(&p, 2048);
        let b_bad = estimate_miss_bound(&p, &prof, &bad, &cfg);
        assert!(b_bad.conflict_weight > 0, "aliased loops must contend");
        assert!(b_bad.ratio() > b_good.ratio());
    }

    #[test]
    fn ipa303_warns_only_past_the_threshold() {
        let p = call_in_loop();
        let prof = Profiler::new().runs(4).profile(&p);
        let bad = placed(&p, 2048);
        let ctx = Context::program_only(&p)
            .with_profile(&prof)
            .with_placement(&bad);
        let diags = StaticMissBound.run(&ctx);
        assert_eq!(diags.len(), 1, "aliased hot loops blow the 10% bound");
        assert_eq!(diags[0].code, "IPA303");

        let lax = ConflictConfig {
            miss_bound_warn: 1.0,
            ..ConflictConfig::default()
        };
        let ctx = ctx.with_conflict(lax);
        assert!(StaticMissBound.run(&ctx).is_empty());
    }

    #[test]
    fn bad_geometry_is_quiet_here() {
        // IPA201 owns the geometry error; IPA3xx must not duplicate it.
        let p = call_in_loop();
        let prof = Profiler::new().runs(2).profile(&p);
        let placement = placed(&p, 192);
        let cfg = ConflictConfig {
            cache_bytes: 32,
            line_bytes: 64,
            ..ConflictConfig::default()
        };
        let ctx = Context::program_only(&p)
            .with_profile(&prof)
            .with_placement(&placement)
            .with_conflict(cfg);
        assert!(LoopFootprint.run(&ctx).is_empty());
        assert!(LoopInterference.run(&ctx).is_empty());
        assert!(StaticMissBound.run(&ctx).is_empty());
        assert_eq!(
            estimate_miss_bound(&p, &prof, &placement, &cfg),
            MissBound {
                cold_lines: 0,
                conflict_weight: 0,
                accesses: 0
            }
        );
    }
}

//! Static placement scoring: closed-form layout quality without a
//! simulator.
//!
//! Two cost models judge a materialized [`Placement`] from weighted
//! transfers alone (measured `Profile` or `StaticProfiler` estimate):
//!
//! * [`ExtTsp`] — the extended-TSP objective of Newell & Pupyrev
//!   ("Improved Basic Block Reordering"): a fall-through earns full
//!   credit, a short forward or backward jump earns a small credit that
//!   decays linearly with distance, everything else earns nothing.
//!   This is the objective modern basic-block reorderers maximize.
//! * [`DistanceTier`] — a Codestitcher-style collocation model: every
//!   weighted transfer (branches *and* calls) is bucketed by the
//!   separation of its endpoints — same cache line, same page, or far —
//!   and earns the tier's credit. This rewards inter-procedural
//!   locality that ExtTSP's window deliberately ignores.
//!
//! Both scorers report achieved credit against the maximum the same
//! transfers could earn under a perfect layout, so [`Score::normalized`]
//! is comparable across placements of the *same* program and profile.
//! Scores of different programs (e.g. inlined vs not) are comparable
//! only as ranks, which is exactly how validation table 17 uses them.
//!
//! The shared transfer enumeration lives in `impact_layout::quality`
//! ([`for_each_weighted_arc`]) so the pipeline's trace-quality metrics
//! and these scorers cannot disagree about which transfers exist.

use impact_ir::{Program, Terminator, BYTES_PER_INSTR};
use impact_layout::quality::for_each_weighted_arc;
use impact_layout::Placement;
use impact_profile::Profile;

/// Geometry and credit parameters shared by the scorers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreConfig {
    /// Forward-jump credit window in bytes (ExtTSP).
    pub forward_window: u64,
    /// Backward-jump credit window in bytes (ExtTSP).
    pub backward_window: u64,
    /// Peak credit of a non-fall-through transfer (ExtTSP).
    pub jump_credit: f64,
    /// Cache line size in bytes (distance tiers).
    pub line_bytes: u64,
    /// Page size in bytes (distance tiers).
    pub page_bytes: u64,
    /// Credit when both endpoints share a cache line.
    pub same_line_credit: f64,
    /// Credit when both endpoints share a page but not a line.
    pub same_page_credit: f64,
}

impl Default for ScoreConfig {
    fn default() -> Self {
        Self {
            forward_window: 1024,
            backward_window: 640,
            jump_credit: 0.1,
            line_bytes: 64,
            page_bytes: 4096,
            same_line_credit: 1.0,
            same_page_credit: 0.2,
        }
    }
}

impl ScoreConfig {
    /// `true` when the tier geometry is degenerate (zero-sized line or
    /// page, or a page smaller than a line). Scorers return a zero
    /// score instead of dividing by zero; IPA201 owns reporting the
    /// configuration error.
    #[must_use]
    pub fn bad_geometry(&self) -> bool {
        self.line_bytes == 0 || self.page_bytes < self.line_bytes
    }
}

/// A placement's achieved credit against the best the same weighted
/// transfers could earn.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Score {
    /// Credit earned by this placement.
    pub credit: f64,
    /// Credit a perfect placement of the same transfers would earn
    /// (every fall-through-eligible arc adjacent, every other transfer
    /// at its best tier). Unachievable when hot blocks have several hot
    /// successors, so [`Score::normalized`] is an upper-bound fraction.
    pub max_credit: f64,
}

impl Score {
    /// Achieved fraction of the maximum credit, in `[0, 1]`; zero when
    /// no weighted transfer exists.
    #[must_use]
    pub fn normalized(&self) -> f64 {
        if self.max_credit > 0.0 {
            self.credit / self.max_credit
        } else {
            0.0
        }
    }
}

/// One weighted inter- or intra-function transfer with placed
/// endpoints, as fed to the cost models: the address one past the
/// source block's last byte, the destination's first byte, and whether
/// adjacency would be a true fall-through.
struct PlacedTransfer {
    src_end: u64,
    dst: u64,
    weight: f64,
    fall_through_eligible: bool,
}

/// Enumerates every weighted transfer with both endpoints placed:
/// intra-function arcs (via the shared layout enumeration) plus one
/// call transfer per executed call site into its callee's entry block.
/// Return transfers are folded into the call-continuation arc the
/// profiler already records, so they are not double-counted here.
fn for_each_placed_transfer<F: FnMut(PlacedTransfer)>(
    program: &Program,
    profile: &Profile,
    placement: &Placement,
    mut f: F,
) {
    for_each_weighted_arc(program, profile, |arc| {
        let func = program.function(arc.func);
        let (Some(from_addr), Some(to_addr)) = (
            placement.try_addr(arc.func, arc.from),
            placement.try_addr(arc.func, arc.to),
        ) else {
            return;
        };
        f(PlacedTransfer {
            src_end: from_addr + func.block(arc.from).size_bytes(),
            dst: to_addr,
            weight: arc.weight as f64,
            fall_through_eligible: !arc.through_call,
        });
    });

    for (&(caller, block), &w) in &profile.call_sites {
        if w == 0 {
            continue;
        }
        let func = program.function(caller);
        let bb = func.block(block);
        let Terminator::Call { callee, .. } = *bb.terminator() else {
            continue;
        };
        let entry = program.function(callee).entry();
        let (Some(from_addr), Some(to_addr)) = (
            placement.try_addr(caller, block),
            placement.try_addr(callee, entry),
        ) else {
            continue;
        };
        f(PlacedTransfer {
            src_end: from_addr + bb.size_bytes(),
            dst: to_addr,
            weight: w as f64,
            fall_through_eligible: false,
        });
    }
}

/// A closed-form judge of placement quality.
pub trait PlacementScorer {
    /// Stable lower-case name used in JSON documents and table rows.
    fn name(&self) -> &'static str;

    /// Scores `placement` for `program` under `profile`'s weights.
    fn score(&self, program: &Program, profile: &Profile, placement: &Placement) -> Score;
}

/// The extended-TSP objective: fall-throughs earn `weight`, short
/// jumps earn `jump_credit * weight` decayed linearly over the
/// forward/backward window, far transfers earn nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtTsp {
    /// Windows and credits.
    pub config: ScoreConfig,
}

impl ExtTsp {
    /// Credit multiplier (in `[0, 1]`) for one transfer.
    fn credit(&self, t: &PlacedTransfer) -> f64 {
        let c = &self.config;
        if t.fall_through_eligible && t.dst == t.src_end {
            return 1.0;
        }
        if t.dst >= t.src_end {
            let d = t.dst - t.src_end;
            if d < c.forward_window {
                return c.jump_credit * (1.0 - d as f64 / c.forward_window as f64);
            }
        } else {
            let d = t.src_end - t.dst;
            if d < c.backward_window {
                return c.jump_credit * (1.0 - d as f64 / c.backward_window as f64);
            }
        }
        0.0
    }
}

impl PlacementScorer for ExtTsp {
    fn name(&self) -> &'static str {
        "exttsp"
    }

    fn score(&self, program: &Program, profile: &Profile, placement: &Placement) -> Score {
        if self.config.forward_window == 0 || self.config.backward_window == 0 {
            return Score::default();
        }
        let mut s = Score::default();
        for_each_placed_transfer(program, profile, placement, |t| {
            s.credit += self.credit(&t) * t.weight;
            s.max_credit += if t.fall_through_eligible {
                t.weight
            } else {
                self.config.jump_credit * t.weight
            };
        });
        s
    }
}

/// Codestitcher-style distance tiers: every weighted transfer earns the
/// credit of the tier its endpoint separation falls into (same line,
/// same page, far).
#[derive(Debug, Clone, Copy, Default)]
pub struct DistanceTier {
    /// Tier geometry and credits.
    pub config: ScoreConfig,
}

impl PlacementScorer for DistanceTier {
    fn name(&self) -> &'static str {
        "tier"
    }

    fn score(&self, program: &Program, profile: &Profile, placement: &Placement) -> Score {
        let c = self.config;
        if c.bad_geometry() {
            return Score::default();
        }
        let mut s = Score::default();
        for_each_placed_transfer(program, profile, placement, |t| {
            // The transfer leaves from the source's last instruction.
            let src = t.src_end - BYTES_PER_INSTR;
            let credit = if src / c.line_bytes == t.dst / c.line_bytes {
                c.same_line_credit
            } else if src / c.page_bytes == t.dst / c.page_bytes {
                c.same_page_credit
            } else {
                0.0
            };
            s.credit += credit * t.weight;
            s.max_credit += c.same_line_credit * t.weight;
        });
        s
    }
}

/// Both scorers' normalized results for one placement, as surfaced in
/// analyze/advise documents and table 17.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScoreCard {
    /// Normalized ExtTSP score in `[0, 1]` (higher is better).
    pub exttsp: f64,
    /// Normalized distance-tier score in `[0, 1]` (higher is better).
    pub tier: f64,
}

/// Runs both scorers at `config` over one placement.
#[must_use]
pub fn score_placement(
    program: &Program,
    profile: &Profile,
    placement: &Placement,
    config: ScoreConfig,
) -> ScoreCard {
    ScoreCard {
        exttsp: ExtTsp { config }
            .score(program, profile, placement)
            .normalized(),
        tier: DistanceTier { config }
            .score(program, profile, placement)
            .normalized(),
    }
}

#[cfg(test)]
mod tests {
    use impact_ir::{BranchBias, Instr, ProgramBuilder};
    use impact_layout::baseline;
    use impact_profile::Profiler;

    use super::*;

    /// main: a -> b (hot branch) with a rare side exit; plus a callee.
    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let leaf = pb.reserve("leaf");
        let mut f = pb.function("main");
        let a = f.block(vec![Instr::IntAlu; 3]);
        let b = f.block(vec![Instr::IntAlu; 3]);
        let side = f.block(vec![Instr::IntAlu; 40]);
        let c = f.block(vec![]);
        let exit = f.block(vec![]);
        f.terminate(a, Terminator::branch(b, side, BranchBias::fixed(0.95)));
        f.terminate(b, Terminator::call(leaf, c));
        f.terminate(side, Terminator::jump(c));
        f.terminate(c, Terminator::branch(a, exit, BranchBias::fixed(0.9)));
        f.terminate(exit, Terminator::Exit);
        let id = f.finish();
        let mut l = pb.function_reserved(leaf);
        let l0 = l.block(vec![Instr::IntAlu; 2]);
        l.terminate(l0, Terminator::Return);
        l.finish();
        pb.set_entry(id);
        pb.finish().unwrap()
    }

    #[test]
    fn natural_order_scores_between_zero_and_one() {
        let p = program();
        let prof = Profiler::new().runs(4).profile(&p);
        let placement = baseline::natural(&p);
        for scorer in [
            &ExtTsp::default() as &dyn PlacementScorer,
            &DistanceTier::default(),
        ] {
            let s = scorer.score(&p, &prof, &placement);
            assert!(s.max_credit > 0.0, "{}: {s:?}", scorer.name());
            assert!(s.credit <= s.max_credit + 1e-9, "{}: {s:?}", scorer.name());
            let n = s.normalized();
            assert!((0.0..=1.0).contains(&n), "{}: {n}", scorer.name());
        }
    }

    #[test]
    fn adjacency_beats_separation() {
        // The same program scored under natural order (hot path a,b
        // adjacent) must beat a random shuffle on average.
        let p = program();
        let prof = Profiler::new().runs(4).profile(&p);
        let natural = score_placement(&p, &prof, &baseline::natural(&p), ScoreConfig::default());
        let mut worse = 0;
        for seed in 0..8u64 {
            let shuffled = baseline::random(&p, seed);
            let s = score_placement(&p, &prof, &shuffled, ScoreConfig::default());
            if s.exttsp <= natural.exttsp + 1e-12 {
                worse += 1;
            }
        }
        assert!(
            worse >= 6,
            "random shuffles should rarely beat natural order ({worse}/8 worse)"
        );
    }

    #[test]
    fn fall_through_earns_full_credit() {
        // Straight-line a -> b placed adjacently: the arc earns 1.0.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let a = f.block(vec![Instr::IntAlu; 2]);
        let b = f.block(vec![]);
        f.terminate(a, Terminator::jump(b));
        f.terminate(b, Terminator::Exit);
        let id = f.finish();
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let prof = Profiler::new().runs(1).profile(&p);
        let s = ExtTsp::default().score(&p, &prof, &baseline::natural(&p));
        assert!((s.normalized() - 1.0).abs() < 1e-12, "{s:?}");
        let t = DistanceTier::default().score(&p, &prof, &baseline::natural(&p));
        assert!((t.normalized() - 1.0).abs() < 1e-12, "{t:?}");
    }

    #[test]
    fn bad_geometry_scores_zero() {
        let p = program();
        let prof = Profiler::new().runs(1).profile(&p);
        let cfg = ScoreConfig {
            line_bytes: 0,
            ..ScoreConfig::default()
        };
        let s = DistanceTier { config: cfg }.score(&p, &prof, &baseline::natural(&p));
        assert_eq!(s, Score::default());
    }
}

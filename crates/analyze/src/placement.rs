//! Placement verifiers (`IPA101`–`IPA105`): the diagnostic-producing
//! replacement for the old bare-bool `Placement::is_valid_for`.

use impact_ir::BYTES_PER_INSTR;

use crate::diag::{Diagnostic, Location};
use crate::pass::{Context, Pass};

/// `IPA101` — every block of the program must have an address.
///
/// Also catches shape mismatches (a placement assembled for a different
/// program), which the old bool check folded into the same `false`.
pub struct PlacementCoverage;

impl Pass for PlacementCoverage {
    fn code(&self) -> &'static str {
        "IPA101"
    }

    fn name(&self) -> &'static str {
        "placement-coverage"
    }

    fn description(&self) -> &'static str {
        "every block is assigned an address"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let Some(placement) = ctx.placement else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (fid, func) in ctx.program.functions() {
            for (bid, _) in func.blocks() {
                if placement.try_addr(fid, bid).is_none() {
                    out.push(Diagnostic::error(
                        self.code(),
                        Location::block(func.name(), bid.index()),
                        format!("block {bid} of {:?} was never placed", func.name()),
                    ));
                }
            }
        }
        out
    }
}

/// `IPA102` — placed blocks must tile memory exactly: no overlaps, no
/// gaps, ending at `total_bytes`.
pub struct PlacementOverlap;

impl Pass for PlacementOverlap {
    fn code(&self) -> &'static str {
        "IPA102"
    }

    fn name(&self) -> &'static str {
        "placement-overlap"
    }

    fn description(&self) -> &'static str {
        "blocks tile memory without overlaps or gaps"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let Some(placement) = ctx.placement else {
            return Vec::new();
        };
        // (addr, len, function name, block index), address-sorted.
        let mut spans: Vec<(u64, u64, &str, usize)> = Vec::new();
        for (fid, func) in ctx.program.functions() {
            for (bid, block) in func.blocks() {
                if let Some(a) = placement.try_addr(fid, bid) {
                    spans.push((a, block.size_bytes(), func.name(), bid.index()));
                }
            }
        }
        spans.sort_unstable();

        let mut out = Vec::new();
        let mut cursor = 0u64;
        let mut prev: Option<(&str, usize)> = None;
        for (a, len, fname, b) in spans {
            if a < cursor {
                let (pf, pb) = prev.expect("overlap implies a predecessor");
                out.push(Diagnostic::error(
                    self.code(),
                    Location::block(fname, b),
                    format!(
                        "{fname}/b{b} at {a:#x} overlaps {pf}/b{pb}, which extends to {cursor:#x}"
                    ),
                ));
            } else if a > cursor {
                out.push(Diagnostic::error(
                    self.code(),
                    Location::block(fname, b),
                    format!("gap of {} bytes before {fname}/b{b} at {a:#x}", a - cursor),
                ));
            }
            cursor = cursor.max(a + len);
            prev = Some((fname, b));
        }
        if cursor != placement.total_bytes() {
            out.push(Diagnostic::error(
                self.code(),
                Location::program(),
                format!(
                    "placed code ends at {cursor:#x} but the placement claims {:#x} total bytes",
                    placement.total_bytes()
                ),
            ));
        }
        out
    }
}

/// `IPA103` — the effective / non-executed split must be honored.
///
/// Blocks a function layout marked *effective* must live below
/// `effective_bytes`; *non-executed* blocks must live at or above it.
/// With a profile present, any block that actually executed must also be
/// in the effective region — the invariant the paper's Step 4/5 split is
/// built on.
pub struct EffectiveSplit;

impl Pass for EffectiveSplit {
    fn code(&self) -> &'static str {
        "IPA103"
    }

    fn name(&self) -> &'static str {
        "effective-split"
    }

    fn description(&self) -> &'static str {
        "effective and non-executed regions do not interleave"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let Some(placement) = ctx.placement else {
            return Vec::new();
        };
        let split = placement.effective_bytes();
        let mut out = Vec::new();

        if let Some(layouts) = ctx.layouts {
            for (fid, func) in ctx.program.functions() {
                let Some(layout) = layouts.get(fid.index()) else {
                    continue;
                };
                for &b in &layout.effective {
                    if let Some(a) = placement.try_addr(fid, b) {
                        if a >= split {
                            out.push(Diagnostic::error(
                                self.code(),
                                Location::block(func.name(), b.index()),
                                format!(
                                    "effective block {}/{b} placed at {a:#x}, beyond the \
                                     effective region end {split:#x}",
                                    func.name()
                                ),
                            ));
                        }
                    }
                }
                for &b in &layout.non_executed {
                    if let Some(a) = placement.try_addr(fid, b) {
                        if a < split {
                            out.push(Diagnostic::error(
                                self.code(),
                                Location::block(func.name(), b.index()),
                                format!(
                                    "non-executed block {}/{b} placed at {a:#x}, inside the \
                                     effective region (ends {split:#x})",
                                    func.name()
                                ),
                            ));
                        }
                    }
                }
            }
        }

        if let Some(profile) = ctx.profile {
            for (fid, func) in ctx.program.functions() {
                if fid.index() >= profile.funcs.len() {
                    continue;
                }
                for (bid, _) in func.blocks() {
                    if profile.block_weight(fid, bid) == 0 {
                        continue;
                    }
                    if let Some(a) = placement.try_addr(fid, bid) {
                        if a >= split {
                            out.push(Diagnostic::error(
                                self.code(),
                                Location::block(func.name(), bid.index()),
                                format!(
                                    "block {}/{bid} executed {} times but sits in the \
                                     non-executed region at {a:#x}",
                                    func.name(),
                                    profile.block_weight(fid, bid)
                                ),
                            ));
                        }
                    }
                }
            }
        }
        out
    }
}

/// `IPA104` — instruction alignment.
///
/// Every address the model hands out must be a multiple of the (single,
/// fixed) instruction size; a misaligned block breaks the cache-line
/// accounting of every downstream consumer.
pub struct Alignment;

impl Pass for Alignment {
    fn code(&self) -> &'static str {
        "IPA104"
    }

    fn name(&self) -> &'static str {
        "alignment"
    }

    fn description(&self) -> &'static str {
        "all block addresses are instruction-aligned"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let Some(placement) = ctx.placement else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (fid, func) in ctx.program.functions() {
            for (bid, _) in func.blocks() {
                if let Some(a) = placement.try_addr(fid, bid) {
                    if a % BYTES_PER_INSTR != 0 {
                        out.push(Diagnostic::error(
                            self.code(),
                            Location::block(func.name(), bid.index()),
                            format!(
                                "block {}/{bid} at {a:#x} is not {BYTES_PER_INSTR}-byte aligned",
                                func.name()
                            ),
                        ));
                    }
                }
            }
        }
        if placement.total_bytes() % BYTES_PER_INSTR != 0 {
            out.push(Diagnostic::error(
                self.code(),
                Location::program(),
                format!(
                    "total placement size {:#x} is not {BYTES_PER_INSTR}-byte aligned",
                    placement.total_bytes()
                ),
            ));
        }
        out
    }
}

/// `IPA105` — traces broken across the layout.
///
/// A selected trace is meant to run top-to-bottom in memory; when the
/// final addresses of consecutive trace blocks are not adjacent, the
/// trace's sequential locality was lost. The optimized pipeline only
/// breaks traces at the effective/non-executed boundary; a baseline
/// placement breaks many — hence a warning, not an error.
pub struct BrokenTraces;

impl Pass for BrokenTraces {
    fn code(&self) -> &'static str {
        "IPA105"
    }

    fn name(&self) -> &'static str {
        "broken-traces"
    }

    fn description(&self) -> &'static str {
        "selected traces stay contiguous in the final layout"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let (Some(placement), Some(traces)) = (ctx.placement, ctx.traces) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (fid, func) in ctx.program.functions() {
            let Some(ta) = traces.get(fid.index()) else {
                continue;
            };
            for (t, trace) in ta.traces().iter().enumerate() {
                // Zero-weight traces are parked in the non-executed
                // region; their internal order is not a locality promise.
                let executed = ctx
                    .profile
                    .is_none_or(|p| trace.iter().any(|&b| p.block_weight(fid, b) > 0));
                if !executed {
                    continue;
                }
                let mut breaks = 0usize;
                for pair in trace.windows(2) {
                    let (a, b) = (pair[0], pair[1]);
                    let (Some(addr_a), Some(addr_b)) =
                        (placement.try_addr(fid, a), placement.try_addr(fid, b))
                    else {
                        continue; // IPA101 reports unplaced blocks.
                    };
                    if addr_a + func.block(a).size_bytes() != addr_b {
                        breaks += 1;
                    }
                }
                if breaks > 0 {
                    out.push(Diagnostic::warning(
                        self.code(),
                        Location::trace(func.name(), t),
                        format!(
                            "trace {t} of {:?} ({} blocks) is broken at {breaks} of its \
                             {} internal transitions",
                            func.name(),
                            trace.len(),
                            trace.len() - 1
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use impact_ir::{BranchBias, FuncId, Program, ProgramBuilder, Terminator};
    use impact_layout::baseline;
    use impact_layout::pipeline::{Pipeline, PipelineConfig};
    use impact_layout::placement::Placement;

    use super::*;
    use crate::pass::Registry;

    fn looped_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let helper = pb.reserve("helper");
        let mut main = pb.function("main");
        let m0 = main.block_n(2);
        let m1 = main.block_n(1);
        let m2 = main.block_n(0);
        let dead = main.block_n(6);
        main.terminate(m0, Terminator::call(helper, m1));
        main.terminate(m1, Terminator::branch(m0, m2, BranchBias::fixed(0.8)));
        main.terminate(m2, Terminator::Exit);
        main.terminate(dead, Terminator::jump(m2));
        let mid = main.finish();
        let mut h = pb.function_reserved(helper);
        let h0 = h.block_n(3);
        h.terminate(h0, Terminator::Return);
        h.finish();
        pb.set_entry(mid);
        pb.finish().unwrap()
    }

    /// Address table of a placement, for corruption.
    fn raw_addrs(p: &Program, placement: &Placement) -> Vec<Vec<u64>> {
        p.functions()
            .map(|(fid, f)| {
                f.block_ids()
                    .map(|b| placement.try_addr(fid, b).unwrap_or(u64::MAX))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn pipeline_placement_passes_all_verifiers() {
        let p = looped_program();
        let r = Pipeline::new(PipelineConfig::default()).run(&p);
        let ctx = crate::pass::Context::of_result(&r);
        let report = Registry::placement_verifiers().run(&ctx);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn missing_address_fires_coverage() {
        let p = looped_program();
        let natural = baseline::natural(&p);
        let main = p.entry().index();
        let mut addrs = raw_addrs(&p, &natural);
        addrs[main][1] = u64::MAX;
        let broken = Placement::from_raw(
            addrs,
            natural.func_order().to_vec(),
            natural.effective_bytes(),
            natural.total_bytes(),
        );
        let ctx = crate::pass::Context::program_only(&p).with_placement(&broken);
        let diags = PlacementCoverage.run(&ctx);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "IPA101");
    }

    #[test]
    fn overlap_and_gap_fire_overlap_check() {
        let p = looped_program();
        let natural = baseline::natural(&p);
        let mut addrs = raw_addrs(&p, &natural);
        // Two blocks at the same address: an overlap, and a gap where the
        // displaced block used to be.
        let main = p.entry().index();
        addrs[main][1] = addrs[main][0];
        let broken = Placement::from_raw(
            addrs,
            natural.func_order().to_vec(),
            natural.effective_bytes(),
            natural.total_bytes(),
        );
        let ctx = crate::pass::Context::program_only(&p).with_placement(&broken);
        let diags = PlacementOverlap.run(&ctx);
        assert!(diags.iter().any(|d| d.message.contains("overlaps")));
        assert!(diags.iter().any(|d| d.message.contains("gap")));
        assert!(diags.iter().all(|d| d.code == "IPA102"));
    }

    #[test]
    fn executed_block_in_cold_region_fires_split_check() {
        let p = looped_program();
        let r = Pipeline::new(PipelineConfig {
            inline: None,
            ..PipelineConfig::default()
        })
        .run(&p);
        // Swap the dead block with a hot one: both directions violate the
        // split (and the layouts disagree with the addresses).
        let main = r.program.entry().index();
        let mut addrs = raw_addrs(&r.program, &r.placement);
        addrs[main].swap(0, 3);
        let broken = Placement::from_raw(
            addrs,
            r.placement.func_order().to_vec(),
            r.placement.effective_bytes(),
            r.placement.total_bytes(),
        );
        let ctx = crate::pass::Context::of_result(&r).with_placement(&broken);
        let diags = EffectiveSplit.run(&ctx);
        assert!(diags.iter().any(|d| d.code == "IPA103"));
        assert!(diags.iter().any(|d| d.message.contains("executed")));
    }

    #[test]
    fn misaligned_address_fires_alignment() {
        let p = looped_program();
        let natural = baseline::natural(&p);
        let main = p.entry().index();
        let mut addrs = raw_addrs(&p, &natural);
        addrs[main][0] += 2;
        let broken = Placement::from_raw(
            addrs,
            natural.func_order().to_vec(),
            natural.effective_bytes(),
            natural.total_bytes(),
        );
        let ctx = crate::pass::Context::program_only(&p).with_placement(&broken);
        let diags = Alignment.run(&ctx);
        assert!(diags
            .iter()
            .any(|d| d.code == "IPA104" && d.location == Location::block("main", 0)));
    }

    #[test]
    fn random_baseline_breaks_pipeline_traces() {
        let p = looped_program();
        let r = Pipeline::new(PipelineConfig::default()).run(&p);
        let scrambled = baseline::random(&r.program, 7);
        let ctx = crate::pass::Context::of_result(&r).with_placement(&scrambled);
        let diags = BrokenTraces.run(&ctx);
        assert!(
            diags.iter().any(|d| d.code == "IPA105"),
            "a random placement of {} traces should break at least one",
            r.traces.iter().map(|t| t.trace_count()).sum::<usize>()
        );
        // The optimized placement keeps its own (executed) traces whole.
        let clean = BrokenTraces.run(&crate::pass::Context::of_result(&r));
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn shape_mismatch_is_diagnosed_not_panicked() {
        let p = looped_program();
        // A placement with too few functions and blocks entirely.
        let broken = Placement::from_raw(vec![vec![0]], vec![FuncId::new(0)], 4, 4);
        let ctx = crate::pass::Context::program_only(&p).with_placement(&broken);
        let diags = PlacementCoverage.run(&ctx);
        // Every block except main/b0 is reported unplaced.
        let total_blocks: usize = p.functions().map(|(_, f)| f.block_count()).sum();
        assert_eq!(diags.len(), total_blocks - 1);
    }
}

//! Static profile estimation: branch heuristics plus frequency
//! propagation, producing a [`Profile`] without executing the program.
//!
//! The paper's pipeline is profile-driven — Step 1 *measures* a weighted
//! call graph and weighted control graphs by running the program on
//! representative inputs. This module answers the follow-up question:
//! how far does the same five-step pipeline get when the weights are
//! *predicted* from program structure alone?
//!
//! The estimator has three layers:
//!
//! 1. **Branch heuristics** (Ball/Larus style): each CFG edge gets a
//!    static probability from first-match rules — back edges are taken
//!    (0.88), edges staying in a loop beat exits (0.80), arms leading to
//!    a return are avoided (0.28), arms leading to a call are slightly
//!    avoided (0.40), anything else is 50/50. Switch tables are uniform
//!    per entry. The heuristics read only *structure* — never
//!    [`impact_ir::BranchBias`] parameters or switch selection weights,
//!    which are this repo's stand-in for actual program behavior and
//!    would make the "static" estimate a measurement in disguise.
//! 2. **Local propagation** (Wu/Larus style): per-invocation block and
//!    edge frequencies from iterated flow equations
//!    (`freq(b) = Σ freq(pred) · prob(pred → b)`, entry seeded at 1.0),
//!    solved Gauss–Seidel in reverse postorder.
//! 3. **Call-graph propagation**: function invocation counts pushed
//!    through the call-graph SCC condensation in caller-first order,
//!    with bounded iteration inside recursive components.
//!
//! [`StaticProfiler`] packages the result as an ordinary [`Profile`]
//! (scaled to integer counts), so trace selection, function layout and
//! global layout consume it unchanged via
//! [`impact_profile::ProfileSource`].

use std::collections::BTreeMap;

use impact_ir::{BlockId, FuncId, Function, Program, Terminator};
use impact_profile::{Profile, ProfileSource};

use crate::flow::{CallSccs, Dominators, LoopForest};

/// Probability that a back edge (loop-closing branch arm) is taken.
pub const PROB_BACK_EDGE: f64 = 0.88;
/// Probability of the arm that stays inside the innermost loop when the
/// other arm exits it.
pub const PROB_LOOP_STAY: f64 = 0.80;
/// Probability of an arm whose target immediately returns/exits.
pub const PROB_RETURN_ARM: f64 = 0.28;
/// Probability of an arm whose target performs a call (mild avoidance).
pub const PROB_CALL_ARM: f64 = 0.40;

/// Convergence tolerance for the call-graph SCC iteration.
const LOCAL_TOLERANCE: f64 = 1e-9;
/// Rounds of bounded iteration inside a recursive call-graph component.
const SCC_ROUNDS: usize = 32;
/// Frequency ceiling — keeps recursive components finite.
const FREQ_CLAMP: f64 = 1e15;

/// Counts scale: estimated frequencies are multiplied by this before
/// rounding into the integer [`Profile`], so one program run maps to
/// 10 000 profile "counts" and sub-unit frequencies survive rounding.
pub const SCALE: f64 = 10_000.0;

/// Static per-invocation estimate for one function: edge probabilities
/// and the block frequencies they imply.
#[derive(Debug, Clone)]
pub struct FunctionEstimate {
    /// Heuristic probability of every CFG edge, keyed `(from, to)`.
    /// Probabilities out of a block sum to 1.0 (or 0.0 for exits).
    pub edge_prob: BTreeMap<(BlockId, BlockId), f64>,
    /// Expected executions of each block per function invocation
    /// (entry ≥ 1.0; unreachable blocks are 0.0).
    pub local_freq: Vec<f64>,
}

impl FunctionEstimate {
    /// Expected traversals of edge `from -> to` per invocation.
    #[must_use]
    pub fn edge_freq(&self, from: BlockId, to: BlockId) -> f64 {
        self.local_freq[from.index()] * self.edge_prob.get(&(from, to)).copied().unwrap_or(0.0)
    }
}

/// Whole-program static estimate: per-function local frequencies plus
/// propagated invocation counts (entry function = 1.0 per run).
#[derive(Debug, Clone)]
pub struct ProgramEstimate {
    /// Per-function estimates, indexed by function id.
    pub funcs: Vec<FunctionEstimate>,
    /// Estimated invocations of each function per program run.
    pub invocations: Vec<f64>,
}

impl ProgramEstimate {
    /// Estimated executions of `block` per program run.
    #[must_use]
    pub fn block_freq(&self, func: FuncId, block: BlockId) -> f64 {
        self.invocations[func.index()] * self.funcs[func.index()].local_freq[block.index()]
    }
}

/// Assigns a heuristic probability to every outgoing CFG edge of every
/// block in `func`. First matching rule wins; when both branch arms are
/// the same block the edge gets probability 1.0.
#[must_use]
pub fn edge_probabilities(
    func: &Function,
    forest: &LoopForest,
) -> BTreeMap<(BlockId, BlockId), f64> {
    let mut probs = BTreeMap::new();
    for (b, block) in func.blocks() {
        match block.terminator() {
            Terminator::Jump { target } => {
                probs.insert((b, *target), 1.0);
            }
            Terminator::Call { ret_to, .. } => {
                // Statically, calls are assumed to return.
                probs.insert((b, *ret_to), 1.0);
            }
            Terminator::Branch {
                taken, not_taken, ..
            } => {
                if taken == not_taken {
                    probs.insert((b, *taken), 1.0);
                } else {
                    let p_taken = branch_arm_probability(func, forest, b, *taken, *not_taken);
                    probs.insert((b, *taken), p_taken);
                    probs.insert((b, *not_taken), 1.0 - p_taken);
                }
            }
            Terminator::Switch { targets } => {
                // Uniform per table entry: the entry *multiplicity* is
                // structural (a bigger jump-table share), but the u32
                // selection weights are behavioral and stay unread.
                if !targets.is_empty() {
                    let share = 1.0 / targets.len() as f64;
                    for (t, _) in targets {
                        *probs.entry((b, *t)).or_insert(0.0) += share;
                    }
                }
            }
            Terminator::Return | Terminator::Exit => {}
        }
    }
    probs
}

/// Heuristic probability of the `taken` arm of a two-way branch.
/// Rules are tried in priority order; the first that discriminates the
/// arms decides.
fn branch_arm_probability(
    func: &Function,
    forest: &LoopForest,
    from: BlockId,
    taken: BlockId,
    not_taken: BlockId,
) -> f64 {
    // Loop-branch heuristic: the loop-closing arm is taken.
    let back_t = forest.is_back_edge(from, taken);
    let back_n = forest.is_back_edge(from, not_taken);
    match (back_t, back_n) {
        (true, false) => return PROB_BACK_EDGE,
        (false, true) => return 1.0 - PROB_BACK_EDGE,
        _ => {}
    }

    // Loop-exit heuristic: prefer the arm that stays in the loop.
    let exit_t = forest.is_loop_exit(from, taken);
    let exit_n = forest.is_loop_exit(from, not_taken);
    match (exit_t, exit_n) {
        (true, false) => return 1.0 - PROB_LOOP_STAY,
        (false, true) => return PROB_LOOP_STAY,
        _ => {}
    }

    // Return heuristic: an arm that immediately leaves the function is
    // the unlikely error/early-out path.
    let ret_t = func.block(taken).terminator().is_function_exit();
    let ret_n = func.block(not_taken).terminator().is_function_exit();
    match (ret_t, ret_n) {
        (true, false) => return PROB_RETURN_ARM,
        (false, true) => return 1.0 - PROB_RETURN_ARM,
        _ => {}
    }

    // Call heuristic: mildly avoid the arm that performs a call.
    let call_t = matches!(func.block(taken).terminator(), Terminator::Call { .. });
    let call_n = matches!(func.block(not_taken).terminator(), Terminator::Call { .. });
    match (call_t, call_n) {
        (true, false) => return PROB_CALL_ARM,
        (false, true) => return 1.0 - PROB_CALL_ARM,
        _ => {}
    }

    0.5
}

/// Solves the flow equations for one function: per-invocation block
/// frequencies with the entry seeded at 1.0.
///
/// The equations `freq(b) = source(b) + Σ freq(p) · prob(p → b)` form a
/// linear system over the reachable blocks; it is solved directly by
/// Gaussian elimination with partial pivoting. A direct solve sidesteps
/// the convergence problems of fixpoint iteration — a loop nest with
/// several 0.88-probability latches retains > 0.99 of its flow per trip
/// and would need tens of thousands of Jacobi sweeps. Structurally
/// infinite loops (no exit edge) make the system singular; the
/// near-zero pivot is floored so their frequency comes out huge but
/// finite, then clamped to [`FREQ_CLAMP`].
#[must_use]
pub fn local_frequencies(
    func: &Function,
    doms: &Dominators,
    probs: &BTreeMap<(BlockId, BlockId), f64>,
) -> Vec<f64> {
    let order = doms.reverse_postorder();
    let n = order.len();
    // Dense row per reachable block: A = I − Wᵀ, rhs = entry indicator.
    let pos: BTreeMap<BlockId, usize> = order.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let mut a = vec![vec![0.0f64; n]; n];
    let mut rhs = vec![0.0f64; n];
    for (i, &b) in order.iter().enumerate() {
        a[i][i] = 1.0;
        if b == func.entry() {
            rhs[i] = 1.0;
        }
    }
    for (&(from, to), &p) in probs {
        if let (Some(&fi), Some(&ti)) = (pos.get(&from), pos.get(&to)) {
            a[ti][fi] -= p;
        }
    }

    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let pivot_row = (col..n)
            .max_by(|&x, &y| a[x][col].abs().total_cmp(&a[y][col].abs()))
            .unwrap_or(col);
        a.swap(col, pivot_row);
        rhs.swap(col, pivot_row);
        if a[col][col].abs() < 1e-12 {
            // Singular direction (loop with no exit): floor the pivot.
            a[col][col] = if a[col][col] < 0.0 { -1e-12 } else { 1e-12 };
        }
        let (upper, lower) = a.split_at_mut(col + 1);
        let pivot = &upper[col];
        for (off, row) in lower.iter_mut().enumerate() {
            let factor = row[col] / pivot[col];
            if factor == 0.0 {
                continue;
            }
            for (cell, &p) in row[col..].iter_mut().zip(&pivot[col..]) {
                *cell -= factor * p;
            }
            rhs[col + 1 + off] -= factor * rhs[col];
        }
    }
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut v = rhs[row];
        for k in row + 1..n {
            v -= a[row][k] * x[k];
        }
        x[row] = (v / a[row][row]).clamp(0.0, FREQ_CLAMP);
    }

    let mut freq = vec![0.0f64; func.block_count()];
    for (i, &b) in order.iter().enumerate() {
        freq[b.index()] = x[i];
    }
    freq
}

/// Estimates block frequencies and function invocation counts for the
/// whole program (one program run ≙ entry-function invocation 1.0).
#[must_use]
pub fn estimate(program: &Program) -> ProgramEstimate {
    let funcs: Vec<FunctionEstimate> = program
        .functions()
        .map(|(_, func)| {
            let doms = Dominators::compute(func);
            let forest = LoopForest::compute(func, &doms);
            let edge_prob = edge_probabilities(func, &forest);
            let local_freq = local_frequencies(func, &doms, &edge_prob);
            FunctionEstimate {
                edge_prob,
                local_freq,
            }
        })
        .collect();

    // Per-invocation call-site frequencies: (site block, callee, freq).
    let site_freqs: Vec<Vec<(FuncId, f64)>> = program
        .functions()
        .map(|(f, func)| {
            func.blocks()
                .filter_map(|(b, block)| match block.terminator() {
                    Terminator::Call { callee, .. } => {
                        Some((*callee, funcs[f.index()].local_freq[b.index()]))
                    }
                    _ => None,
                })
                .collect()
        })
        .collect();

    let sccs = CallSccs::compute(program);
    let mut invocations = vec![0.0f64; program.function_count()];
    invocations[program.entry().index()] = 1.0;

    for (ci, comp) in sccs.components().iter().enumerate() {
        if sccs.is_cyclic(ci) {
            // External inflow is already accumulated in `invocations`;
            // iterate the internal arcs to a bounded fixpoint.
            let external: Vec<f64> = comp.iter().map(|&f| invocations[f.index()]).collect();
            for _ in 0..SCC_ROUNDS {
                let mut changed = false;
                for (k, &f) in comp.iter().enumerate() {
                    let mut inv = external[k];
                    for &g in comp.iter() {
                        for &(callee, freq) in &site_freqs[g.index()] {
                            if callee == f {
                                inv += invocations[g.index()] * freq;
                            }
                        }
                    }
                    let inv = inv.min(FREQ_CLAMP);
                    if (inv - invocations[f.index()]).abs() > LOCAL_TOLERANCE {
                        changed = true;
                    }
                    invocations[f.index()] = inv;
                }
                if !changed {
                    break;
                }
            }
        }
        // Push this component's settled invocations out to later
        // components (calls inside the component were handled above and
        // re-adding them here would double count, so skip them).
        for &f in comp {
            let inv = invocations[f.index()];
            if inv == 0.0 {
                continue;
            }
            for &(callee, freq) in &site_freqs[f.index()] {
                if sccs.component_of(callee) != ci {
                    invocations[callee.index()] =
                        (invocations[callee.index()] + inv * freq).min(FREQ_CLAMP);
                }
            }
        }
    }

    ProgramEstimate { funcs, invocations }
}

/// A [`ProfileSource`] that *predicts* the weighted call/control graphs
/// instead of measuring them.
///
/// The emitted [`Profile`] reports one run with every frequency scaled
/// by [`SCALE`] and rounded; `totals.truncated` is always `false`.
/// Estimated profiles are not integer-flow-exact (rounding breaks exact
/// Kirchhoff sums, which only matters to lint passes that audit
/// *measured* profiles) but are fully deterministic.
#[derive(Debug, Clone, Default)]
pub struct StaticProfiler;

impl StaticProfiler {
    /// A static profiler with default heuristics.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// The f64-level estimate backing [`ProfileSource::profile`].
    #[must_use]
    pub fn estimate(&self, program: &Program) -> ProgramEstimate {
        estimate(program)
    }
}

impl ProfileSource for StaticProfiler {
    fn profile(&self, program: &Program) -> Profile {
        let est = estimate(program);
        let mut profile = Profile::empty_for(program);
        let count = |x: f64| (x * SCALE).round() as u64;

        for (f, func) in program.functions() {
            let fe = &est.funcs[f.index()];
            let inv = est.invocations[f.index()];
            let fp = &mut profile.funcs[f.index()];
            fp.invocations = count(inv);
            for b in func.block_ids() {
                fp.block_counts[b.index()] = count(inv * fe.local_freq[b.index()]);
            }
            for (&(from, to), &p) in &fe.edge_prob {
                let w = count(inv * fe.local_freq[from.index()] * p);
                if w > 0 {
                    fp.arcs.insert((from, to), w);
                }
            }
            for (b, block) in func.blocks() {
                match block.terminator() {
                    Terminator::Call { callee, .. } => {
                        let w = count(inv * fe.local_freq[b.index()]);
                        if w > 0 {
                            profile.call_sites.insert((f, b), w);
                            *profile.call_arcs.entry((f, *callee)).or_insert(0) += w;
                        }
                        profile.totals.calls += w;
                    }
                    Terminator::Return | Terminator::Exit => {}
                    _ => {
                        profile.totals.intra_transfers += count(inv * fe.local_freq[b.index()]);
                    }
                }
                let blocks = count(inv * fe.local_freq[b.index()]);
                profile.totals.blocks += blocks;
                profile.totals.instructions += blocks * block.instr_count();
            }
        }
        // Statically every call is assumed to return.
        profile.totals.returns = profile.totals.calls;
        profile.totals.truncated = false;
        profile.runs = 1;
        profile
    }
}

#[cfg(test)]
mod tests {
    use impact_ir::{BranchBias, Instr, ProgramBuilder};
    use impact_support::check;

    use super::*;

    /// entry -> loop { body } -> exit with a 0.88-heuristic back edge.
    fn simple_loop() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b0 = f.block(vec![Instr::IntAlu]);
        let b1 = f.block(vec![Instr::Load]);
        let b2 = f.block(vec![]);
        f.terminate(b0, Terminator::jump(b1));
        // The behavioral bias says 0.1 — the heuristic must ignore it.
        f.terminate(b1, Terminator::branch(b1, b2, BranchBias::fixed(0.1)));
        f.terminate(b2, Terminator::Exit);
        let mid = f.finish();
        pb.set_entry(mid);
        pb.finish().unwrap()
    }

    #[test]
    fn back_edge_gets_the_loop_probability() {
        let p = simple_loop();
        let func = p.function(p.entry());
        let doms = Dominators::compute(func);
        let forest = LoopForest::compute(func, &doms);
        let probs = edge_probabilities(func, &forest);
        let b = BlockId::new;
        assert_eq!(probs[&(b(1), b(1))], PROB_BACK_EDGE);
        assert!((probs[&(b(1), b(2))] - (1.0 - PROB_BACK_EDGE)).abs() < 1e-12);
    }

    #[test]
    fn loop_frequency_matches_geometric_series() {
        let p = simple_loop();
        let func = p.function(p.entry());
        let doms = Dominators::compute(func);
        let forest = LoopForest::compute(func, &doms);
        let probs = edge_probabilities(func, &forest);
        let freq = local_frequencies(func, &doms, &probs);
        // Expected trips: 1 / (1 - 0.88) ≈ 8.333…
        assert!((freq[1] - 1.0 / (1.0 - PROB_BACK_EDGE)).abs() < 1e-6);
        assert!((freq[0] - 1.0).abs() < 1e-9);
        assert!((freq[2] - 1.0).abs() < 1e-6, "exactly one exit per run");
    }

    #[test]
    fn return_arm_is_predicted_cold() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b0 = f.block(vec![]);
        let early = f.block(vec![]); // immediate exit
        let work = f.block(vec![Instr::IntAlu]);
        f.terminate(b0, Terminator::branch(early, work, BranchBias::fixed(0.9)));
        f.terminate(early, Terminator::Exit);
        f.terminate(work, Terminator::Exit);
        let mid = f.finish();
        pb.set_entry(mid);
        let p = pb.finish().unwrap();
        let func = p.function(p.entry());
        let doms = Dominators::compute(func);
        let forest = LoopForest::compute(func, &doms);
        let probs = edge_probabilities(func, &forest);
        // Both arms exit immediately -> rule doesn't discriminate -> 0.5.
        let b = BlockId::new;
        assert_eq!(probs[&(b(0), b(1))], 0.5);
    }

    #[test]
    fn switch_probability_is_uniform_per_entry() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b0 = f.block(vec![]);
        let a = f.block(vec![]);
        let bb = f.block(vec![]);
        f.terminate(
            b0,
            // Lopsided behavioral weights; heuristic sees entries only.
            Terminator::Switch {
                targets: vec![(a, 1000), (a, 1), (bb, 1)],
            },
        );
        f.terminate(a, Terminator::Exit);
        f.terminate(bb, Terminator::Exit);
        let mid = f.finish();
        pb.set_entry(mid);
        let p = pb.finish().unwrap();
        let func = p.function(p.entry());
        let doms = Dominators::compute(func);
        let forest = LoopForest::compute(func, &doms);
        let probs = edge_probabilities(func, &forest);
        // `a` holds 2 of 3 entries regardless of the u32 weights.
        assert!((probs[&(BlockId::new(0), BlockId::new(1))] - 2.0 / 3.0).abs() < 1e-12);
        assert!((probs[&(BlockId::new(0), BlockId::new(2))] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn invocations_propagate_through_the_call_graph() {
        let mut pb = ProgramBuilder::new();
        let leaf = pb.reserve("leaf");
        let mut main = pb.function("main");
        let b0 = main.block(vec![]);
        let call = main.block(vec![]);
        let latch = main.block(vec![]);
        let exit = main.block(vec![]);
        main.terminate(b0, Terminator::jump(call));
        main.terminate(call, Terminator::call(leaf, latch));
        main.terminate(
            latch,
            Terminator::branch(call, exit, BranchBias::fixed(0.5)),
        );
        main.terminate(exit, Terminator::Exit);
        let mid = main.finish();
        let mut lf = pb.function_reserved(leaf);
        let l0 = lf.block(vec![Instr::Store]);
        lf.terminate(l0, Terminator::Return);
        lf.finish();
        pb.set_entry(mid);
        let p = pb.finish().unwrap();

        let est = estimate(&p);
        let leaf_id = p.function_by_name("leaf").unwrap();
        assert!((est.invocations[p.entry().index()] - 1.0).abs() < 1e-9);
        // The call sits in a loop: leaf must be invoked > 1 time per run.
        assert!(est.invocations[leaf_id.index()] > 1.0);

        let prof = StaticProfiler::new().profile(&p);
        assert_eq!(prof.func_weight(p.entry()), SCALE as u64);
        assert_eq!(
            prof.call_site_weight(p.entry(), BlockId::new(1)),
            prof.func_weight(leaf_id)
        );
        assert_eq!(prof.totals.calls, prof.totals.returns);
        assert!(!prof.totals.truncated);
        assert_eq!(prof.runs, 1);
    }

    #[test]
    fn recursion_stays_finite() {
        let mut pb = ProgramBuilder::new();
        let me = pb.reserve("recur");
        let mut f = pb.function_reserved(me);
        let b0 = f.block(vec![]);
        let rec = f.block(vec![]);
        let back = f.block(vec![]);
        let out = f.block(vec![]);
        f.terminate(b0, Terminator::branch(rec, out, BranchBias::fixed(0.5)));
        f.terminate(rec, Terminator::call(me, back));
        f.terminate(back, Terminator::jump(out));
        f.terminate(out, Terminator::Exit);
        f.finish();
        pb.set_entry(me);
        let p = pb.finish().unwrap();
        let est = estimate(&p);
        let inv = est.invocations[p.entry().index()];
        assert!(inv.is_finite() && (1.0..=FREQ_CLAMP).contains(&inv));
    }

    #[test]
    fn static_profiles_are_deterministic() {
        let w = impact_workloads::by_name("wc").unwrap();
        let a = StaticProfiler::new().profile(&w.program);
        let b = StaticProfiler::new().profile(&w.program);
        assert_eq!(a, b);
    }

    /// Random reducible CFG: forward edges plus Branch back edges whose
    /// other arm always continues forward, so every loop has an exit.
    fn random_program(rng: &mut impact_support::Rng) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let n = rng.gen_range_inclusive(4, 12);
        let blocks: Vec<BlockId> = (0..n)
            .map(|_| f.block(vec![Instr::IntAlu; rng.gen_range_inclusive(0, 3)]))
            .collect();
        for i in 0..n {
            let b = blocks[i];
            if i + 1 == n {
                f.terminate(b, Terminator::Exit);
                continue;
            }
            let next = blocks[i + 1];
            match rng.gen_below(4) {
                0 => f.terminate(b, Terminator::jump(next)),
                1 if i > 0 => {
                    // Back edge to an earlier block, forward exit arm.
                    let head = blocks[rng.gen_range_inclusive(0, i - 1).min(i - 1)];
                    f.terminate(b, Terminator::branch(head, next, BranchBias::fixed(0.5)));
                }
                2 => {
                    // Forward branch over a random later block.
                    let far = blocks[rng.gen_range_inclusive(i + 1, n - 1)];
                    f.terminate(b, Terminator::branch(far, next, BranchBias::fixed(0.5)));
                }
                _ => {
                    let far = blocks[rng.gen_range_inclusive(i + 1, n - 1)];
                    f.terminate(
                        b,
                        Terminator::Switch {
                            targets: vec![(next, 1), (far, 3), (next, 2)],
                        },
                    );
                }
            }
        }
        let mid = f.finish();
        pb.set_entry(mid);
        pb.finish().unwrap()
    }

    #[test]
    fn frequency_propagation_conserves_flow() {
        check::forall(64, random_program, |p| {
            let func = p.function(p.entry());
            let doms = Dominators::compute(func);
            let forest = LoopForest::compute(func, &doms);
            let probs = edge_probabilities(func, &forest);
            let freq = local_frequencies(func, &doms, &probs);
            let preds = func.predecessors();
            for b in func.block_ids() {
                if !doms.is_reachable(b) {
                    continue;
                }
                let inflow: f64 = preds[b.index()]
                    .iter()
                    .map(|&p_| freq[p_.index()] * probs.get(&(p_, b)).copied().unwrap_or(0.0))
                    .sum();
                let expected = inflow + if b == func.entry() { 1.0 } else { 0.0 };
                assert!(
                    (freq[b.index()] - expected).abs() < 1e-6,
                    "Kirchhoff violated at {b:?}: freq={} inflow+source={expected}",
                    freq[b.index()],
                );
            }
            // Flow out of the function equals flow in: one unit per run.
            let outflow: f64 = func
                .blocks()
                .filter(|(_, blk)| blk.terminator().is_function_exit())
                .map(|(b, _)| freq[b.index()])
                .sum();
            assert!(
                (outflow - 1.0).abs() < 1e-6,
                "function consumes one unit of flow, got {outflow}"
            );
        });
    }
}

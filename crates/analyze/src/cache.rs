//! Cache-facing analysis (`IPA201`): conflict pressure in a
//! direct-mapped cache at the paper's reference geometry.

use std::collections::BTreeMap;

use crate::diag::{Diagnostic, Location};
use crate::pass::{Context, Pass};

/// Geometry and thresholds for [`ConflictPressure`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConflictConfig {
    /// Cache capacity in bytes. Default: the paper's 2 KB reference point.
    pub cache_bytes: u64,
    /// Cache line (block) size in bytes. Default: 64, the paper's
    /// best-miss-ratio block size at 2 KB.
    pub line_bytes: u64,
    /// A code line is *hot* when its weight is at least this fraction of
    /// the hottest line's weight.
    pub hot_fraction: f64,
    /// At most this many sets are reported (heaviest first); the rest are
    /// summarized in one trailing diagnostic.
    pub max_reports: usize,
    /// `IPA303` warns when the estimated miss-ratio bound of a placement
    /// (see [`crate::conflict::estimate_miss_bound`]) exceeds this.
    pub miss_bound_warn: f64,
    /// `IPA405` warns when the static memory-traffic bound (words
    /// fetched per word executed, from the same miss bound) exceeds
    /// this.
    pub traffic_bound_warn: f64,
}

impl Default for ConflictConfig {
    fn default() -> Self {
        Self {
            cache_bytes: 2048,
            line_bytes: 64,
            hot_fraction: 0.05,
            max_reports: 8,
            miss_bound_warn: 0.10,
            traffic_bound_warn: 0.50,
        }
    }
}

impl ConflictConfig {
    /// Number of sets in the modeled direct-mapped cache.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.cache_bytes / self.line_bytes
    }
}

/// `IPA201` — hot code lines competing for the same direct-mapped set.
///
/// Two blocks whose addresses map to the same set of a direct-mapped
/// cache evict each other on every alternation; when both are hot, the
/// layout is leaving miss ratio on the table (the exact effect Table 1's
/// worst benchmarks exhibit). This pass weights each cache *line* of the
/// placement by the executions of the blocks on it, then reports sets
/// where two or more hot lines collide. Always a warning: with code
/// larger than the cache, some conflict is unavoidable.
pub struct ConflictPressure;

impl Pass for ConflictPressure {
    fn code(&self) -> &'static str {
        "IPA201"
    }

    fn name(&self) -> &'static str {
        "conflict-pressure"
    }

    fn description(&self) -> &'static str {
        "hot block pairs mapping to the same direct-mapped cache set"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let (Some(placement), Some(profile)) = (ctx.placement, ctx.profile) else {
            return Vec::new();
        };
        let cfg = ctx.conflict;
        if cfg.line_bytes == 0 || cfg.cache_bytes < cfg.line_bytes {
            return vec![Diagnostic::error(
                self.code(),
                Location::program(),
                format!(
                    "unusable conflict geometry: {} B cache with {} B lines",
                    cfg.cache_bytes, cfg.line_bytes
                ),
            )];
        }

        // Weight of each memory line: executions of every block that
        // touches it (a block spanning n lines contributes to all n).
        let mut line_weight: BTreeMap<u64, u64> = BTreeMap::new();
        for (fid, func) in ctx.program.functions() {
            if fid.index() >= profile.funcs.len() {
                continue;
            }
            for (bid, block) in func.blocks() {
                let w = profile.block_weight(fid, bid);
                if w == 0 {
                    continue;
                }
                let Some(addr) = placement.try_addr(fid, bid) else {
                    continue; // IPA101's problem.
                };
                let first = addr / cfg.line_bytes;
                let last = (addr + block.size_bytes() - 1) / cfg.line_bytes;
                for line in first..=last {
                    *line_weight.entry(line).or_insert(0) += w;
                }
            }
        }
        let Some(&max_weight) = line_weight.values().max() else {
            return Vec::new();
        };
        let hot_cutoff = (max_weight as f64 * cfg.hot_fraction).max(1.0);

        // Hot lines per set.
        let sets = cfg.sets();
        let mut per_set: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
        for (&line, &w) in &line_weight {
            if (w as f64) >= hot_cutoff {
                per_set.entry(line % sets).or_default().push((line, w));
            }
        }

        // Conflicted sets, heaviest total weight first.
        let mut conflicted: Vec<(u64, Vec<(u64, u64)>)> = per_set
            .into_iter()
            .filter(|(_, lines)| lines.len() > 1)
            .collect();
        conflicted.sort_by_key(|(set, lines)| {
            (
                std::cmp::Reverse(lines.iter().map(|&(_, w)| w).sum::<u64>()),
                *set,
            )
        });

        let mut out = Vec::new();
        let shown = conflicted.len().min(cfg.max_reports);
        for (set, mut lines) in conflicted.drain(..shown) {
            lines.sort_by_key(|&(line, w)| (std::cmp::Reverse(w), line));
            let detail: Vec<String> = lines
                .iter()
                .take(4)
                .map(|&(line, w)| format!("line {:#x} (weight {w})", line * cfg.line_bytes))
                .collect();
            out.push(Diagnostic::warning(
                self.code(),
                Location::program(),
                format!(
                    "cache set {set} ({} B direct-mapped, {} B lines) is contested by \
                     {} hot lines: {}",
                    cfg.cache_bytes,
                    cfg.line_bytes,
                    lines.len(),
                    detail.join(", ")
                ),
            ));
        }
        if !conflicted.is_empty() {
            out.push(Diagnostic::warning(
                self.code(),
                Location::program(),
                format!(
                    "{} more conflicted set(s) not shown (raise max_reports to see them)",
                    conflicted.len()
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use impact_ir::{BranchBias, Instr, Program, ProgramBuilder, Terminator};
    use impact_layout::placement::Placement;
    use impact_profile::Profiler;

    use super::*;
    use crate::pass::Context;

    /// Two hot single-block loops in distinct functions, and enough total
    /// size that we can spread them a full cache apart.
    fn two_loops() -> Program {
        let mut pb = ProgramBuilder::new();
        let second = pb.reserve("second");
        let mut main = pb.function("main");
        let m0 = main.block(vec![Instr::IntAlu; 3]);
        let m1 = main.block(vec![]);
        let m2 = main.block(vec![]);
        main.terminate(m0, Terminator::branch(m0, m1, BranchBias::fixed(0.95)));
        main.terminate(m1, Terminator::call(second, m2));
        main.terminate(m2, Terminator::Exit);
        let mid = main.finish();
        let mut s = pb.function_reserved(second);
        let s0 = s.block(vec![Instr::Load; 3]);
        let s1 = s.block(vec![]);
        s.terminate(s0, Terminator::branch(s0, s1, BranchBias::fixed(0.95)));
        s.terminate(s1, Terminator::Return);
        s.finish();
        pb.set_entry(mid);
        pb.finish().unwrap()
    }

    /// Places the two functions either adjacent (no aliasing) or exactly
    /// one cache capacity apart (full aliasing). `spread` is the byte
    /// distance between the two hot loop heads.
    fn placed_apart(p: &Program, spread: u64) -> Placement {
        let main = p.entry();
        let second = p.function_by_name("second").unwrap();
        let mut addrs = vec![Vec::new(), Vec::new()];
        // main: b0 at 0, b1/b2 after it.
        let mut cursor = 0;
        for (_, block) in p.function(main).blocks() {
            addrs[main.index()].push(cursor);
            cursor += block.size_bytes();
        }
        let mut cursor = spread;
        for (_, block) in p.function(second).blocks() {
            addrs[second.index()].push(cursor);
            cursor += block.size_bytes();
        }
        let total = cursor;
        Placement::from_raw(addrs, vec![main, second], total, total)
    }

    #[test]
    fn aliased_hot_loops_are_reported() {
        let p = two_loops();
        let prof = Profiler::new().runs(4).profile(&p);
        let placement = placed_apart(&p, 2048);
        let ctx = Context::program_only(&p)
            .with_profile(&prof)
            .with_placement(&placement);
        let diags = ConflictPressure.run(&ctx);
        assert!(!diags.is_empty(), "aliased loops must be flagged");
        assert!(diags.iter().all(|d| d.code == "IPA201"));
        assert!(diags[0].message.contains("set 0"));
    }

    #[test]
    fn adjacent_hot_loops_are_quiet() {
        let p = two_loops();
        let prof = Profiler::new().runs(4).profile(&p);
        // 64 bytes apart: different sets, no conflict.
        let placement = placed_apart(&p, 64);
        let ctx = Context::program_only(&p)
            .with_profile(&prof)
            .with_placement(&placement);
        assert!(ConflictPressure.run(&ctx).is_empty());
    }

    #[test]
    fn threshold_controls_sensitivity() {
        let p = two_loops();
        let prof = Profiler::new().runs(4).profile(&p);
        let placement = placed_apart(&p, 2048);
        // Demand both lines be within 1% of the hottest — still true here
        // (both loops iterate ~equally), so the conflict still reports.
        let strict = ConflictConfig {
            hot_fraction: 1.01,
            ..ConflictConfig::default()
        };
        let ctx = Context::program_only(&p)
            .with_profile(&prof)
            .with_placement(&placement)
            .with_conflict(strict);
        // With an impossible threshold (above the hottest line itself),
        // no line qualifies as hot, so no conflict can be reported.
        assert!(ConflictPressure.run(&ctx).is_empty());

        let permissive = ConflictConfig {
            hot_fraction: 0.0,
            ..ConflictConfig::default()
        };
        let ctx = Context::program_only(&p)
            .with_profile(&prof)
            .with_placement(&placement)
            .with_conflict(permissive);
        assert!(!ConflictPressure.run(&ctx).is_empty());
    }

    #[test]
    fn bad_geometry_is_an_error() {
        let p = two_loops();
        let prof = Profiler::new().runs(2).profile(&p);
        let placement = placed_apart(&p, 64);
        let ctx = Context::program_only(&p)
            .with_profile(&prof)
            .with_placement(&placement)
            .with_conflict(ConflictConfig {
                cache_bytes: 32,
                line_bytes: 64,
                ..ConflictConfig::default()
            });
        let diags = ConflictPressure.run(&ctx);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, crate::diag::Severity::Error);
    }
}

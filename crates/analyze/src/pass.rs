//! The pass framework: what a pass sees, and the registry that runs them.

use impact_ir::Program;
use impact_layout::function_layout::FunctionLayout;
use impact_layout::pipeline::PipelineResult;
use impact_layout::placement::Placement;
use impact_layout::trace_select::TraceAssignment;
use impact_profile::Profile;

use crate::advisor::{
    CallPairSeparation, HotColdInterleave, LoopLineStraddle, MisplacedFallThrough,
    StaticTrafficBound,
};
use crate::cache::{ConflictConfig, ConflictPressure};
use crate::conflict::{LoopFootprint, LoopInterference, StaticMissBound};
use crate::diag::{Diagnostic, Report};
use crate::placement::{
    Alignment, BrokenTraces, EffectiveSplit, PlacementCoverage, PlacementOverlap,
};
use crate::program::{
    BranchMass, FlowConservation, RecursionCycles, StructuralValidation, UnreachableBlocks,
};

/// Everything a pass may look at. The program is always present; the
/// other artifacts are filled in as the pipeline produces them, and a
/// pass that needs a missing artifact simply reports nothing.
#[derive(Debug, Clone, Copy)]
pub struct Context<'a> {
    /// The program under analysis (post-inlining when taken from a
    /// pipeline result).
    pub program: &'a Program,
    /// Execution profile of `program`.
    pub profile: Option<&'a Profile>,
    /// Per-function trace assignments, indexed by function id.
    pub traces: Option<&'a [TraceAssignment]>,
    /// Per-function effective / non-executed splits.
    pub layouts: Option<&'a [FunctionLayout]>,
    /// The final memory map.
    pub placement: Option<&'a Placement>,
    /// Geometry and thresholds for the cache conflict-pressure lint.
    pub conflict: ConflictConfig,
}

impl<'a> Context<'a> {
    /// A context holding only a program (program lints run, the rest
    /// skip).
    #[must_use]
    pub fn program_only(program: &'a Program) -> Self {
        Self {
            program,
            profile: None,
            traces: None,
            layouts: None,
            placement: None,
            conflict: ConflictConfig::default(),
        }
    }

    /// The full context for a finished pipeline run.
    #[must_use]
    pub fn of_result(result: &'a PipelineResult) -> Self {
        Self {
            program: &result.program,
            profile: Some(&result.profile),
            traces: Some(&result.traces),
            layouts: Some(&result.layouts),
            placement: Some(&result.placement),
            conflict: ConflictConfig::default(),
        }
    }

    /// Adds a profile.
    #[must_use]
    pub fn with_profile(mut self, profile: &'a Profile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Adds a placement.
    #[must_use]
    pub fn with_placement(mut self, placement: &'a Placement) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Adds trace assignments.
    #[must_use]
    pub fn with_traces(mut self, traces: &'a [TraceAssignment]) -> Self {
        self.traces = Some(traces);
        self
    }

    /// Adds function layouts.
    #[must_use]
    pub fn with_layouts(mut self, layouts: &'a [FunctionLayout]) -> Self {
        self.layouts = Some(layouts);
        self
    }

    /// Overrides the conflict-pressure lint configuration.
    #[must_use]
    pub fn with_conflict(mut self, conflict: ConflictConfig) -> Self {
        self.conflict = conflict;
        self
    }
}

/// One analysis. Passes are stateless; all input comes from the
/// [`Context`].
pub trait Pass {
    /// The stable diagnostic code this pass emits (e.g. `IPA001`).
    fn code(&self) -> &'static str;

    /// Short machine-friendly name (e.g. `unreachable-blocks`).
    fn name(&self) -> &'static str;

    /// One-line description of what the pass checks.
    fn description(&self) -> &'static str;

    /// Runs the analysis. Passes whose required artifacts are absent
    /// from `ctx` return an empty vector.
    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic>;
}

/// An ordered collection of passes.
pub struct Registry {
    passes: Vec<Box<dyn Pass>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn empty() -> Self {
        Self { passes: Vec::new() }
    }

    /// The standard registry: every built-in analysis, program lints
    /// first, then placement verifiers, then cache-facing analyses.
    #[must_use]
    pub fn standard() -> Self {
        let mut r = Self::empty();
        r.register(Box::new(StructuralValidation));
        r.register(Box::new(UnreachableBlocks));
        r.register(Box::new(FlowConservation));
        r.register(Box::new(BranchMass));
        r.register(Box::new(RecursionCycles));
        r.register(Box::new(PlacementCoverage));
        r.register(Box::new(PlacementOverlap));
        r.register(Box::new(EffectiveSplit));
        r.register(Box::new(Alignment));
        r.register(Box::new(BrokenTraces));
        r.register(Box::new(ConflictPressure));
        r.register(Box::new(LoopFootprint));
        r.register(Box::new(LoopInterference));
        r.register(Box::new(StaticMissBound));
        r.register(Box::new(MisplacedFallThrough));
        r.register(Box::new(CallPairSeparation));
        r.register(Box::new(LoopLineStraddle));
        r.register(Box::new(HotColdInterleave));
        r.register(Box::new(StaticTrafficBound));
        r
    }

    /// Just the program-level lints (usable before any layout exists).
    #[must_use]
    pub fn program_lints() -> Self {
        let mut r = Self::empty();
        r.register(Box::new(StructuralValidation));
        r.register(Box::new(UnreachableBlocks));
        r.register(Box::new(FlowConservation));
        r.register(Box::new(BranchMass));
        r.register(Box::new(RecursionCycles));
        r
    }

    /// Just the placement verifiers.
    #[must_use]
    pub fn placement_verifiers() -> Self {
        let mut r = Self::empty();
        r.register(Box::new(PlacementCoverage));
        r.register(Box::new(PlacementOverlap));
        r.register(Box::new(EffectiveSplit));
        r.register(Box::new(Alignment));
        r.register(Box::new(BrokenTraces));
        r
    }

    /// The static cache-conflict analyses (`IPA301`–`IPA303`): loop
    /// footprints vs. geometry, interference between concurrently-hot
    /// loop bodies, and the estimated miss-ratio bound. This is what
    /// `impact analyze` runs on top of placement verification.
    #[must_use]
    pub fn static_analyses() -> Self {
        let mut r = Self::empty();
        r.register(Box::new(LoopFootprint));
        r.register(Box::new(LoopInterference));
        r.register(Box::new(StaticMissBound));
        r
    }

    /// The layout advisors (`IPA401`–`IPA405`): placement defects a
    /// reordering could fix, each reported with a concrete reorder
    /// hint. This is what `impact advise` runs on top of the static
    /// analyses.
    #[must_use]
    pub fn advisors() -> Self {
        let mut r = Self::empty();
        r.register(Box::new(MisplacedFallThrough));
        r.register(Box::new(CallPairSeparation));
        r.register(Box::new(LoopLineStraddle));
        r.register(Box::new(HotColdInterleave));
        r.register(Box::new(StaticTrafficBound));
        r
    }

    /// Appends a pass; it runs after all previously registered passes.
    pub fn register(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// The registered passes, in run order.
    pub fn passes(&self) -> impl Iterator<Item = &dyn Pass> {
        self.passes.iter().map(AsRef::as_ref)
    }

    /// Runs every pass over `ctx` and collects the findings.
    #[must_use]
    pub fn run(&self, ctx: &Context<'_>) -> Report {
        let mut report = Report::default();
        for pass in &self.passes {
            report.diagnostics.extend(pass.run(ctx));
        }
        report
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.passes.iter().map(|p| p.name()))
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_all_codes_uniquely() {
        let r = Registry::standard();
        let codes: Vec<&str> = r.passes().map(Pass::code).collect();
        assert_eq!(
            codes,
            vec![
                "IPA004", "IPA001", "IPA002", "IPA003", "IPA005", "IPA101", "IPA102", "IPA103",
                "IPA104", "IPA105", "IPA201", "IPA301", "IPA302", "IPA303", "IPA401", "IPA402",
                "IPA403", "IPA404", "IPA405"
            ]
        );
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "codes must be unique");
    }

    #[test]
    fn passes_have_descriptions() {
        for p in Registry::standard().passes() {
            assert!(!p.name().is_empty());
            assert!(!p.description().is_empty());
        }
    }
}

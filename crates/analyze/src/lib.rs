//! Pass-based static analysis and lints for the IMPACT-I pipeline.
//!
//! The reproduction's artifacts — [`Program`](impact_ir::Program)s,
//! [`Profile`](impact_profile::Profile)s, trace assignments, and
//! [`Placement`](impact_layout::placement::Placement)s — obey invariants
//! that the rest of the codebase mostly asserts in tests or not at all.
//! This crate makes them first-class: each invariant is a [`Pass`] with a
//! stable diagnostic code, and a [`Registry`] runs passes over a
//! [`Context`] to produce a [`Report`] renderable as text or JSON.
//!
//! # Codes
//!
//! | Code | Severity | Checks |
//! |--------|---------|--------|
//! | IPA001 | warning | blocks unreachable from their function entry |
//! | IPA002 | error | profile flow conservation (Kirchhoff's law on block counts) |
//! | IPA003 | error | outgoing branch mass equals block execution count |
//! | IPA004 | error | structural validation (dangling callees, bad targets) |
//! | IPA005 | warning | call-graph cycles (functions the inliner must skip) |
//! | IPA101 | error | every block has an address |
//! | IPA102 | error | blocks tile memory: no overlaps, no gaps |
//! | IPA103 | error | effective / non-executed split honored |
//! | IPA104 | error | 4-byte instruction alignment |
//! | IPA105 | warning | selected traces broken across the layout |
//! | IPA201 | warning | hot lines contesting one direct-mapped cache set |
//! | IPA301 | warning | loop body footprint exceeds the cache capacity |
//! | IPA302 | warning | concurrently-hot loop bodies on overlapping cache sets |
//! | IPA303 | warning | estimated miss-ratio bound exceeds the threshold |
//!
//! The contract: a full pipeline run over any of the bundled workloads
//! lints **error-free** (`impact lint` relies on this; warnings are
//! informational).
//!
//! # Static estimation
//!
//! Beyond linting measured artifacts, this crate can run the whole
//! placement pipeline *without a profile*: [`freq::StaticProfiler`]
//! predicts the weighted call/control graphs from program structure
//! (loop nesting from [`flow`], Ball/Larus-style branch heuristics from
//! [`freq`]), and [`analyze_static`] feeds that prediction through the
//! five-step pipeline, verifies the resulting placement, and bounds its
//! miss ratio with [`conflict::estimate_miss_bound`]. `impact analyze`
//! is a thin wrapper over it.
//!
//! # Example
//!
//! ```
//! use impact_layout::pipeline::{Pipeline, PipelineConfig};
//!
//! let w = impact_workloads::by_name("wc").unwrap();
//! let result = Pipeline::new(PipelineConfig::default()).run(&w.program);
//! let report = impact_analyze::lint_result(&result);
//! assert!(report.is_clean(), "{}", report.render());
//! ```

pub mod cache;
pub mod conflict;
pub mod diag;
pub mod flow;
pub mod freq;
pub mod pass;
pub mod placement;
pub mod program;

pub use cache::ConflictConfig;
pub use conflict::{estimate_miss_bound, MissBound};
pub use diag::{reports_to_json, Diagnostic, Location, Report, Severity};
pub use freq::StaticProfiler;
pub use pass::{Context, Pass, Registry};

use impact_ir::Program;
use impact_layout::pipeline::{
    Checkpoint, Pipeline, PipelineConfig, PipelineError, PipelineObserver, PipelineResult,
};
use impact_layout::placement::Placement;
use impact_profile::Profile;

/// Lints a finished pipeline run with the standard registry.
#[must_use]
pub fn lint_result(result: &PipelineResult) -> Report {
    Registry::standard().run(&Context::of_result(result))
}

/// Lints a bare program (plus optional profile) with the program-level
/// registry — usable before any layout exists.
#[must_use]
pub fn lint_program(program: &Program, profile: Option<&Profile>) -> Report {
    let mut ctx = Context::program_only(program);
    if let Some(p) = profile {
        ctx = ctx.with_profile(p);
    }
    Registry::program_lints().run(&ctx)
}

/// Verifies a placement against a program, explaining every violation.
///
/// This is the diagnostic replacement for the deprecated bare-bool
/// `Placement::is_valid_for`: an empty report means the placement covers
/// the program exactly (every block placed, no overlaps or gaps, aligned).
#[must_use]
pub fn verify_placement(program: &Program, placement: &Placement) -> Report {
    let ctx = Context::program_only(program).with_placement(placement);
    let mut r = Registry::empty();
    r.register(Box::new(placement::PlacementCoverage));
    r.register(Box::new(placement::PlacementOverlap));
    r.register(Box::new(placement::Alignment));
    r.run(&ctx)
}

/// The result of a profile-free, end-to-end static analysis.
#[derive(Debug)]
pub struct StaticAnalysis {
    /// The pipeline output driven by the [`StaticProfiler`]'s predicted
    /// profile (`result.profile` *is* the static profile of the placed
    /// program).
    pub result: PipelineResult,
    /// Placement verification (`IPA101`–`IPA104`) plus the static
    /// cache-conflict analyses (`IPA301`–`IPA303`).
    pub report: Report,
    /// Analytic miss-ratio bound of the placement under the static
    /// profile at the configured geometry.
    pub miss_bound: MissBound,
}

impl StaticAnalysis {
    /// The JSON document both `impact analyze --json` (one array entry
    /// per target) and `POST /v1/analyze` (a single object) emit —
    /// shared so the two surfaces cannot drift apart.
    #[must_use]
    pub fn to_json_for_target(&self, target: &str) -> impact_support::json::Json {
        use impact_support::json::Json;
        use impact_support::ToJson;

        let mut hot: Vec<(u64, String)> = self
            .result
            .program
            .functions()
            .map(|(fid, f)| (self.result.profile.func_weight(fid), f.name().to_owned()))
            .collect();
        hot.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let bound = self.miss_bound;
        Json::Obj(vec![
            ("target".to_string(), target.to_json()),
            (
                "total_bytes".to_string(),
                self.result.placement.total_bytes().to_json(),
            ),
            (
                "miss_bound".to_string(),
                Json::Obj(vec![
                    ("ratio".to_string(), bound.ratio().to_json()),
                    ("cold_lines".to_string(), bound.cold_lines.to_json()),
                    (
                        "conflict_weight".to_string(),
                        bound.conflict_weight.to_json(),
                    ),
                    ("accesses".to_string(), bound.accesses.to_json()),
                ]),
            ),
            (
                "hot_functions".to_string(),
                Json::Arr(
                    hot.iter()
                        .take(8)
                        .map(|(w, n)| {
                            Json::Obj(vec![
                                ("name".to_string(), n.as_str().to_json()),
                                ("estimated_weight".to_string(), w.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("report".to_string(), self.report.to_json()),
        ])
    }
}

/// Runs the five-step placement pipeline **without executing the
/// program**: the profile is predicted by [`StaticProfiler`], the
/// resulting placement is verified, and its miss ratio is bounded
/// analytically.
///
/// This is the engine behind `impact analyze` and `POST /v1/analyze`.
///
/// # Errors
///
/// Propagates [`PipelineError`] for invalid configs or malformed
/// programs, exactly like [`Pipeline::try_run`].
pub fn analyze_static(
    program: &Program,
    config: &PipelineConfig,
    conflict: ConflictConfig,
) -> Result<StaticAnalysis, PipelineError> {
    let source = StaticProfiler::new();
    let result = Pipeline::new(config.clone()).try_run_with_source(program, &source)?;
    let mut report = verify_placement(&result.program, &result.placement);
    let ctx = Context::of_result(&result).with_conflict(conflict);
    report
        .diagnostics
        .extend(Registry::static_analyses().run(&ctx).diagnostics);
    let miss_bound = estimate_miss_bound(
        &result.program,
        &result.profile,
        &result.placement,
        &conflict,
    );
    Ok(StaticAnalysis {
        result,
        report,
        miss_bound,
    })
}

/// A [`Pipeline`] that lints its own intermediate artifacts as it runs
/// (the opt-in "checked mode").
///
/// Program lints run on the profiled and inlined programs; the full
/// standard registry runs on the final result. All findings accumulate
/// into one [`Report`] returned next to the pipeline output.
#[derive(Debug, Default)]
pub struct CheckedPipeline {
    pipeline: Pipeline,
}

impl CheckedPipeline {
    /// Wraps a configured pipeline.
    #[must_use]
    pub fn new(pipeline: Pipeline) -> Self {
        Self { pipeline }
    }

    /// Runs the pipeline, linting at every checkpoint.
    #[must_use]
    pub fn run(&self, program: &Program) -> (PipelineResult, Report) {
        let mut observer = LintObserver::default();
        let result = self.pipeline.run_observed(program, &mut observer);
        (result, observer.report)
    }

    /// [`CheckedPipeline::run`] with input validation up front.
    pub fn try_run(&self, program: &Program) -> Result<(PipelineResult, Report), PipelineError> {
        let mut observer = LintObserver::default();
        let result = self.pipeline.try_run_observed(program, &mut observer)?;
        Ok((result, observer.report))
    }
}

/// Observer that lints each pipeline checkpoint into one report.
#[derive(Debug, Default)]
struct LintObserver {
    report: Report,
}

impl PipelineObserver for LintObserver {
    fn checkpoint(&mut self, checkpoint: &Checkpoint<'_>) {
        match checkpoint {
            Checkpoint::Profiled { program, profile }
            | Checkpoint::Inlined { program, profile } => {
                let ctx = Context::program_only(program).with_profile(profile);
                self.report
                    .diagnostics
                    .extend(Registry::program_lints().run(&ctx).diagnostics);
            }
            // Trace selection is linted as part of the final result
            // (IPA105 needs the placement too).
            Checkpoint::TracesSelected { .. } => {}
            Checkpoint::Placed { result } => {
                let ctx = Context::of_result(result);
                let mut registry = Registry::placement_verifiers();
                registry.register(Box::new(cache::ConflictPressure));
                self.report
                    .diagnostics
                    .extend(registry.run(&ctx).diagnostics);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use impact_layout::pipeline::{Pipeline, PipelineConfig};

    use super::*;

    #[test]
    fn checked_pipeline_is_clean_on_a_workload() {
        let w = impact_workloads::by_name("tee").expect("tee exists");
        let checked = CheckedPipeline::new(Pipeline::new(PipelineConfig::default()));
        let (result, report) = checked.run(&w.program);
        assert!(report.is_clean(), "{}", report.render());
        // The checked run produced the same placement as a plain run.
        let plain = Pipeline::new(PipelineConfig::default()).run(&w.program);
        assert_eq!(result.placement, plain.placement);
    }

    #[test]
    fn verify_placement_replaces_is_valid_for() {
        let w = impact_workloads::by_name("wc").expect("wc exists");
        let natural = impact_layout::baseline::natural(&w.program);
        let report = verify_placement(&w.program, &natural);
        assert!(report.is_clean(), "{}", report.render());
        #[allow(deprecated)]
        {
            assert_eq!(report.is_clean(), natural.is_valid_for(&w.program));
        }
    }

    #[test]
    fn lint_program_runs_without_layout_artifacts() {
        let w = impact_workloads::by_name("cmp").expect("cmp exists");
        let report = lint_program(&w.program, None);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn static_analysis_places_every_workload_error_free() {
        for w in impact_workloads::all() {
            let analysis = analyze_static(
                &w.program,
                &PipelineConfig::default(),
                ConflictConfig::default(),
            )
            .expect("well-formed workload");
            assert_eq!(
                analysis.report.error_count(),
                0,
                "{}: {}",
                w.name,
                analysis.report.render()
            );
            let b = analysis.miss_bound;
            assert!(b.accesses > 0, "{}: static profile is non-trivial", w.name);
            assert!(b.ratio() >= 0.0 && b.ratio() <= 1.0);
        }
    }

    #[test]
    fn static_analysis_rejects_bad_config() {
        let w = impact_workloads::by_name("wc").expect("wc exists");
        let bad = PipelineConfig {
            min_prob: 0.0,
            ..PipelineConfig::default()
        };
        assert!(analyze_static(&w.program, &bad, ConflictConfig::default()).is_err());
    }

    #[test]
    fn checked_try_run_rejects_bad_config() {
        let w = impact_workloads::by_name("wc").expect("wc exists");
        let checked = CheckedPipeline::new(Pipeline::new(PipelineConfig {
            min_prob: 0.0,
            ..PipelineConfig::default()
        }));
        assert!(checked.try_run(&w.program).is_err());
    }
}

//! Pass-based static analysis and lints for the IMPACT-I pipeline.
//!
//! The reproduction's artifacts — [`Program`](impact_ir::Program)s,
//! [`Profile`](impact_profile::Profile)s, trace assignments, and
//! [`Placement`](impact_layout::placement::Placement)s — obey invariants
//! that the rest of the codebase mostly asserts in tests or not at all.
//! This crate makes them first-class: each invariant is a [`Pass`] with a
//! stable diagnostic code, and a [`Registry`] runs passes over a
//! [`Context`] to produce a [`Report`] renderable as text or JSON.
//!
//! # Codes
//!
//! | Code | Severity | Checks |
//! |--------|---------|--------|
//! | IPA001 | warning | blocks unreachable from their function entry |
//! | IPA002 | error | profile flow conservation (Kirchhoff's law on block counts) |
//! | IPA003 | error | outgoing branch mass equals block execution count |
//! | IPA004 | error | structural validation (dangling callees, bad targets) |
//! | IPA005 | warning | call-graph cycles (functions the inliner must skip) |
//! | IPA101 | error | every block has an address |
//! | IPA102 | error | blocks tile memory: no overlaps, no gaps |
//! | IPA103 | error | effective / non-executed split honored |
//! | IPA104 | error | 4-byte instruction alignment |
//! | IPA105 | warning | selected traces broken across the layout |
//! | IPA201 | warning | hot lines contesting one direct-mapped cache set |
//!
//! The contract: a full pipeline run over any of the bundled workloads
//! lints **error-free** (`impact lint` relies on this; warnings are
//! informational).
//!
//! # Example
//!
//! ```
//! use impact_layout::pipeline::{Pipeline, PipelineConfig};
//!
//! let w = impact_workloads::by_name("wc").unwrap();
//! let result = Pipeline::new(PipelineConfig::default()).run(&w.program);
//! let report = impact_analyze::lint_result(&result);
//! assert!(report.is_clean(), "{}", report.render());
//! ```

pub mod cache;
pub mod diag;
pub mod pass;
pub mod placement;
pub mod program;

pub use cache::ConflictConfig;
pub use diag::{reports_to_json, Diagnostic, Location, Report, Severity};
pub use pass::{Context, Pass, Registry};

use impact_ir::Program;
use impact_layout::pipeline::{
    Checkpoint, Pipeline, PipelineError, PipelineObserver, PipelineResult,
};
use impact_layout::placement::Placement;
use impact_profile::Profile;

/// Lints a finished pipeline run with the standard registry.
#[must_use]
pub fn lint_result(result: &PipelineResult) -> Report {
    Registry::standard().run(&Context::of_result(result))
}

/// Lints a bare program (plus optional profile) with the program-level
/// registry — usable before any layout exists.
#[must_use]
pub fn lint_program(program: &Program, profile: Option<&Profile>) -> Report {
    let mut ctx = Context::program_only(program);
    if let Some(p) = profile {
        ctx = ctx.with_profile(p);
    }
    Registry::program_lints().run(&ctx)
}

/// Verifies a placement against a program, explaining every violation.
///
/// This is the diagnostic replacement for the deprecated bare-bool
/// `Placement::is_valid_for`: an empty report means the placement covers
/// the program exactly (every block placed, no overlaps or gaps, aligned).
#[must_use]
pub fn verify_placement(program: &Program, placement: &Placement) -> Report {
    let ctx = Context::program_only(program).with_placement(placement);
    let mut r = Registry::empty();
    r.register(Box::new(placement::PlacementCoverage));
    r.register(Box::new(placement::PlacementOverlap));
    r.register(Box::new(placement::Alignment));
    r.run(&ctx)
}

/// A [`Pipeline`] that lints its own intermediate artifacts as it runs
/// (the opt-in "checked mode").
///
/// Program lints run on the profiled and inlined programs; the full
/// standard registry runs on the final result. All findings accumulate
/// into one [`Report`] returned next to the pipeline output.
#[derive(Debug, Default)]
pub struct CheckedPipeline {
    pipeline: Pipeline,
}

impl CheckedPipeline {
    /// Wraps a configured pipeline.
    #[must_use]
    pub fn new(pipeline: Pipeline) -> Self {
        Self { pipeline }
    }

    /// Runs the pipeline, linting at every checkpoint.
    #[must_use]
    pub fn run(&self, program: &Program) -> (PipelineResult, Report) {
        let mut observer = LintObserver::default();
        let result = self.pipeline.run_observed(program, &mut observer);
        (result, observer.report)
    }

    /// [`CheckedPipeline::run`] with input validation up front.
    pub fn try_run(&self, program: &Program) -> Result<(PipelineResult, Report), PipelineError> {
        let mut observer = LintObserver::default();
        let result = self.pipeline.try_run_observed(program, &mut observer)?;
        Ok((result, observer.report))
    }
}

/// Observer that lints each pipeline checkpoint into one report.
#[derive(Debug, Default)]
struct LintObserver {
    report: Report,
}

impl PipelineObserver for LintObserver {
    fn checkpoint(&mut self, checkpoint: &Checkpoint<'_>) {
        match checkpoint {
            Checkpoint::Profiled { program, profile }
            | Checkpoint::Inlined { program, profile } => {
                let ctx = Context::program_only(program).with_profile(profile);
                self.report
                    .diagnostics
                    .extend(Registry::program_lints().run(&ctx).diagnostics);
            }
            // Trace selection is linted as part of the final result
            // (IPA105 needs the placement too).
            Checkpoint::TracesSelected { .. } => {}
            Checkpoint::Placed { result } => {
                let ctx = Context::of_result(result);
                let mut registry = Registry::placement_verifiers();
                registry.register(Box::new(cache::ConflictPressure));
                self.report
                    .diagnostics
                    .extend(registry.run(&ctx).diagnostics);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use impact_layout::pipeline::{Pipeline, PipelineConfig};

    use super::*;

    #[test]
    fn checked_pipeline_is_clean_on_a_workload() {
        let w = impact_workloads::by_name("tee").expect("tee exists");
        let checked = CheckedPipeline::new(Pipeline::new(PipelineConfig::default()));
        let (result, report) = checked.run(&w.program);
        assert!(report.is_clean(), "{}", report.render());
        // The checked run produced the same placement as a plain run.
        let plain = Pipeline::new(PipelineConfig::default()).run(&w.program);
        assert_eq!(result.placement, plain.placement);
    }

    #[test]
    fn verify_placement_replaces_is_valid_for() {
        let w = impact_workloads::by_name("wc").expect("wc exists");
        let natural = impact_layout::baseline::natural(&w.program);
        let report = verify_placement(&w.program, &natural);
        assert!(report.is_clean(), "{}", report.render());
        #[allow(deprecated)]
        {
            assert_eq!(report.is_clean(), natural.is_valid_for(&w.program));
        }
    }

    #[test]
    fn lint_program_runs_without_layout_artifacts() {
        let w = impact_workloads::by_name("cmp").expect("cmp exists");
        let report = lint_program(&w.program, None);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn checked_try_run_rejects_bad_config() {
        let w = impact_workloads::by_name("wc").expect("wc exists");
        let checked = CheckedPipeline::new(Pipeline::new(PipelineConfig {
            min_prob: 0.0,
            ..PipelineConfig::default()
        }));
        assert!(checked.try_run(&w.program).is_err());
    }
}

//! Pass-based static analysis and lints for the IMPACT-I pipeline.
//!
//! The reproduction's artifacts — [`Program`](impact_ir::Program)s,
//! [`Profile`](impact_profile::Profile)s, trace assignments, and
//! [`Placement`](impact_layout::placement::Placement)s — obey invariants
//! that the rest of the codebase mostly asserts in tests or not at all.
//! This crate makes them first-class: each invariant is a [`Pass`] with a
//! stable diagnostic code, and a [`Registry`] runs passes over a
//! [`Context`] to produce a [`Report`] renderable as text or JSON.
//!
//! # Codes
//!
//! | Code | Severity | Checks |
//! |--------|---------|--------|
//! | IPA001 | warning | blocks unreachable from their function entry |
//! | IPA002 | error | profile flow conservation (Kirchhoff's law on block counts) |
//! | IPA003 | error | outgoing branch mass equals block execution count |
//! | IPA004 | error | structural validation (dangling callees, bad targets) |
//! | IPA005 | warning | call-graph cycles (functions the inliner must skip) |
//! | IPA101 | error | every block has an address |
//! | IPA102 | error | blocks tile memory: no overlaps, no gaps |
//! | IPA103 | error | effective / non-executed split honored |
//! | IPA104 | error | 4-byte instruction alignment |
//! | IPA105 | warning | selected traces broken across the layout |
//! | IPA201 | warning | hot lines contesting one direct-mapped cache set |
//! | IPA301 | warning | loop body footprint exceeds the cache capacity |
//! | IPA302 | warning | concurrently-hot loop bodies on overlapping cache sets |
//! | IPA303 | warning | estimated miss-ratio bound exceeds the threshold |
//! | IPA401 | warning | hot uncontested arc realized as a far transfer |
//! | IPA402 | warning | hot call pair separated beyond the cache tier |
//! | IPA403 | warning | loop hot core straddling avoidable cache lines |
//! | IPA404 | warning | never-executed bytes inside an executed span |
//! | IPA405 | warning | static memory-traffic bound exceeds the threshold |
//!
//! The contract: a full pipeline run over any of the bundled workloads
//! lints **error-free** (`impact lint` relies on this; warnings are
//! informational).
//!
//! # Static estimation
//!
//! Beyond linting measured artifacts, this crate can run the whole
//! placement pipeline *without a profile*: [`freq::StaticProfiler`]
//! predicts the weighted call/control graphs from program structure
//! (loop nesting from [`flow`], Ball/Larus-style branch heuristics from
//! [`freq`]), and [`analyze_static`] feeds that prediction through the
//! five-step pipeline, verifies the resulting placement, and bounds its
//! miss ratio with [`conflict::estimate_miss_bound`]. `impact analyze`
//! is a thin wrapper over it.
//!
//! # Example
//!
//! ```
//! use impact_layout::pipeline::{Pipeline, PipelineConfig};
//!
//! let w = impact_workloads::by_name("wc").unwrap();
//! let result = Pipeline::new(PipelineConfig::default()).run(&w.program);
//! let report = impact_analyze::lint_result(&result);
//! assert!(report.is_clean(), "{}", report.render());
//! ```

pub mod advisor;
pub mod cache;
pub mod conflict;
pub mod diag;
pub mod flow;
pub mod freq;
pub mod pass;
pub mod placement;
pub mod program;
pub mod score;

pub use cache::ConflictConfig;
pub use conflict::{estimate_miss_bound, MissBound};
pub use diag::{reports_to_json, Diagnostic, Location, Report, Severity};
pub use freq::StaticProfiler;
pub use pass::{Context, Pass, Registry};
pub use score::{score_placement, PlacementScorer, Score, ScoreCard, ScoreConfig};

/// Version stamp of every JSON document this crate renders for the CLI
/// and the HTTP service (`impact analyze`/`impact advise` `--json`,
/// `/v1/analyze`, `/v1/advise`). Bump when a field changes meaning or
/// shape; consumers pin on it.
pub const SCHEMA_VERSION: u64 = 1;

use impact_ir::Program;
use impact_layout::pipeline::{
    Checkpoint, Pipeline, PipelineConfig, PipelineError, PipelineObserver, PipelineResult,
};
use impact_layout::placement::Placement;
use impact_profile::Profile;

/// Lints a finished pipeline run with the standard registry.
#[must_use]
pub fn lint_result(result: &PipelineResult) -> Report {
    Registry::standard().run(&Context::of_result(result))
}

/// Lints a bare program (plus optional profile) with the program-level
/// registry — usable before any layout exists.
#[must_use]
pub fn lint_program(program: &Program, profile: Option<&Profile>) -> Report {
    let mut ctx = Context::program_only(program);
    if let Some(p) = profile {
        ctx = ctx.with_profile(p);
    }
    Registry::program_lints().run(&ctx)
}

/// Verifies a placement against a program, explaining every violation.
///
/// This is the diagnostic replacement for the deprecated bare-bool
/// `Placement::is_valid_for`: an empty report means the placement covers
/// the program exactly (every block placed, no overlaps or gaps, aligned).
#[must_use]
pub fn verify_placement(program: &Program, placement: &Placement) -> Report {
    let ctx = Context::program_only(program).with_placement(placement);
    let mut r = Registry::empty();
    r.register(Box::new(placement::PlacementCoverage));
    r.register(Box::new(placement::PlacementOverlap));
    r.register(Box::new(placement::Alignment));
    r.run(&ctx)
}

/// The result of a profile-free, end-to-end static analysis.
#[derive(Debug)]
pub struct StaticAnalysis {
    /// The pipeline output driven by the [`StaticProfiler`]'s predicted
    /// profile (`result.profile` *is* the static profile of the placed
    /// program).
    pub result: PipelineResult,
    /// Placement verification (`IPA101`–`IPA104`) plus the static
    /// cache-conflict analyses (`IPA301`–`IPA303`).
    pub report: Report,
    /// Analytic miss-ratio bound of the placement under the static
    /// profile at the configured geometry.
    pub miss_bound: MissBound,
    /// Normalized placement scores (ExtTSP and distance-tier) of the
    /// pipeline's placement under the static profile.
    pub scores: ScoreCard,
}

impl StaticAnalysis {
    /// The JSON document both `impact analyze --json` (one array entry
    /// per target) and `POST /v1/analyze` (a single object) emit —
    /// shared so the two surfaces cannot drift apart.
    #[must_use]
    pub fn to_json_for_target(&self, target: &str) -> impact_support::json::Json {
        use impact_support::json::Json;
        use impact_support::ToJson;

        let mut hot: Vec<(u64, String)> = self
            .result
            .program
            .functions()
            .map(|(fid, f)| (self.result.profile.func_weight(fid), f.name().to_owned()))
            .collect();
        hot.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let bound = self.miss_bound;
        Json::Obj(vec![
            ("schema_version".to_string(), SCHEMA_VERSION.to_json()),
            ("target".to_string(), target.to_json()),
            (
                "total_bytes".to_string(),
                self.result.placement.total_bytes().to_json(),
            ),
            ("scores".to_string(), scores_json(self.scores)),
            (
                "miss_bound".to_string(),
                Json::Obj(vec![
                    ("ratio".to_string(), bound.ratio().to_json()),
                    ("cold_lines".to_string(), bound.cold_lines.to_json()),
                    (
                        "conflict_weight".to_string(),
                        bound.conflict_weight.to_json(),
                    ),
                    ("accesses".to_string(), bound.accesses.to_json()),
                ]),
            ),
            (
                "hot_functions".to_string(),
                Json::Arr(
                    hot.iter()
                        .take(8)
                        .map(|(w, n)| {
                            Json::Obj(vec![
                                ("name".to_string(), n.as_str().to_json()),
                                ("estimated_weight".to_string(), w.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("report".to_string(), self.report.to_json()),
        ])
    }
}

/// Runs the five-step placement pipeline **without executing the
/// program**: the profile is predicted by [`StaticProfiler`], the
/// resulting placement is verified, and its miss ratio is bounded
/// analytically.
///
/// This is the engine behind `impact analyze` and `POST /v1/analyze`.
///
/// # Errors
///
/// Propagates [`PipelineError`] for invalid configs or malformed
/// programs, exactly like [`Pipeline::try_run`].
pub fn analyze_static(
    program: &Program,
    config: &PipelineConfig,
    conflict: ConflictConfig,
) -> Result<StaticAnalysis, PipelineError> {
    let source = StaticProfiler::new();
    let result = Pipeline::new(config.clone()).try_run_with_source(program, &source)?;
    let mut report = verify_placement(&result.program, &result.placement);
    let ctx = Context::of_result(&result).with_conflict(conflict);
    report
        .diagnostics
        .extend(Registry::static_analyses().run(&ctx).diagnostics);
    let miss_bound = estimate_miss_bound(
        &result.program,
        &result.profile,
        &result.placement,
        &conflict,
    );
    let scores = score_placement(
        &result.program,
        &result.profile,
        &result.placement,
        score_config_for(conflict),
    );
    Ok(StaticAnalysis {
        result,
        report,
        miss_bound,
        scores,
    })
}

/// The scoring geometry implied by a conflict configuration: the same
/// cache line size, everything else at the scorers' defaults.
#[must_use]
pub fn score_config_for(conflict: ConflictConfig) -> ScoreConfig {
    ScoreConfig {
        line_bytes: conflict.line_bytes,
        ..ScoreConfig::default()
    }
}

fn scores_json(scores: ScoreCard) -> impact_support::json::Json {
    use impact_support::json::Json;
    use impact_support::ToJson;
    Json::Obj(vec![
        ("exttsp".to_string(), scores.exttsp.to_json()),
        ("tier".to_string(), scores.tier.to_json()),
    ])
}

/// The result of a profile-free advisory run: a full [`StaticAnalysis`]
/// plus the layout advisors' findings (`IPA401`–`IPA405`) over the
/// pipeline's placement.
#[derive(Debug)]
pub struct Advice {
    /// The underlying static analysis (pipeline result, verification
    /// report, miss bound, scores).
    pub analysis: StaticAnalysis,
    /// The advisors' findings, each with a concrete reorder hint.
    pub advice: Report,
}

/// Advisor codes in registry order, used for the per-pass regression
/// table of a differential advisory.
pub const ADVISOR_CODES: [&str; 5] = ["IPA401", "IPA402", "IPA403", "IPA404", "IPA405"];

impl Advice {
    /// The JSON document both `impact advise --json` (one array entry
    /// per target) and `POST /v1/advise` (a single object) emit —
    /// shared so the two surfaces cannot drift apart.
    #[must_use]
    pub fn to_json_for_target(&self, target: &str) -> impact_support::json::Json {
        use impact_support::json::Json;
        use impact_support::ToJson;
        Json::Obj(vec![
            ("schema_version".to_string(), SCHEMA_VERSION.to_json()),
            ("target".to_string(), target.to_json()),
            (
                "total_bytes".to_string(),
                self.analysis.result.placement.total_bytes().to_json(),
            ),
            ("scores".to_string(), scores_json(self.analysis.scores)),
            (
                "miss_bound_ratio".to_string(),
                self.analysis.miss_bound.ratio().to_json(),
            ),
            ("advice".to_string(), self.advice.to_json()),
        ])
    }

    /// Differential advisory: compares the pipeline's placement against
    /// `baseline` (an alternative placement of the **same** post-inline
    /// program), reporting both score cards, their deltas, a per-pass
    /// finding-count regression table, and a `better` verdict (the
    /// pipeline placement strictly beats the baseline on ExtTSP).
    #[must_use]
    pub fn diff_json_for_target(
        &self,
        target: &str,
        baseline_name: &str,
        baseline: &Placement,
        conflict: ConflictConfig,
    ) -> impact_support::json::Json {
        use impact_support::json::Json;
        use impact_support::ToJson;

        let result = &self.analysis.result;
        let base_scores = score_placement(
            &result.program,
            &result.profile,
            baseline,
            score_config_for(conflict),
        );
        let ctx = Context::program_only(&result.program)
            .with_profile(&result.profile)
            .with_placement(baseline)
            .with_conflict(conflict);
        let base_advice = Registry::advisors().run(&ctx);
        let scores = self.analysis.scores;

        let regressions = ADVISOR_CODES
            .iter()
            .map(|&code| {
                Json::Obj(vec![
                    ("code".to_string(), code.to_json()),
                    (
                        "findings".to_string(),
                        self.advice.with_code(code).count().to_json(),
                    ),
                    (
                        "baseline_findings".to_string(),
                        base_advice.with_code(code).count().to_json(),
                    ),
                ])
            })
            .collect();

        Json::Obj(vec![
            ("schema_version".to_string(), SCHEMA_VERSION.to_json()),
            ("target".to_string(), target.to_json()),
            ("baseline".to_string(), baseline_name.to_json()),
            ("scores".to_string(), scores_json(scores)),
            ("baseline_scores".to_string(), scores_json(base_scores)),
            (
                "delta".to_string(),
                Json::Obj(vec![
                    (
                        "exttsp".to_string(),
                        (scores.exttsp - base_scores.exttsp).to_json(),
                    ),
                    (
                        "tier".to_string(),
                        (scores.tier - base_scores.tier).to_json(),
                    ),
                ]),
            ),
            ("regressions".to_string(), Json::Arr(regressions)),
            (
                "better".to_string(),
                (scores.exttsp > base_scores.exttsp).to_json(),
            ),
        ])
    }
}

/// Runs [`analyze_static`] and then the layout advisors over the
/// resulting placement — the engine behind `impact advise` and
/// `POST /v1/advise`.
///
/// # Errors
///
/// Propagates [`PipelineError`] exactly like [`analyze_static`].
pub fn advise_static(
    program: &Program,
    config: &PipelineConfig,
    conflict: ConflictConfig,
) -> Result<Advice, PipelineError> {
    let analysis = analyze_static(program, config, conflict)?;
    let ctx = Context::of_result(&analysis.result).with_conflict(conflict);
    let advice = Registry::advisors().run(&ctx);
    Ok(Advice { analysis, advice })
}

/// A [`Pipeline`] that lints its own intermediate artifacts as it runs
/// (the opt-in "checked mode").
///
/// Program lints run on the profiled and inlined programs; the full
/// standard registry runs on the final result. All findings accumulate
/// into one [`Report`] returned next to the pipeline output.
#[derive(Debug, Default)]
pub struct CheckedPipeline {
    pipeline: Pipeline,
}

impl CheckedPipeline {
    /// Wraps a configured pipeline.
    #[must_use]
    pub fn new(pipeline: Pipeline) -> Self {
        Self { pipeline }
    }

    /// Runs the pipeline, linting at every checkpoint.
    #[must_use]
    pub fn run(&self, program: &Program) -> (PipelineResult, Report) {
        let mut observer = LintObserver::default();
        let result = self.pipeline.run_observed(program, &mut observer);
        (result, observer.report)
    }

    /// [`CheckedPipeline::run`] with input validation up front.
    pub fn try_run(&self, program: &Program) -> Result<(PipelineResult, Report), PipelineError> {
        let mut observer = LintObserver::default();
        let result = self.pipeline.try_run_observed(program, &mut observer)?;
        Ok((result, observer.report))
    }
}

/// Observer that lints each pipeline checkpoint into one report.
#[derive(Debug, Default)]
struct LintObserver {
    report: Report,
}

impl PipelineObserver for LintObserver {
    fn checkpoint(&mut self, checkpoint: &Checkpoint<'_>) {
        match checkpoint {
            Checkpoint::Profiled { program, profile }
            | Checkpoint::Inlined { program, profile } => {
                let ctx = Context::program_only(program).with_profile(profile);
                self.report
                    .diagnostics
                    .extend(Registry::program_lints().run(&ctx).diagnostics);
            }
            // Trace selection is linted as part of the final result
            // (IPA105 needs the placement too).
            Checkpoint::TracesSelected { .. } => {}
            Checkpoint::Placed { result } => {
                let ctx = Context::of_result(result);
                let mut registry = Registry::placement_verifiers();
                registry.register(Box::new(cache::ConflictPressure));
                self.report
                    .diagnostics
                    .extend(registry.run(&ctx).diagnostics);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use impact_layout::pipeline::{Pipeline, PipelineConfig};

    use super::*;

    #[test]
    fn checked_pipeline_is_clean_on_a_workload() {
        let w = impact_workloads::by_name("tee").expect("tee exists");
        let checked = CheckedPipeline::new(Pipeline::new(PipelineConfig::default()));
        let (result, report) = checked.run(&w.program);
        assert!(report.is_clean(), "{}", report.render());
        // The checked run produced the same placement as a plain run.
        let plain = Pipeline::new(PipelineConfig::default()).run(&w.program);
        assert_eq!(result.placement, plain.placement);
    }

    #[test]
    fn verify_placement_replaces_is_valid_for() {
        let w = impact_workloads::by_name("wc").expect("wc exists");
        let natural = impact_layout::baseline::natural(&w.program);
        let report = verify_placement(&w.program, &natural);
        assert!(report.is_clean(), "{}", report.render());
        #[allow(deprecated)]
        {
            assert_eq!(report.is_clean(), natural.is_valid_for(&w.program));
        }
    }

    #[test]
    fn lint_program_runs_without_layout_artifacts() {
        let w = impact_workloads::by_name("cmp").expect("cmp exists");
        let report = lint_program(&w.program, None);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn static_analysis_places_every_workload_error_free() {
        for w in impact_workloads::all() {
            let analysis = analyze_static(
                &w.program,
                &PipelineConfig::default(),
                ConflictConfig::default(),
            )
            .expect("well-formed workload");
            assert_eq!(
                analysis.report.error_count(),
                0,
                "{}: {}",
                w.name,
                analysis.report.render()
            );
            let b = analysis.miss_bound;
            assert!(b.accesses > 0, "{}: static profile is non-trivial", w.name);
            assert!(b.ratio() >= 0.0 && b.ratio() <= 1.0);
        }
    }

    #[test]
    fn static_analysis_rejects_bad_config() {
        let w = impact_workloads::by_name("wc").expect("wc exists");
        let bad = PipelineConfig {
            min_prob: 0.0,
            ..PipelineConfig::default()
        };
        assert!(analyze_static(&w.program, &bad, ConflictConfig::default()).is_err());
    }

    #[test]
    fn checked_try_run_rejects_bad_config() {
        let w = impact_workloads::by_name("wc").expect("wc exists");
        let checked = CheckedPipeline::new(Pipeline::new(PipelineConfig {
            min_prob: 0.0,
            ..PipelineConfig::default()
        }));
        assert!(checked.try_run(&w.program).is_err());
    }
}

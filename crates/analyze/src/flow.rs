//! Control-flow and call-graph structure: dominators, natural loops, the
//! loop-nesting forest, and call-graph SCC condensation.
//!
//! These are the structural facts every *static* (profile-free) analysis
//! is built on: branch-prediction heuristics need to know which edges
//! close loops ([`LoopForest`]), frequency propagation over the call
//! graph needs recursion collapsed into components processed in
//! topological order ([`CallSccs`]), and the cache-conflict passes need
//! per-loop code footprints. Everything here is derived from the
//! [`Program`] alone — no profile, no execution.

use std::collections::BTreeMap;

use impact_ir::{BlockId, FuncId, Function, Program, Terminator};

/// The dominator tree of one function, computed with the iterative
/// Cooper–Harvey–Kennedy algorithm over a reverse-postorder numbering.
///
/// Blocks unreachable from the function entry have no dominator
/// information ([`Dominators::is_reachable`] returns `false`); queries
/// about them answer conservatively (`dominates` is `false`).
#[derive(Debug, Clone)]
pub struct Dominators {
    /// Immediate dominator per block (`idom[entry] == entry`); `None`
    /// for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// Reverse postorder over reachable blocks, starting at the entry.
    rpo: Vec<BlockId>,
    entry: BlockId,
}

impl Dominators {
    /// Computes the dominator tree of `func`.
    #[must_use]
    pub fn compute(func: &Function) -> Self {
        let n = func.block_count();
        let entry = func.entry();

        // Postorder DFS from the entry (iterative, explicit state).
        let mut postorder: Vec<BlockId> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        visited[entry.index()] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = func.block(b).terminator().successors();
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(b);
                stack.pop();
            }
        }
        let mut rpo = postorder.clone();
        rpo.reverse();
        // Postorder number per block (reachable only).
        let mut po_num = vec![usize::MAX; n];
        for (i, &b) in postorder.iter().enumerate() {
            po_num[b.index()] = i;
        }

        let preds = func.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while po_num[a.index()] < po_num[b.index()] {
                    a = idom[a.index()].expect("processed block has an idom");
                }
                while po_num[b.index()] < po_num[a.index()] {
                    b = idom[b.index()].expect("processed block has an idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if b == entry {
                    continue;
                }
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }

        Self { idom, rpo, entry }
    }

    /// The function entry block.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Immediate dominator of `b` (`entry` for the entry itself); `None`
    /// when `b` is unreachable.
    #[must_use]
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// `true` when `b` is reachable from the function entry.
    #[must_use]
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.index()].is_some()
    }

    /// `true` when `a` dominates `b` (reflexive: every block dominates
    /// itself). Unreachable blocks dominate nothing and are dominated by
    /// nothing.
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = self.idom[cur.index()].expect("reachable block has an idom");
        }
    }

    /// Reverse postorder over the reachable blocks (entry first). The
    /// natural order for forward dataflow — frequency propagation visits
    /// blocks in this order so predecessors are (mostly) settled first.
    #[must_use]
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }
}

/// One natural loop: a header plus every block that can reach one of the
/// loop's back-edge sources without leaving through the header.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (target of the back edges, dominates the body).
    pub header: BlockId,
    /// Back-edge sources (`latch -> header` with header dominating
    /// latch), in block order.
    pub latches: Vec<BlockId>,
    /// Every block of the loop, sorted, header included.
    pub body: Vec<BlockId>,
}

impl NaturalLoop {
    /// `true` when `b` belongs to this loop.
    #[must_use]
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.binary_search(&b).is_ok()
    }

    /// Static code footprint of the loop body in bytes.
    #[must_use]
    pub fn body_bytes(&self, func: &Function) -> u64 {
        self.body.iter().map(|&b| func.block(b).size_bytes()).sum()
    }
}

/// The loop-nesting forest of one function: all natural loops (merged by
/// header) plus parent/depth queries.
#[derive(Debug, Clone)]
pub struct LoopForest {
    /// All loops, outermost-first within a nest (sorted by body size,
    /// largest first, so parents precede children).
    loops: Vec<NaturalLoop>,
    /// Parent loop index per loop (`None` = top-level).
    parent: Vec<Option<usize>>,
    /// Nesting depth per block: 0 outside any loop, 1 in a top-level
    /// loop body, and so on.
    depth: Vec<u32>,
    /// Innermost containing loop per block.
    innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Detects the natural loops of `func` and builds the nesting forest.
    ///
    /// Back edges are edges `t -> h` where `h` dominates `t`; loops
    /// sharing a header are merged (the usual convention). Irreducible
    /// cycles (no dominating header) are not recognized as loops — the
    /// heuristics then simply see no back edge, which is the safe
    /// fallback.
    #[must_use]
    pub fn compute(func: &Function, doms: &Dominators) -> Self {
        let n = func.block_count();
        let preds = func.predecessors();

        // Back edges grouped by header.
        let mut latches_of: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();
        for (b, block) in func.blocks() {
            if !doms.is_reachable(b) {
                continue;
            }
            for succ in block.terminator().successors() {
                if doms.dominates(succ, b) {
                    latches_of.entry(succ).or_default().push(b);
                }
            }
        }

        // Body of each loop: backward reachability from the latches,
        // stopping at the header.
        let mut loops: Vec<NaturalLoop> = latches_of
            .into_iter()
            .map(|(header, latches)| {
                let mut in_body = vec![false; n];
                in_body[header.index()] = true;
                let mut stack: Vec<BlockId> = latches.clone();
                while let Some(b) = stack.pop() {
                    if in_body[b.index()] {
                        continue;
                    }
                    in_body[b.index()] = true;
                    for &p in &preds[b.index()] {
                        if !in_body[p.index()] && doms.is_reachable(p) {
                            stack.push(p);
                        }
                    }
                }
                let body: Vec<BlockId> = (0..n)
                    .map(BlockId::new)
                    .filter(|b| in_body[b.index()])
                    .collect();
                NaturalLoop {
                    header,
                    latches,
                    body,
                }
            })
            .collect();

        // Parents precede children once sorted by body size (a nested
        // loop's body is a strict subset of its ancestors').
        loops.sort_by_key(|l| (std::cmp::Reverse(l.body.len()), l.header));

        let mut parent: Vec<Option<usize>> = vec![None; loops.len()];
        for i in 0..loops.len() {
            // The smallest loop strictly containing this loop's header
            // (other than itself) is the parent.
            let mut best: Option<usize> = None;
            for (j, outer) in loops.iter().enumerate() {
                if j == i || outer.header == loops[i].header {
                    continue;
                }
                if outer.contains(loops[i].header) {
                    best = match best {
                        None => Some(j),
                        Some(cur) if loops[j].body.len() < loops[cur].body.len() => Some(j),
                        keep => keep,
                    };
                }
            }
            parent[i] = best;
        }

        let mut depth = vec![0u32; n];
        let mut innermost: Vec<Option<usize>> = vec![None; n];
        for b in 0..n {
            let id = BlockId::new(b);
            let containing: Vec<usize> = loops
                .iter()
                .enumerate()
                .filter(|(_, l)| l.contains(id))
                .map(|(i, _)| i)
                .collect();
            depth[b] = containing.len() as u32;
            innermost[b] = containing.into_iter().min_by_key(|&i| loops[i].body.len());
        }

        Self {
            loops,
            parent,
            depth,
            innermost,
        }
    }

    /// All loops, parents before children.
    #[must_use]
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// Parent loop of loop `i` (`None` for top-level loops).
    #[must_use]
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Loop-nesting depth of a block (0 = outside every loop).
    #[must_use]
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// Index of the innermost loop containing `b`, if any.
    #[must_use]
    pub fn innermost(&self, b: BlockId) -> Option<usize> {
        self.innermost[b.index()]
    }

    /// The deepest nesting level in the function.
    #[must_use]
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// `true` when the edge `from -> to` is a back edge (closes a loop
    /// whose header is `to` and whose body contains `from`).
    #[must_use]
    pub fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.loops
            .iter()
            .any(|l| l.header == to && l.contains(from))
    }

    /// `true` when the edge `from -> to` leaves the innermost loop
    /// containing `from` (a loop-exit edge).
    #[must_use]
    pub fn is_loop_exit(&self, from: BlockId, to: BlockId) -> bool {
        match self.innermost(from) {
            Some(i) => !self.loops[i].contains(to),
            None => false,
        }
    }
}

/// Strongly connected components of the static call graph, in
/// caller-before-callee topological order of the condensation.
///
/// Frequency propagation over the call graph processes components in
/// this order: by the time a component is reached, every call into it
/// from earlier components has a settled frequency. A component of more
/// than one function — or one function calling itself — is recursion,
/// which the estimator handles with bounded iteration instead of exact
/// solving.
#[derive(Debug, Clone)]
pub struct CallSccs {
    /// Components in topological order (callers first); functions within
    /// a component are in id order.
    components: Vec<Vec<FuncId>>,
    /// Component index per function.
    comp_of: Vec<usize>,
    /// Whether each component contains a cycle (size > 1 or a self-call).
    cyclic: Vec<bool>,
}

impl CallSccs {
    /// Computes the SCC condensation of `program`'s call graph
    /// (iterative Tarjan, covering unreachable functions too).
    #[must_use]
    pub fn compute(program: &Program) -> Self {
        let n = program.function_count();
        let cg = program.call_graph();
        let callees: Vec<Vec<FuncId>> = (0..n).map(|f| cg.callees_of(FuncId::new(f))).collect();

        // Iterative Tarjan.
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![usize::MAX; n];
        let mut on_stack = vec![false; n];
        let mut scc_stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<Vec<FuncId>> = Vec::new();
        let mut comp_of = vec![usize::MAX; n];

        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            // Explicit DFS frame: (node, next-callee cursor).
            let mut call_stack: Vec<(usize, usize)> = vec![(root, 0)];
            index[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            scc_stack.push(root);
            on_stack[root] = true;

            while let Some(&mut (v, ref mut cursor)) = call_stack.last_mut() {
                if *cursor < callees[v].len() {
                    let w = callees[v][*cursor].index();
                    *cursor += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        scc_stack.push(w);
                        on_stack[w] = true;
                        call_stack.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(&(parent, _)) = call_stack.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let mut comp: Vec<FuncId> = Vec::new();
                        loop {
                            let w = scc_stack.pop().expect("scc stack underflow");
                            on_stack[w] = false;
                            comp_of[w] = components.len();
                            comp.push(FuncId::new(w));
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        components.push(comp);
                    }
                }
            }
        }

        // Tarjan emits components callee-first; reverse for caller-first.
        components.reverse();
        for c in comp_of.iter_mut() {
            *c = components.len() - 1 - *c;
        }

        let cyclic: Vec<bool> = components
            .iter()
            .map(|comp| comp.len() > 1 || comp.iter().any(|&f| callees[f.index()].contains(&f)))
            .collect();

        Self {
            components,
            comp_of,
            cyclic,
        }
    }

    /// Components in caller-before-callee topological order.
    #[must_use]
    pub fn components(&self) -> &[Vec<FuncId>] {
        &self.components
    }

    /// Index of the component containing `f`.
    #[must_use]
    pub fn component_of(&self, f: FuncId) -> usize {
        self.comp_of[f.index()]
    }

    /// `true` when component `i` contains recursion.
    #[must_use]
    pub fn is_cyclic(&self, i: usize) -> bool {
        self.cyclic[i]
    }

    /// Number of components that contain recursion.
    #[must_use]
    pub fn cyclic_count(&self) -> usize {
        self.cyclic.iter().filter(|&&c| c).count()
    }
}

/// `true` when the edge `from -> to` exists in `func`'s CFG (successor
/// relation, calls reporting their return continuation).
#[must_use]
pub fn has_edge(func: &Function, from: BlockId, to: BlockId) -> bool {
    func.block(from).terminator().successors().contains(&to)
}

/// Summary of one function's loop structure (for reports and the
/// `impact analyze` CLI).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopSummary {
    /// Number of natural loops.
    pub loops: usize,
    /// Deepest nesting level.
    pub max_depth: u32,
}

/// Loop summaries for every function of `program`, indexed by function
/// id.
#[must_use]
pub fn loop_summaries(program: &Program) -> Vec<LoopSummary> {
    program
        .functions()
        .map(|(_, func)| {
            let doms = Dominators::compute(func);
            let forest = LoopForest::compute(func, &doms);
            LoopSummary {
                loops: forest.loops().len(),
                max_depth: forest.max_depth(),
            }
        })
        .collect()
}

/// Convenience: whether a terminator transfers control out of the
/// function (used by the branch heuristics).
#[must_use]
pub fn is_exit_like(term: &Terminator) -> bool {
    term.is_function_exit()
}

#[cfg(test)]
mod tests {
    use impact_ir::{BranchBias, Instr, ProgramBuilder, Terminator};

    use super::*;

    /// A diamond followed by a self-loop and an exit:
    /// b0 -> {b1, b2} -> b3 -> b3 (latch) -> b4.
    fn diamond_loop() -> impact_ir::Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b0 = f.block(vec![Instr::IntAlu]);
        let b1 = f.block(vec![Instr::IntAlu]);
        let b2 = f.block(vec![Instr::IntAlu]);
        let b3 = f.block(vec![Instr::Load]);
        let b4 = f.block(vec![]);
        f.terminate(b0, Terminator::branch(b1, b2, BranchBias::fixed(0.5)));
        f.terminate(b1, Terminator::jump(b3));
        f.terminate(b2, Terminator::jump(b3));
        f.terminate(b3, Terminator::branch(b3, b4, BranchBias::fixed(0.9)));
        f.terminate(b4, Terminator::Exit);
        let mid = f.finish();
        pb.set_entry(mid);
        pb.finish().unwrap()
    }

    /// Two nested loops: outer header b1 (latch b4), inner header b2
    /// (latch b3).
    fn nested_loops() -> impact_ir::Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b0 = f.block(vec![]);
        let b1 = f.block(vec![Instr::IntAlu]); // outer header
        let b2 = f.block(vec![Instr::IntAlu]); // inner header
        let b3 = f.block(vec![Instr::Load]); // inner latch
        let b4 = f.block(vec![]); // outer latch
        let b5 = f.block(vec![]);
        f.terminate(b0, Terminator::jump(b1));
        f.terminate(b1, Terminator::jump(b2));
        f.terminate(b2, Terminator::jump(b3));
        f.terminate(b3, Terminator::branch(b2, b4, BranchBias::fixed(0.8)));
        f.terminate(b4, Terminator::branch(b1, b5, BranchBias::fixed(0.7)));
        f.terminate(b5, Terminator::Exit);
        let mid = f.finish();
        pb.set_entry(mid);
        pb.finish().unwrap()
    }

    #[test]
    fn dominators_of_a_diamond() {
        let p = diamond_loop();
        let f = p.function(p.entry());
        let d = Dominators::compute(f);
        let b = BlockId::new;
        assert_eq!(d.idom(b(0)), Some(b(0)));
        assert_eq!(d.idom(b(1)), Some(b(0)));
        assert_eq!(d.idom(b(2)), Some(b(0)));
        // Join point: dominated by the fork, not either arm.
        assert_eq!(d.idom(b(3)), Some(b(0)));
        assert_eq!(d.idom(b(4)), Some(b(3)));
        assert!(d.dominates(b(0), b(4)));
        assert!(d.dominates(b(3), b(4)));
        assert!(!d.dominates(b(1), b(3)));
        assert!(d.dominates(b(3), b(3)), "dominance is reflexive");
    }

    #[test]
    fn unreachable_blocks_have_no_dominators() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let b0 = f.block(vec![]);
        let dead = f.block(vec![]);
        f.terminate(b0, Terminator::Exit);
        f.terminate(dead, Terminator::jump(b0));
        let mid = f.finish();
        pb.set_entry(mid);
        let p = pb.finish().unwrap();
        let d = Dominators::compute(p.function(p.entry()));
        assert!(!d.is_reachable(BlockId::new(1)));
        assert!(!d.dominates(BlockId::new(0), BlockId::new(1)));
    }

    #[test]
    fn self_loop_is_detected() {
        let p = diamond_loop();
        let f = p.function(p.entry());
        let d = Dominators::compute(f);
        let forest = LoopForest::compute(f, &d);
        assert_eq!(forest.loops().len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.header, BlockId::new(3));
        assert_eq!(l.body, vec![BlockId::new(3)]);
        assert!(forest.is_back_edge(BlockId::new(3), BlockId::new(3)));
        assert!(forest.is_loop_exit(BlockId::new(3), BlockId::new(4)));
        assert_eq!(forest.depth(BlockId::new(3)), 1);
        assert_eq!(forest.depth(BlockId::new(0)), 0);
    }

    #[test]
    fn nesting_forest_orders_parents_first() {
        let p = nested_loops();
        let f = p.function(p.entry());
        let d = Dominators::compute(f);
        let forest = LoopForest::compute(f, &d);
        assert_eq!(forest.loops().len(), 2);
        // Outer loop (header b1) first, inner (header b2) second.
        assert_eq!(forest.loops()[0].header, BlockId::new(1));
        assert_eq!(forest.loops()[1].header, BlockId::new(2));
        assert_eq!(forest.parent(0), None);
        assert_eq!(forest.parent(1), Some(0));
        assert_eq!(forest.depth(BlockId::new(3)), 2);
        assert_eq!(forest.depth(BlockId::new(4)), 1);
        assert_eq!(forest.max_depth(), 2);
        assert_eq!(forest.innermost(BlockId::new(3)), Some(1));
        // Inner latch exits the inner loop to the outer latch.
        assert!(forest.is_loop_exit(BlockId::new(3), BlockId::new(4)));
        assert!(!forest.is_loop_exit(BlockId::new(3), BlockId::new(2)));
    }

    #[test]
    fn loop_body_bytes_sums_blocks() {
        let p = nested_loops();
        let f = p.function(p.entry());
        let d = Dominators::compute(f);
        let forest = LoopForest::compute(f, &d);
        let inner = &forest.loops()[1];
        // Inner body: b2 (2 instrs incl term = 8B) + b3 (2 instrs = 8B).
        assert_eq!(inner.body_bytes(f), 16);
    }

    /// main -> a -> b -> a (cycle), main -> c, d unreachable.
    fn scc_program() -> impact_ir::Program {
        let mut pb = ProgramBuilder::new();
        let a = pb.reserve("a");
        let b = pb.reserve("b");
        let c = pb.reserve("c");
        let mut main = pb.function("main");
        let m0 = main.block(vec![]);
        let m1 = main.block(vec![]);
        let m2 = main.block(vec![]);
        main.terminate(m0, Terminator::call(a, m1));
        main.terminate(m1, Terminator::call(c, m2));
        main.terminate(m2, Terminator::Exit);
        let mid = main.finish();
        let mut fa = pb.function_reserved(a);
        let a0 = fa.block(vec![]);
        let a1 = fa.block(vec![]);
        fa.terminate(a0, Terminator::call(b, a1));
        fa.terminate(a1, Terminator::Return);
        fa.finish();
        let mut fb = pb.function_reserved(b);
        let b0 = fb.block(vec![]);
        let b1 = fb.block(vec![]);
        fb.terminate(b0, Terminator::call(a, b1));
        fb.terminate(b1, Terminator::Return);
        fb.finish();
        let mut fc = pb.function_reserved(c);
        let c0 = fc.block(vec![]);
        fc.terminate(c0, Terminator::Return);
        fc.finish();
        let mut fd = pb.function("d");
        let d0 = fd.block(vec![]);
        fd.terminate(d0, Terminator::Return);
        fd.finish();
        pb.set_entry(mid);
        pb.finish().unwrap()
    }

    #[test]
    fn sccs_condense_recursion_and_order_callers_first() {
        let p = scc_program();
        let sccs = CallSccs::compute(&p);
        let a = p.function_by_name("a").unwrap();
        let b = p.function_by_name("b").unwrap();
        let c = p.function_by_name("c").unwrap();
        let main = p.entry();

        // a and b collapse into one cyclic component.
        assert_eq!(sccs.component_of(a), sccs.component_of(b));
        assert!(sccs.is_cyclic(sccs.component_of(a)));
        assert!(!sccs.is_cyclic(sccs.component_of(main)));
        assert!(!sccs.is_cyclic(sccs.component_of(c)));
        assert_eq!(sccs.cyclic_count(), 1);

        // Topological: main's component precedes both callees'.
        assert!(sccs.component_of(main) < sccs.component_of(a));
        assert!(sccs.component_of(main) < sccs.component_of(c));

        // Every function appears exactly once.
        let total: usize = sccs.components().iter().map(Vec::len).sum();
        assert_eq!(total, p.function_count());
    }

    #[test]
    fn self_recursion_is_cyclic() {
        let mut pb = ProgramBuilder::new();
        let me = pb.reserve("recur");
        let mut f = pb.function_reserved(me);
        let b0 = f.block(vec![]);
        let b1 = f.block(vec![]);
        f.terminate(b0, Terminator::call(me, b1));
        f.terminate(b1, Terminator::Exit);
        f.finish();
        pb.set_entry(me);
        let p = pb.finish().unwrap();
        let sccs = CallSccs::compute(&p);
        assert!(sccs.is_cyclic(sccs.component_of(p.entry())));
    }

    #[test]
    fn loop_summaries_cover_all_functions() {
        let p = scc_program();
        let s = loop_summaries(&p);
        assert_eq!(s.len(), p.function_count());
        assert!(s.iter().all(|x| x.loops == 0));
        let q = nested_loops();
        let s = loop_summaries(&q);
        assert_eq!(s[q.entry().index()].loops, 2);
        assert_eq!(s[q.entry().index()].max_depth, 2);
    }
}

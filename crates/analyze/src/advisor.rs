//! Layout advisor passes (`IPA401`–`IPA405`): placement defects a
//! reordering could fix, each reported with a concrete reorder hint.
//!
//! Where the IPA2xx/IPA3xx families *measure* conflict, the advisors
//! judge the placement against what the scorers (see [`crate::score`])
//! consider ideal and say what to move:
//!
//! * `IPA401` — a hot, uncontested arc realized as a far transfer when
//!   placing its endpoints adjacent would have made it a fall-through.
//! * `IPA402` — a hot call site separated from its callee's entry by
//!   more than one cache capacity: caller and callee can alias, and the
//!   transfer has no spatial locality.
//! * `IPA403` — a loop's hot core straddling more cache lines than a
//!   contiguous placement of the same bytes would touch.
//! * `IPA404` — never-executed bytes interleaved inside a function's
//!   executed span instead of being split off behind it.
//! * `IPA405` — the placement's static memory-traffic bound (the
//!   paper's traffic metric: words fetched per word executed) crossing
//!   the configured threshold.
//!
//! All five are warnings — a placement can be legitimately constrained —
//! and all stay quiet on degenerate geometry (IPA201 owns that error)
//! or missing artifacts. Thresholds are tuned so the paper pipeline's
//! placements are silent on every bundled workload (asserted by the
//! mutation tests).

use std::collections::{BTreeMap, BTreeSet};

use impact_ir::{Terminator, BYTES_PER_INSTR};

use crate::cache::ConflictConfig;
use crate::conflict::estimate_miss_bound;
use crate::diag::{Diagnostic, Location};
use crate::flow::{Dominators, LoopForest};
use crate::pass::{Context, Pass};

/// An arc only counts as "owning" a fall-through slot when it carries
/// at least this share of its source's outgoing mass (the pipeline's
/// own trace-growing threshold).
const DOMINANT_PROB: f64 = 0.7;

/// IPA403 tolerates this many cache lines beyond twice the contiguous
/// minimum: any contiguous run of `n` bytes can straddle one extra
/// line through misalignment alone.
const ALIGN_SLACK_LINES: u64 = 1;

/// IPA403's loop core: blocks executing at least this fraction of the
/// header's count — the spine that runs (nearly) every iteration.
/// Conditional arms below it are legitimately laid out as side traces.
const CORE_FRACTION: f64 = 0.9;

/// IPA405 tolerates a traffic bound up to this factor over the
/// natural-order baseline before blaming the placement: programs much
/// bigger than the cache pay high traffic under *any* layout, and the
/// bound's contention term is conservative enough that a good layout
/// can sit modestly above natural while simulating far below it.
const TRAFFIC_OVER_NATURAL: f64 = 1.25;

/// IPA404 fires when never-executed bytes inside the executed span
/// exceed this fraction of the span.
const COLD_SPAN_FRACTION: f64 = 0.25;

fn bad_geometry(cfg: &ConflictConfig) -> bool {
    cfg.line_bytes == 0 || cfg.cache_bytes < cfg.line_bytes
}

/// `IPA401` — a hot edge placed as a far transfer when a fall-through
/// was available.
///
/// The arc must be *uncontested*: it carries ≥ [`DOMINANT_PROB`] of its
/// source's outgoing mass and its source is the strictly heaviest
/// predecessor of its destination, so placing the two blocks adjacent
/// steals the slot from nothing hotter. Back edges are exempt (their
/// destination must sit before the loop body; adjacency is not
/// achievable), as are call continuations (the callee runs in between).
pub struct MisplacedFallThrough;

impl Pass for MisplacedFallThrough {
    fn code(&self) -> &'static str {
        "IPA401"
    }

    fn name(&self) -> &'static str {
        "misplaced-fall-through"
    }

    fn description(&self) -> &'static str {
        "hot uncontested arcs realized as far transfers instead of fall-throughs"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let (Some(placement), Some(profile)) = (ctx.placement, ctx.profile) else {
            return Vec::new();
        };
        let cfg = ctx.conflict;
        if bad_geometry(&cfg) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (fid, func) in ctx.program.functions() {
            if fid.index() >= profile.funcs.len() {
                continue;
            }
            let fp = profile.function(fid);
            if fp.invocations == 0 {
                continue;
            }
            let Some(&max_arc) = fp.arcs.values().max() else {
                continue;
            };
            if max_arc == 0 {
                continue;
            }
            let doms = Dominators::compute(func);
            let forest = LoopForest::compute(func, &doms);
            for (&(from, to), &w) in &fp.arcs {
                if (w as f64) < (max_arc as f64 * cfg.hot_fraction).max(1.0) {
                    continue;
                }
                if matches!(func.block(from).terminator(), Terminator::Call { .. }) {
                    continue;
                }
                if forest.is_back_edge(from, to) {
                    continue;
                }
                let out_mass: u64 = fp.successors_by_weight(from).iter().map(|&(_, x)| x).sum();
                if (w as f64) < DOMINANT_PROB * out_mass as f64 {
                    continue;
                }
                // Mutual best: nothing hotter competes for `to`'s slot.
                let preds = fp.predecessors_by_weight(to);
                if preds.first().map(|&(b, _)| b) != Some(from) {
                    continue;
                }
                if preds.len() > 1 && preds[1].1 == preds[0].1 {
                    continue;
                }
                let (Some(fa), Some(ta)) =
                    (placement.try_addr(fid, from), placement.try_addr(fid, to))
                else {
                    continue; // IPA101's problem.
                };
                let src_end = fa + func.block(from).size_bytes();
                if ta == src_end {
                    continue; // Fall-through achieved.
                }
                let dist = ta.abs_diff(src_end);
                if dist <= cfg.cache_bytes {
                    continue; // Near transfer: locality mostly survives.
                }
                out.push(Diagnostic::warning(
                    self.code(),
                    Location::block(func.name(), to.index()),
                    format!(
                        "hot arc b{}->b{} of {} (weight {w}, {:.0}% of b{}'s exits) is a \
                         {dist} B transfer; nothing hotter enters b{} — place b{} \
                         immediately after b{} to make it a fall-through",
                        from.index(),
                        to.index(),
                        func.name(),
                        100.0 * w as f64 / out_mass.max(1) as f64,
                        from.index(),
                        to.index(),
                        to.index(),
                        from.index(),
                    ),
                ));
                if out.len() >= cfg.max_reports {
                    return out;
                }
            }
        }
        out
    }
}

/// `IPA402` — a hot call pair separated beyond the cache-capacity tier
/// when collocation was achievable.
///
/// Beyond one cache capacity, caller and callee lines can alias in a
/// direct-mapped cache and the transfer leaves the distance-tier
/// scorer's last credited bucket. A far pair is only a *defect* when
/// the caller together with **all** of its hot callees fits inside one
/// cache capacity — a caller whose hot callee set outweighs the cache
/// cannot keep every pair close, no matter the order — and the callee
/// has no *other* hot caller competing for adjacency (a shared helper
/// can sit next to at most one of its callers). The global layout
/// exists precisely to collocate the feasible pairs; this pass reports
/// where it did not.
pub struct CallPairSeparation;

impl Pass for CallPairSeparation {
    fn code(&self) -> &'static str {
        "IPA402"
    }

    fn name(&self) -> &'static str {
        "call-pair-separation"
    }

    fn description(&self) -> &'static str {
        "hot call sites placed more than one cache capacity from their callee"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let (Some(placement), Some(profile)) = (ctx.placement, ctx.profile) else {
            return Vec::new();
        };
        let cfg = ctx.conflict;
        if bad_geometry(&cfg) {
            return Vec::new();
        }
        let Some(&max_site) = profile.call_sites.values().max() else {
            return Vec::new();
        };
        if max_site == 0 {
            return Vec::new();
        }
        let hot_cutoff = (max_site as f64 * cfg.hot_fraction).max(1.0);

        // Combined hot footprint per caller: the caller's own bytes plus
        // every distinct hot callee's bytes. Only callers whose hot call
        // neighborhood fits the cache can be asked to collocate it.
        let mut hot_callees: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        let mut hot_callers: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for (&(caller, block), &w) in &profile.call_sites {
            if caller.index() >= ctx.program.function_count() || (w as f64) < hot_cutoff {
                continue;
            }
            let func = ctx.program.function(caller);
            if let Terminator::Call { callee, .. } = *func.block(block).terminator() {
                hot_callees
                    .entry(caller.index())
                    .or_default()
                    .insert(callee.index());
                hot_callers
                    .entry(callee.index())
                    .or_default()
                    .insert(caller.index());
            }
        }

        let mut out = Vec::new();
        for (&(caller, block), &w) in &profile.call_sites {
            if caller.index() >= ctx.program.function_count() {
                continue;
            }
            if (w as f64) < hot_cutoff {
                continue;
            }
            let func = ctx.program.function(caller);
            let Terminator::Call { callee, .. } = *func.block(block).terminator() else {
                continue;
            };
            let footprint: u64 = func.size_bytes()
                + hot_callees
                    .get(&caller.index())
                    .map(|set| {
                        set.iter()
                            .map(|&c| ctx.program.function(impact_ir::FuncId::new(c)).size_bytes())
                            .sum()
                    })
                    .unwrap_or(0);
            if footprint > cfg.cache_bytes {
                continue; // Collocating every hot pair was never possible.
            }
            if hot_callers
                .get(&callee.index())
                .is_some_and(|s| s.len() > 1)
            {
                continue; // Shared helper: adjacency to one caller starves the rest.
            }
            let entry = ctx.program.function(callee).entry();
            let (Some(fa), Some(ea)) = (
                placement.try_addr(caller, block),
                placement.try_addr(callee, entry),
            ) else {
                continue;
            };
            let src_end = fa + func.block(block).size_bytes();
            let dist = ea.abs_diff(src_end);
            if dist <= cfg.cache_bytes {
                continue;
            }
            out.push(Diagnostic::warning(
                self.code(),
                Location::block(func.name(), block.index()),
                format!(
                    "hot call {}/b{} -> {} (weight {w}) spans {dist} B, beyond the {} B \
                     cache tier: move {} next to {} in the global order",
                    func.name(),
                    block.index(),
                    ctx.program.function(callee).name(),
                    cfg.cache_bytes,
                    ctx.program.function(callee).name(),
                    func.name(),
                ),
            ));
            if out.len() >= cfg.max_reports {
                return out;
            }
        }
        out
    }
}

/// `IPA403` — a loop's hot core straddling more cache lines than its
/// minimal contiguous footprint.
///
/// The hot core is the loop's spine: body blocks executing at least
/// [`CORE_FRACTION`] of the header's count, i.e. (nearly) every
/// iteration — conditional arms are legitimately placed as side
/// traces. Contiguous bytes of size `n` touch at most
/// `ceil(n / line)` lines, and a trace-based layout legitimately
/// interleaves side-trace blocks into the core's span (costing up to
/// about 2x on the bundled workloads); the pass only warns past
/// **twice** the minimum plus [`ALIGN_SLACK_LINES`], where the spine
/// is genuinely scattered rather than merely diluted. Cores larger
/// than the cache are IPA301's finding, not ours.
pub struct LoopLineStraddle;

impl Pass for LoopLineStraddle {
    fn code(&self) -> &'static str {
        "IPA403"
    }

    fn name(&self) -> &'static str {
        "loop-line-straddle"
    }

    fn description(&self) -> &'static str {
        "hot loop cores occupying more cache lines than a contiguous placement"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let (Some(placement), Some(profile)) = (ctx.placement, ctx.profile) else {
            return Vec::new();
        };
        let cfg = ctx.conflict;
        if bad_geometry(&cfg) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (fid, func) in ctx.program.functions() {
            if fid.index() >= profile.funcs.len() {
                continue;
            }
            let fp = profile.function(fid);
            if fp.invocations == 0 {
                continue;
            }
            let doms = Dominators::compute(func);
            let forest = LoopForest::compute(func, &doms);
            for l in forest.loops() {
                let header_w = fp.block_counts[l.header.index()];
                if header_w == 0 {
                    continue; // Cold loop: straddling is free.
                }
                let core: Vec<_> = l
                    .body
                    .iter()
                    .copied()
                    .filter(|b| {
                        fp.block_counts[b.index()] as f64 >= CORE_FRACTION * header_w as f64
                    })
                    .collect();
                let core_bytes: u64 = core.iter().map(|&b| func.block(b).size_bytes()).sum();
                if core_bytes == 0 || core_bytes > cfg.cache_bytes {
                    continue;
                }
                let mut lines: BTreeSet<u64> = BTreeSet::new();
                let mut all_placed = true;
                for &b in &core {
                    let Some(addr) = placement.try_addr(fid, b) else {
                        all_placed = false;
                        break;
                    };
                    let last = addr + func.block(b).size_bytes() - 1;
                    for line in addr / cfg.line_bytes..=last / cfg.line_bytes {
                        lines.insert(line);
                    }
                }
                if !all_placed {
                    continue;
                }
                let minimal = core_bytes.div_ceil(cfg.line_bytes);
                if lines.len() as u64 <= minimal * 2 + ALIGN_SLACK_LINES {
                    continue;
                }
                out.push(Diagnostic::warning(
                    self.code(),
                    Location::block(func.name(), l.header.index()),
                    format!(
                        "hot core of loop {}/b{} ({} blocks, {core_bytes} B) straddles {} \
                         cache lines where {minimal} suffice — reorder the core blocks \
                         contiguously to shrink the loop's working set",
                        func.name(),
                        l.header.index(),
                        core.len(),
                        lines.len(),
                    ),
                ));
                if out.len() >= cfg.max_reports {
                    return out;
                }
            }
        }
        out
    }
}

/// `IPA404` — never-executed bytes interleaved inside the executed span
/// of a function.
///
/// The paper's function layout splits each function into an effective
/// region and a never-executed tail exactly so cold bytes do not dilute
/// the fetch stream. This pass measures, per executed function, how
/// many zero-weight bytes sit strictly inside the span covered by its
/// executed blocks, and warns when they exceed a full cache line and
/// [`COLD_SPAN_FRACTION`] of the span.
pub struct HotColdInterleave;

impl Pass for HotColdInterleave {
    fn code(&self) -> &'static str {
        "IPA404"
    }

    fn name(&self) -> &'static str {
        "hot-cold-interleave"
    }

    fn description(&self) -> &'static str {
        "never-executed bytes interleaved inside a function's executed span"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let (Some(placement), Some(profile)) = (ctx.placement, ctx.profile) else {
            return Vec::new();
        };
        let cfg = ctx.conflict;
        if bad_geometry(&cfg) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (fid, func) in ctx.program.functions() {
            if fid.index() >= profile.funcs.len() {
                continue;
            }
            let fp = profile.function(fid);
            if fp.invocations == 0 {
                continue;
            }
            let (mut lo, mut hi) = (u64::MAX, 0u64);
            let mut cold: Vec<(u64, u64)> = Vec::new();
            for (bid, block) in func.blocks() {
                let Some(addr) = placement.try_addr(fid, bid) else {
                    continue;
                };
                if fp.block_counts[bid.index()] > 0 {
                    lo = lo.min(addr);
                    hi = hi.max(addr + block.size_bytes());
                } else {
                    cold.push((addr, block.size_bytes()));
                }
            }
            if lo >= hi {
                continue;
            }
            let inside: u64 = cold
                .iter()
                .filter(|&&(addr, _)| addr >= lo && addr < hi)
                .map(|&(_, bytes)| bytes)
                .sum();
            let span = hi - lo;
            if inside < cfg.line_bytes || (inside as f64) <= COLD_SPAN_FRACTION * span as f64 {
                continue;
            }
            out.push(Diagnostic::warning(
                self.code(),
                Location::function(func.name()),
                format!(
                    "{} interleaves {inside} B of never-executed code inside its {span} B \
                     executed span — split the cold blocks out behind the effective region",
                    func.name(),
                ),
            ));
            if out.len() >= cfg.max_reports {
                return out;
            }
        }
        out
    }
}

/// `IPA405` — the placement's static memory-traffic bound.
///
/// The paper's second metric is memory traffic: words fetched from
/// memory per word executed. Statically, misses are bounded by
/// [`estimate_miss_bound`]; each miss fetches one line, so the traffic
/// bound is `misses * (line_bytes / word) / instructions`. Programs
/// much larger than the cache pay high traffic under *any* layout, so
/// the placement is only blamed when its bound both crosses
/// [`ConflictConfig::traffic_bound_warn`] **and** exceeds the
/// natural-order baseline of the same program by
/// [`TRAFFIC_OVER_NATURAL`] — an optimizing layout should never fetch
/// meaningfully more than unoptimized code.
pub struct StaticTrafficBound;

impl Pass for StaticTrafficBound {
    fn code(&self) -> &'static str {
        "IPA405"
    }

    fn name(&self) -> &'static str {
        "static-traffic-bound"
    }

    fn description(&self) -> &'static str {
        "static bound on memory traffic (words fetched per word executed)"
    }

    fn run(&self, ctx: &Context<'_>) -> Vec<Diagnostic> {
        let (Some(placement), Some(profile)) = (ctx.placement, ctx.profile) else {
            return Vec::new();
        };
        let cfg = ctx.conflict;
        if bad_geometry(&cfg) {
            return Vec::new();
        }
        let instrs = profile.totals.instructions;
        if instrs == 0 {
            return Vec::new();
        }
        let b = estimate_miss_bound(ctx.program, profile, placement, &cfg);
        if b.accesses == 0 {
            return Vec::new();
        }
        let words_per_line = (cfg.line_bytes / BYTES_PER_INSTR) as f64;
        let traffic_of = |bound: &crate::conflict::MissBound| {
            (bound.cold_lines + bound.conflict_weight) as f64 * words_per_line / instrs as f64
        };
        let traffic = traffic_of(&b);
        if traffic <= cfg.traffic_bound_warn {
            return Vec::new();
        }
        let natural = impact_layout::baseline::natural(ctx.program);
        let base = traffic_of(&estimate_miss_bound(ctx.program, profile, &natural, &cfg));
        if traffic <= TRAFFIC_OVER_NATURAL * base {
            return Vec::new();
        }
        vec![Diagnostic::warning(
            self.code(),
            Location::program(),
            format!(
                "static traffic bound {traffic:.3} words fetched per word executed exceeds \
                 {:.3} and the natural-order baseline {base:.3} ({} cold lines + {} \
                 contended accesses at {} B lines): reduce set contention (IPA201/IPA402 \
                 list the pairs to separate)",
                cfg.traffic_bound_warn, b.cold_lines, b.conflict_weight, cfg.line_bytes,
            ),
        )]
    }
}

#[cfg(test)]
mod tests {
    use impact_ir::{BranchBias, Instr, Program, ProgramBuilder};
    use impact_layout::baseline;
    use impact_layout::placement::Placement;
    use impact_profile::{Profile, Profiler};

    use super::*;

    /// Hot a -> b chain with a rare cold side block between them in
    /// natural order, plus a hot callee.
    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let leaf = pb.reserve("leaf");
        let mut f = pb.function("main");
        let a = f.block(vec![Instr::IntAlu; 3]);
        let cold = f.block(vec![Instr::IntAlu; 100]);
        let b = f.block(vec![Instr::IntAlu; 3]);
        let c = f.block(vec![]);
        let exit = f.block(vec![]);
        f.terminate(a, Terminator::branch(b, cold, BranchBias::fixed(1.0)));
        f.terminate(cold, Terminator::jump(b));
        f.terminate(b, Terminator::call(leaf, c));
        f.terminate(c, Terminator::branch(a, exit, BranchBias::fixed(0.95)));
        f.terminate(exit, Terminator::Exit);
        let id = f.finish();
        let mut l = pb.function_reserved(leaf);
        let l0 = l.block(vec![Instr::IntAlu; 2]);
        l.terminate(l0, Terminator::Return);
        l.finish();
        pb.set_entry(id);
        pb.finish().unwrap()
    }

    fn ctx_with<'a>(p: &'a Program, prof: &'a Profile, placement: &'a Placement) -> Context<'a> {
        Context::program_only(p)
            .with_profile(prof)
            .with_placement(placement)
    }

    #[test]
    fn far_fall_through_fires_and_adjacent_is_quiet() {
        let p = program();
        let prof = Profiler::new().runs(4).profile(&p);
        // Natural order: a..cold(400 B)..b — a->b is separated but only
        // by ~400 B, under the cache tier, so still quiet.
        let natural = baseline::natural(&p);
        assert!(MisplacedFallThrough
            .run(&ctx_with(&p, &prof, &natural))
            .is_empty());

        // Stretch the separation beyond one cache capacity.
        let main = p.entry();
        let leaf = p.function_by_name("leaf").unwrap();
        let mut addrs = vec![Vec::new(), Vec::new()];
        let mut cursor = 0u64;
        for (bid, block) in p.function(main).blocks() {
            // Push b (block index 2) a full cache past everything else.
            if bid.index() == 2 {
                cursor += 4096;
            }
            addrs[main.index()].push(cursor);
            cursor += block.size_bytes();
        }
        for (_, block) in p.function(leaf).blocks() {
            addrs[leaf.index()].push(cursor);
            cursor += block.size_bytes();
        }
        let far = Placement::from_raw(addrs, vec![main, leaf], cursor, cursor);
        let diags = MisplacedFallThrough.run(&ctx_with(&p, &prof, &far));
        assert!(!diags.is_empty(), "4 KB separation must fire");
        assert!(diags.iter().all(|d| d.code == "IPA401"));
        assert!(
            diags[0].message.contains("fall-through"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn far_call_pair_fires_and_near_is_quiet() {
        let p = program();
        let prof = Profiler::new().runs(4).profile(&p);
        let natural = baseline::natural(&p);
        assert!(CallPairSeparation
            .run(&ctx_with(&p, &prof, &natural))
            .is_empty());

        // Move the callee a page away from everything.
        let main = p.entry();
        let leaf = p.function_by_name("leaf").unwrap();
        let mut addrs = vec![Vec::new(), Vec::new()];
        let mut cursor = 0u64;
        for (_, block) in p.function(main).blocks() {
            addrs[main.index()].push(cursor);
            cursor += block.size_bytes();
        }
        cursor += 4096;
        for (_, block) in p.function(leaf).blocks() {
            addrs[leaf.index()].push(cursor);
            cursor += block.size_bytes();
        }
        let far = Placement::from_raw(addrs, vec![main, leaf], cursor, cursor);
        let diags = CallPairSeparation.run(&ctx_with(&p, &prof, &far));
        assert!(!diags.is_empty());
        assert!(diags[0].code == "IPA402");
        assert!(diags[0].message.contains("leaf"), "{}", diags[0].message);
    }

    #[test]
    fn straddled_loop_core_fires_and_contiguous_is_quiet() {
        // One hot loop of four small blocks.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let h = f.block(vec![Instr::IntAlu; 3]);
        let m = f.block(vec![Instr::IntAlu; 3]);
        let n = f.block(vec![Instr::IntAlu; 3]);
        let t = f.block(vec![Instr::IntAlu; 3]);
        let exit = f.block(vec![]);
        f.terminate(h, Terminator::jump(m));
        f.terminate(m, Terminator::jump(n));
        f.terminate(n, Terminator::jump(t));
        f.terminate(t, Terminator::branch(h, exit, BranchBias::fixed(0.98)));
        f.terminate(exit, Terminator::Exit);
        let id = f.finish();
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let prof = Profiler::new().runs(4).profile(&p);

        let natural = baseline::natural(&p);
        assert!(LoopLineStraddle
            .run(&ctx_with(&p, &prof, &natural))
            .is_empty());

        // Scatter the four core blocks onto distant lines (64 B of code
        // over four lines, where a contiguous run needs one plus slack).
        let main = p.entry();
        let addrs = vec![vec![0, 200, 400, 600, 800]];
        let scattered = Placement::from_raw(addrs, vec![main], 816, 816);
        let diags = LoopLineStraddle.run(&ctx_with(&p, &prof, &scattered));
        assert!(!diags.is_empty());
        assert_eq!(diags[0].code, "IPA403");
    }

    #[test]
    fn interleaved_cold_code_fires_and_split_is_quiet() {
        let p = program();
        let prof = Profiler::new().runs(4).profile(&p);
        // Natural order interleaves the 400 B never-executed block
        // between hot a and b: well over a line and 25% of the span.
        let natural = baseline::natural(&p);
        let diags = HotColdInterleave.run(&ctx_with(&p, &prof, &natural));
        assert!(!diags.is_empty(), "interleaved cold block must fire");
        assert_eq!(diags[0].code, "IPA404");

        // Re-place with the cold block after everything (effective split).
        let main = p.entry();
        let leaf = p.function_by_name("leaf").unwrap();
        let mut addrs = vec![Vec::new(), Vec::new()];
        let mut cursor = 0u64;
        let cold_bytes = p
            .function(main)
            .block(impact_ir::BlockId::new(1))
            .size_bytes();
        for (bid, block) in p.function(main).blocks() {
            if bid.index() == 1 {
                addrs[main.index()].push(u64::MAX); // placeholder, fixed below
                continue;
            }
            addrs[main.index()].push(cursor);
            cursor += block.size_bytes();
        }
        for (_, block) in p.function(leaf).blocks() {
            addrs[leaf.index()].push(cursor);
            cursor += block.size_bytes();
        }
        addrs[main.index()][1] = cursor; // cold block at the very end
        let total = cursor + cold_bytes;
        let split = Placement::from_raw(addrs, vec![main, leaf], cursor, total);
        assert!(HotColdInterleave
            .run(&ctx_with(&p, &prof, &split))
            .is_empty());
    }

    #[test]
    fn traffic_bound_fires_on_thrashing_placement() {
        // Two alternating hot blocks placed one cache capacity apart:
        // every transfer is a miss, so traffic approaches line/word
        // ratios far above any sane bound.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let a = f.block(vec![Instr::IntAlu; 3]);
        let b = f.block(vec![Instr::IntAlu; 3]);
        let exit = f.block(vec![]);
        f.terminate(a, Terminator::jump(b));
        f.terminate(b, Terminator::branch(a, exit, BranchBias::fixed(0.99)));
        f.terminate(exit, Terminator::Exit);
        let id = f.finish();
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let prof = Profiler::new().runs(4).profile(&p);

        let natural = baseline::natural(&p);
        assert!(StaticTrafficBound
            .run(&ctx_with(&p, &prof, &natural))
            .is_empty());

        let main = p.entry();
        let addrs = vec![vec![0, 2048, 2048 + 16]];
        let aliased = Placement::from_raw(addrs, vec![main], 2080, 2080);
        let diags = StaticTrafficBound.run(&ctx_with(&p, &prof, &aliased));
        assert!(
            !diags.is_empty(),
            "aliased alternation must cross the bound"
        );
        assert_eq!(diags[0].code, "IPA405");
    }

    #[test]
    fn bad_geometry_is_quiet_here() {
        let p = program();
        let prof = Profiler::new().runs(2).profile(&p);
        let natural = baseline::natural(&p);
        let bad = ConflictConfig {
            cache_bytes: 32,
            line_bytes: 64,
            ..ConflictConfig::default()
        };
        let ctx = ctx_with(&p, &prof, &natural).with_conflict(bad);
        for pass in [
            &MisplacedFallThrough as &dyn Pass,
            &CallPairSeparation,
            &LoopLineStraddle,
            &HotColdInterleave,
            &StaticTrafficBound,
        ] {
            assert!(
                pass.run(&ctx).is_empty(),
                "{} must defer to IPA201",
                pass.code()
            );
        }
    }

    #[test]
    fn missing_artifacts_are_quiet() {
        let p = program();
        let ctx = Context::program_only(&p);
        for pass in [
            &MisplacedFallThrough as &dyn Pass,
            &CallPairSeparation,
            &LoopLineStraddle,
            &HotColdInterleave,
            &StaticTrafficBound,
        ] {
            assert!(pass.run(&ctx).is_empty(), "{}", pass.code());
        }
    }
}

//! Dependency-free support utilities for the IMPACT-I reproduction.
//!
//! The build environment carries no external crates, so everything the
//! workspace previously pulled from crates.io lives here instead:
//!
//! * [`rng`] — a small, seedable, deterministic PRNG (xoshiro256++ seeded
//!   through SplitMix64) replacing `rand`/`rand_chacha`.
//! * [`json`] — a minimal JSON document model with a [`json::ToJson`]
//!   trait and the [`json_object!`] impl macro, replacing
//!   `serde`/`serde_json` for the experiment tables and lint output.
//! * [`check`] — a tiny property-testing harness (seeded generators,
//!   deterministic shrink-free `forall`) replacing `proptest`.
//! * [`bench`] — a wall-clock micro-benchmark harness replacing
//!   `criterion` for the `impact-bench` binaries.
//! * [`par`] — a deterministic-order, bounded fork/join `parallel_map`
//!   over scoped threads, replacing `rayon` for the evaluation engine.
//!
//! Everything here is deterministic by construction: the RNG streams and
//! the check seeds are fixed, so test failures reproduce exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod check;
pub mod json;
pub mod par;
pub mod rng;

pub use json::{parse as parse_json, Json, JsonParseError, ToJson};
pub use par::parallel_map;
pub use rng::Rng;

//! Deterministic fork/join parallelism over scoped threads.
//!
//! The workspace runs without external crates, so this module provides
//! the one parallel primitive the experiment harness needs: a
//! [`parallel_map`] that fans independent work items across a bounded
//! number of [`std::thread::scope`] threads and returns results **in
//! input order**, regardless of which thread finished first. With
//! `jobs == 1` the map degenerates to a plain serial loop, so callers
//! can guarantee byte-identical serial behavior by construction.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item, using up to `jobs` worker threads, and
/// returns the results in input order.
///
/// Work is distributed dynamically (an atomic cursor), so uneven item
/// costs balance automatically. `jobs` is clamped to at least 1; with
/// one job (or zero/one items) no threads are spawned and the map runs
/// serially on the caller's thread, in input order.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn parallel_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let jobs = jobs.max(1);
    let n = items.len();
    if jobs == 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // One slot per item: the input moves out, the output moves in. Each
    // slot is claimed by exactly one worker (the cursor hands out every
    // index once), so locks are uncontended.
    let slots: Vec<Mutex<(Option<T>, Option<R>)>> = items
        .into_iter()
        .map(|t| Mutex::new((Some(t), None)))
        .collect();
    let cursor = AtomicUsize::new(0);
    let (slots_ref, cursor_ref, f_ref) = (&slots, &cursor, &f);

    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(move || loop {
                let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let mut slot = slots_ref[i].lock().expect("slot lock poisoned");
                let item = slot.0.take().expect("each slot is claimed once");
                slot.1 = Some(f_ref(item));
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock poisoned")
                .1
                .expect("scope joined all workers")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(8, items.clone(), |x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..57).collect();
        let serial = parallel_map(1, items.clone(), |x| x.wrapping_mul(0x9e37));
        let parallel = parallel_map(4, items, |x| x.wrapping_mul(0x9e37));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        let out = parallel_map(0, vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(4, empty, |x| x).is_empty());
        assert_eq!(parallel_map(4, vec![9], |x| x * 2), vec![18]);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let out = parallel_map(64, vec![1u8, 2], |x| x);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Later items finish first; order must not change.
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(8, items, |x| {
            let mut acc = 0u64;
            for i in 0..(32 - x) * 10_000 {
                acc = acc.wrapping_add(i ^ x);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}

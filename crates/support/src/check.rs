//! A tiny property-testing harness.
//!
//! Replaces `proptest` with a deliberately simple deterministic model: a
//! property runs over `cases` inputs generated from a seeded [`Rng`], and
//! a failure reports the case's seed so it reproduces exactly. There is
//! no shrinking — generators here are small enough that the failing value
//! itself is readable.
//!
//! ```
//! use impact_support::check;
//!
//! check::forall(64, |rng| rng.gen_below(100), |&x| {
//!     assert!(x < 100);
//! });
//! ```

use crate::rng::Rng;

/// The base seed every [`forall`] derives its case seeds from; fixed so
/// failures reproduce across runs and machines.
pub const BASE_SEED: u64 = 0x1417_ca5e_5eed;

/// Runs `property` over `cases` inputs drawn from `generate`.
///
/// Each case gets its own RNG seeded from [`BASE_SEED`] and the case
/// index, so cases are independent and individually reproducible.
///
/// # Panics
///
/// Re-raises the property's panic, prefixed with the failing case index
/// (stderr) so the case can be replayed with [`case_rng`].
pub fn forall<T: std::fmt::Debug>(
    cases: u32,
    mut generate: impl FnMut(&mut Rng) -> T,
    property: impl Fn(&T),
) {
    for case in 0..cases {
        let mut rng = case_rng(case);
        let value = generate(&mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&value)));
        if let Err(panic) = result {
            eprintln!("property failed on case {case}: {value:?}");
            std::panic::resume_unwind(panic);
        }
    }
}

/// The RNG used for case `case` of any [`forall`] — for replaying a
/// reported failure in isolation.
#[must_use]
pub fn case_rng(case: u32) -> Rng {
    Rng::seed_from_u64(BASE_SEED ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        forall(10, |rng| rng.next_u64(), |_| {});
        forall(10, |rng| rng.gen_below(5), |&x| assert!(x < 5));
        count += 10;
        assert_eq!(count, 10);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn failing_property_panics() {
        forall(
            32,
            |rng| rng.gen_below(100),
            |&x| {
                assert!(x % 2 == 0 || x % 2 == 1, "unreachable");
                if x % 2 == 1 {
                    panic!("odd value {x}");
                }
            },
        );
    }

    #[test]
    fn cases_are_reproducible() {
        let a = case_rng(3).next_u64();
        let b = case_rng(3).next_u64();
        assert_eq!(a, b);
        assert_ne!(case_rng(3).next_u64(), case_rng(4).next_u64());
    }
}

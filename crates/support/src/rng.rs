//! A small deterministic PRNG: xoshiro256++ seeded through SplitMix64.
//!
//! Replaces the `rand`/`rand_chacha` pair the workspace previously used.
//! The generator is not cryptographic — it only drives the stochastic
//! branch model, synthetic-workload structure, and shuffled baselines —
//! but it is fast, well-distributed, and fully reproducible from a `u64`
//! seed.

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seeding (its outputs initialize the xoshiro state) and usable
/// directly as a tiny integer hash.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seedable deterministic random number generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose full 256-bit state is expanded from
    /// `seed` via SplitMix64 (the initialization recommended by the
    /// xoshiro authors).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// Uses rejection sampling, so the distribution is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below(0) is an empty range");
        // Rejection zone keeps the modulo unbiased.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// A uniform `usize` in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "inverted range {lo}..={hi}");
        let span = (hi - lo) as u64 + 1;
        lo + self.gen_below(span) as usize
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = Rng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_f64()).sum();
        let mean = sum / f64::from(n);
        assert!((0.49..0.51).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_below_covers_range_uniformly() {
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.gen_below(5) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = Rng::seed_from_u64(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1_000 {
            match rng.gen_range_inclusive(2, 4) {
                2 => saw_lo = true,
                4 => saw_hi = true,
                3 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<u32>>(),
            "shuffle left input in order"
        );
    }

    #[test]
    fn single_element_and_empty_shuffles_are_noops() {
        let mut rng = Rng::seed_from_u64(1);
        let mut empty: [u8; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [42];
        rng.shuffle(&mut one);
        assert_eq!(one, [42]);
    }
}

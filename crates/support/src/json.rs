//! A minimal JSON document model.
//!
//! Replaces `serde`/`serde_json` for the workspace's machine-readable
//! output (experiment tables, lint diagnostics). Serialization only —
//! nothing in the workspace parses JSON.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (serialized via shortest-roundtrip `f64`
    /// formatting; integers print without a fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl std::fmt::Display for Json {
    /// Compact single-line rendering.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl Json {
    /// Pretty rendering with two-space indentation.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                write_escaped(out, &fields[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                fields[i].1.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// This value as a JSON document.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_owned())
    }
}

macro_rules! impl_num_to_json {
    ($($t:ty),+) => {
        $(impl ToJson for $t {
            #[allow(clippy::cast_precision_loss, clippy::cast_lossless)]
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        })+
    };
}
impl_num_to_json!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

/// Implements [`ToJson`] for a struct by listing its fields:
///
/// ```
/// struct Row { name: String, miss: f64 }
/// impact_support::json_object!(Row { name, miss });
/// let r = Row { name: "wc".into(), miss: 0.01 };
/// assert_eq!(
///     impact_support::ToJson::to_json(&r).to_string(),
///     r#"{"name":"wc","miss":0.01}"#
/// );
/// ```
#[macro_export]
macro_rules! json_object {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_owned(),
                       $crate::json::ToJson::to_json(&self.$field))),+
                ])
            }
        }
    };
}

/// Serializes a slice of rows as a pretty-printed JSON array — the shape
/// `repro --json` and `impact lint --json` emit.
pub fn rows_to_json_pretty<R: ToJson>(rows: &[R]) -> String {
    Json::Arr(rows.iter().map(ToJson::to_json).collect()).to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(0.25).to_string(), "0.25");
        assert_eq!(Json::Str("a\"b".into()).to_string(), r#""a\"b""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn control_characters_escape() {
        assert_eq!(Json::Str("a\nb\u{1}".into()).to_string(), r#""a\nb\u0001""#);
    }

    #[test]
    fn arrays_and_objects_nest() {
        let doc = Json::Obj(vec![
            ("xs".into(), Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        assert_eq!(doc.to_string(), r#"{"xs":[1,2],"empty":[]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let doc = Json::Obj(vec![("a".into(), Json::Num(1.0))]);
        assert_eq!(doc.to_string_pretty(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn macro_implements_to_json() {
        struct Row {
            name: &'static str,
            hits: u64,
            ratio: f64,
        }
        json_object!(Row { name, hits, ratio });
        let r = Row {
            name: "wc",
            hits: 10,
            ratio: 0.5,
        };
        assert_eq!(
            r.to_json().to_string(),
            r#"{"name":"wc","hits":10,"ratio":0.5}"#
        );
    }

    #[test]
    fn rows_serialize_as_array() {
        let out = rows_to_json_pretty(&[1u32, 2u32]);
        assert_eq!(out, "[\n  1,\n  2\n]");
    }

    #[test]
    fn options_and_tuples() {
        assert_eq!(Some(3u32).to_json().to_string(), "3");
        assert_eq!(None::<u32>.to_json().to_string(), "null");
        assert_eq!((1u32, "x").to_json().to_string(), r#"[1,"x"]"#);
    }
}
